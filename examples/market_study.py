#!/usr/bin/env python3
"""The Section I usage study: how many top apps use Fragments?

Decodes the 217-app market with the Apktool equivalent and runs the
effective-Fragment scan on each — the paper's 'preliminary code
analysis' that found 91%.

Run:  python examples/market_study.py
"""

from collections import Counter

from repro.corpus import generate_market
from repro.errors import PackedApkError
from repro.smali.apktool import Apktool
from repro.static.effective import fragment_subclasses


def main() -> None:
    market = generate_market()
    tool = Apktool()
    by_category = Counter()
    fragment_by_category = Counter()
    packed = 0
    analyzable = 0
    with_fragments = 0

    for app in market:
        by_category[app.category] += 1
        try:
            decoded = tool.decode(app.build())
        except PackedApkError:
            packed += 1
            continue
        analyzable += 1
        if fragment_subclasses(decoded):
            with_fragments += 1
            fragment_by_category[app.category] += 1

    print(f"apps downloaded: {len(market)} across "
          f"{len(by_category)} categories")
    print(f"packed/encrypted (ruled out, Section VII-A): {packed}")
    print(f"apps using Fragments: {with_fragments}/{analyzable} "
          f"= {with_fragments / analyzable:.1%}   (paper: 91%)")
    print()
    print(f"{'category':22} {'apps':>5} {'w/ fragments':>13}")
    for category, count in by_category.most_common(10):
        print(f"{category:22} {count:5d} {fragment_by_category[category]:13d}")


if __name__ == "__main__":
    main()
