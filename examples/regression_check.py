#!/usr/bin/env python3
"""Regression testing with the generated suite.

Explore version 1 of an app once; when "version 2" ships (here:
mutated specs standing in for developer changes), replay the suite and
read the regression report.

Run:  python examples/regression_check.py
"""

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.regression import run_regression
from repro.corpus import demo_tabbed_app
from repro.corpus.mutations import inject_crash, rename_widget


def main() -> None:
    spec_v1 = demo_tabbed_app()
    print("exploring v1 once to generate the suite...")
    baseline = FragDroid(Device()).explore(build_apk(spec_v1))
    print(f"suite: {len(baseline.passing_test_cases)} passing test cases\n")

    print("=== v2a: developer renamed tab_recent -> tab_latest ===")
    v2a = rename_widget(demo_tabbed_app(), "tab_recent", "tab_latest")
    print(run_regression(baseline, build_apk(v2a)).render())

    print("\n=== v2b: developer introduced a crash on the category row ===")
    v2b = inject_crash(demo_tabbed_app(), "category_row")
    print(run_regression(baseline, build_apk(v2b)).render())

    print("\n=== v2c: no behavioural change (refactor only) ===")
    print(run_regression(baseline, build_apk(demo_tabbed_app())).render())


if __name__ == "__main__":
    main()
