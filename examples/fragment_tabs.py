#!/usr/bin/env python3
"""Figure 1 scenario: tab clicks transform the Fragment, not the Activity.

Compares FragDroid with the Activity-level baseline on the wallpaper
browser: both visit the same Activities, but only FragDroid models the
CATEGORIES -> RECENT transformation as a UI-state change and reaches the
API call hidden inside the RECENT tab.

Run:  python examples/fragment_tabs.py
"""

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.baselines import ActivityExplorer
from repro.corpus import demo_tabbed_app
from repro.types import InvocationSource


def main() -> None:
    print("=== FragDroid (fragment-aware) ===")
    frag_result = FragDroid(Device()).explore(build_apk(demo_tabbed_app()))
    print(f"activities visited: {sorted(a.rsplit('.', 1)[-1] for a in frag_result.visited_activities)}")
    print(f"fragments visited:  {sorted(f.rsplit('.', 1)[-1] for f in frag_result.visited_fragments)}")
    fragment_apis = sorted({i.api for i in frag_result.api_invocations
                            if i.source is InvocationSource.FRAGMENT})
    print(f"APIs attributed to fragments: {fragment_apis}")

    print("\n=== Activity-level baseline (A3E/TrimDroid style) ===")
    base_result = ActivityExplorer(Device()).run(build_apk(demo_tabbed_app()))
    print(f"activities visited: {sorted(a.rsplit('.', 1)[-1] for a in base_result.visited_activities)}")
    print("fragments visited:  (the tool has no notion of fragments)")
    print(f"APIs detected: {sorted(base_result.detected_apis())}")
    print(f"fragment calls misattributed to activities: "
          f"{base_result.misattributed_fragment_calls()}")

    print("\nThe baseline treats GalleryActivity as one fixed UI state: the")
    print("tab transformation (Figure 1a -> 1b) never creates a new state,")
    print("and every fragment API call is blamed on the host Activity.")


if __name__ == "__main__":
    main()
