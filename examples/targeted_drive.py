#!/usr/bin/env python3
"""Targeted driving: from a sensitive API to a replayable test case.

A security analyst's workflow: explore an app once, pick an alarming
API from the audit, and get a minimal Robotium test that drives a fresh
device straight to the component making the call — the SmartDroid
use-case, powered by FragDroid's fragment-level paths.

Run:  python examples/targeted_drive.py
"""

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.targeted import components_invoking, drive_to_api
from repro.corpus import build_table1_app

PACKAGE = "com.aircrunch.shopalerts"
API = "phone/getNetworkCountryIso"  # fragment-only in this app


def main() -> None:
    apk = build_apk(build_table1_app(PACKAGE))
    print(f"exploring {PACKAGE} once...")
    result = FragDroid(Device()).explore(apk)

    print(f"\ncomponents invoking {API}:")
    for component in components_invoking(result, API):
        path = result.paths.get(component, ())
        print(f"  {component}")
        print(f"    recorded path: {'; '.join(str(op) for op in path)}")

    print(f"\nreplaying on a fresh device...")
    device = Device()
    case, component = drive_to_api(result, apk, device, API)
    print(f"reached {component}; the API fired "
          f"({sum(1 for i in device.api_monitor.invocations if i.api == API)}"
          f" invocation(s) recorded)")
    print("\nthe handover artifact:")
    print(case.to_robotium_java())


if __name__ == "__main__":
    main()
