#!/usr/bin/env python3
"""Quickstart: explore one app with FragDroid and print everything.

Builds the paper's Figure 5 example app (all three AFTM edge kinds),
runs the full static + evolutionary pipeline, and prints the AFTM, the
coverage report, a generated Robotium test case, and the sensitive-API
log.

Run:  python examples/quickstart.py
"""

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.corpus import demo_aftm_example


def main() -> None:
    spec = demo_aftm_example()
    apk = build_apk(spec)
    print(f"built {apk.apk_name}: {len(apk.smali_files)} smali files, "
          f"{len(apk.layout_files)} layouts, ~{apk.size_estimate()} bytes\n")

    device = Device()
    result = FragDroid(device).explore(apk)

    print("=== AFTM (Figure 5 shape) ===")
    print(result.aftm.summary())
    for edge in sorted(result.aftm.edges):
        print(f"  {edge.src} -> {edge.dst}  [{edge.kind.name}]"
              f"  trigger={edge.trigger}")
    print()
    print("=== Graphviz ===")
    print(result.aftm.to_dot())
    print()
    print("=== Coverage ===")
    print(result.coverage_report())
    print()
    print("=== One generated Robotium test case ===")
    print(result.test_cases[-1].to_robotium_java())
    print()
    print("=== Sensitive API invocations ===")
    for api, component, source in sorted(
        {(i.api, i.component.simple_name, i.source.value)
         for i in result.api_invocations}
    ):
        print(f"  {api:40} {component:20} [{source}]")


if __name__ == "__main__":
    main()
