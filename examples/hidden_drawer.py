#!/usr/bin/env python3
"""Figure 2 scenario: the hidden slide menu is the only Fragment bridge.

The favorites Fragment is reachable only through a navigation drawer
that stays invisible until the hamburger icon is clicked or the screen
edge is swiped.  FragDroid discovers it (drawer clicking plus Case 1
reflection); random testing finds it only by luck.

Run:  python examples/hidden_drawer.py
"""

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.baselines import Monkey
from repro.corpus import demo_drawer_app


def main() -> None:
    print("=== FragDroid ===")
    result = FragDroid(Device()).explore(build_apk(demo_drawer_app()))
    print(result.coverage_report())
    print("fragments:", sorted(f.rsplit(".", 1)[-1]
                               for f in result.visited_fragments))
    drawer_edges = [e for e in result.aftm.edges
                    if e.trigger not in ("static", "reflection")]
    print("dynamically triggered edges:",
          [(str(e.src), str(e.dst), e.trigger) for e in drawer_edges])

    print("\n=== Monkey, several seeds, same event budget ===")
    budget = result.stats.events
    for seed in (1, 2, 3, 4, 5):
        monkey = Monkey(Device(), seed=seed).run(
            build_apk(demo_drawer_app()), event_count=budget
        )
        found = sorted(f.rsplit(".", 1)[-1]
                       for f in monkey.visited_fragment_classes)
        print(f"  seed {seed}: fragments stumbled into: {found}")

    print("\nMonkey sometimes blunders through the drawer, sometimes not —")
    print("the paper's point: random tests are not programmable and cannot")
    print("be controlled accurately (Section I, Challenge 2).")


if __name__ == "__main__":
    main()
