#!/usr/bin/env python3
"""Security showcase (Section VII-C): audit an app's sensitive API usage.

Runs FragDroid over one of the Table II evaluation apps and prints which
XPrivacy-catalogued APIs fire, from which component, with the
Activity/Fragment/both classification — then shows what an
Activity-level tool would have reported for the same app.

Run:  python examples/sensitive_api_audit.py [package]
"""

import sys

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.baselines import ActivityExplorer
from repro.core import build_api_report
from repro.corpus import build_table1_app, table1_packages


def main() -> None:
    package = sys.argv[1] if len(sys.argv) > 1 else "com.inditex.zara"
    if package not in table1_packages():
        print(f"unknown package {package}; choose one of:")
        for name in table1_packages():
            print(f"  {name}")
        raise SystemExit(1)

    result = FragDroid(Device()).explore(build_apk(build_table1_app(package)))
    report = build_api_report([result])
    print(f"=== FragDroid audit of {package} ===")
    print(report.render())
    print()
    print(f"coverage: {len(result.visited_activities)}/"
          f"{result.activity_total} activities, "
          f"{len(result.visited_fragments)}/{result.fragment_total} "
          f"fragments, {result.stats.reflection_failures} reflection "
          f"failures")

    base = ActivityExplorer(Device()).run(build_apk(build_table1_app(package)))
    fragdroid_apis = {r.api for r in report.relations}
    baseline_apis = base.detected_apis()
    print(f"\n=== Activity-level tool on the same app ===")
    print(f"APIs detected: {len(baseline_apis)} "
          f"(FragDroid: {len(fragdroid_apis)})")
    missed = sorted(fragdroid_apis - baseline_apis)
    if missed:
        print(f"missed entirely: {missed}")
    print(f"fragment calls misattributed to activities: "
          f"{base.misattributed_fragment_calls()}")


if __name__ == "__main__":
    main()
