"""Crash-safe persistence of job state.

The journal is what makes ``repro serve`` restartable: every job
transition — admission, each completed round of apps, the terminal
state — is written as one ``<job_id>.json`` file under the journal
directory, atomically (temp file + ``os.replace``, the run-registry
discipline), so a crash between writes leaves either the previous
consistent snapshot or the new one, never interleaved bytes.

On restart the service loads every entry; jobs in a non-terminal state
are re-admitted with their ``completed`` app rows intact, so work that
was already journaled is never re-analyzed and never lands twice in
the run registry (the registry record is written exactly once, at the
job's terminal transition).

A corrupt, truncated, or foreign-schema entry is *skipped with a
warning* and tallied on ``self.skipped`` — a damaged journal degrades,
it never prevents the service from starting.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import warnings
from typing import List, Optional, Tuple

from repro.serve.jobs import ACTIVE_STATES, Job


def default_journal_dir() -> pathlib.Path:
    """``$FRAGDROID_SERVE_DIR`` or ``~/.cache/fragdroid/serve``."""
    env = os.environ.get("FRAGDROID_SERVE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "fragdroid" / "serve"


class JobJournal:
    """One atomically-written JSON snapshot per job."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = (pathlib.Path(directory)
                          if directory is not None
                          else default_journal_dir())
        #: (file name, reason) of entries skipped by the last jobs().
        self.skipped: List[Tuple[str, str]] = []

    def path_of(self, job_id: str) -> pathlib.Path:
        return self.directory / f"{job_id}.json"

    # -- writing -------------------------------------------------------------

    def write(self, job: Job) -> None:
        """Persist the job's current snapshot (atomic replace)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        text = json.dumps(job.to_dict(), indent=2, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, self.path_of(job.job_id))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def remove(self, job_id: str) -> bool:
        try:
            self.path_of(job_id).unlink()
            return True
        except OSError:
            return False

    # -- reading -------------------------------------------------------------

    def load(self, job_id: str) -> Job:
        data = json.loads(self.path_of(job_id).read_text(encoding="utf-8"))
        return Job.from_dict(data)

    def jobs(self) -> List[Job]:
        """Every readable journal entry, oldest submission first;
        unreadable entries are skipped with a warning."""
        self.skipped = []
        jobs: List[Job] = []
        if not self.directory.is_dir():
            return jobs
        for path in sorted(self.directory.glob("*.json")):
            if path.name.startswith("."):
                continue  # in-flight temp files
            try:
                jobs.append(Job.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                reason = str(exc)
                self.skipped.append((path.name, reason))
                warnings.warn(
                    f"skipping unreadable job journal entry {path.name}: "
                    f"{reason}", RuntimeWarning, stacklevel=2)
        jobs.sort(key=lambda j: (j.created, j.job_id))
        return jobs

    def in_flight(self) -> List[Job]:
        """Journaled jobs a restarted service must resume."""
        return [job for job in self.jobs() if job.state in ACTIVE_STATES]
