"""Live event streaming: the fan-out broker behind SSE.

Polling ``/jobs/<id>/logs`` re-reads the whole event list every time;
the :class:`EventBroker` turns the service's shared
:class:`~repro.obs.events.EventLog` into a push stream instead.  The
broker attaches to the log as a *sink* (``event_log.add_sink(broker)``),
so every emitted event — scheduler transitions, per-app outcomes,
worker deaths, absorbed worker events — fans out to the subscribers
whose job it belongs to, with zero cost when nobody is subscribed.

Each :class:`Subscription` owns a **bounded** queue: a slow client
(or one that stopped reading without closing the socket) cannot make
the service buffer without limit.  When a subscriber's queue fills,
the subscription is marked *overflowed*, the drop is counted
(``serve.sse.dropped``) and the serving loop terminates that client —
losing one slow reader, never the service's memory.

The matching rule is shared with ``/jobs/<id>/logs``
(:func:`event_matches`): a job's stream is every event stamped with
its ``job`` attribute, plus app-level events for its apps that carry
no job stamp (the absorbed per-app exploration record).
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, List, Optional, Set

from repro.obs.events import Event
from repro.obs.metrics import NULL_METRICS, Metrics

#: Per-subscriber buffer bound; ~a few screens of events.  A client
#: further behind than this is not following live anymore.
DEFAULT_BUFFER = 256


def event_matches(event: Event, job_id: str, apps: Set[str]) -> bool:
    """Whether ``event`` belongs to one job's stream."""
    stamped = event.attributes.get("job")
    if stamped:
        return stamped == job_id
    return event.app in apps


class Subscription:
    """One client's bounded view of a job's live event stream."""

    def __init__(self, job_id: str, apps: Iterable[str],
                 buffer: int = DEFAULT_BUFFER) -> None:
        self.job_id = job_id
        self.apps = set(apps)
        self._queue: "queue.Queue[Event]" = queue.Queue(maxsize=max(1, buffer))
        self.overflowed = False
        self.closed = False

    def matches(self, event: Event) -> bool:
        return event_matches(event, self.job_id, self.apps)

    def offer(self, event: Event) -> bool:
        """Enqueue without blocking; a full buffer marks the
        subscription overflowed instead of stalling the emitter."""
        if self.closed or self.overflowed:
            return False
        try:
            self._queue.put_nowait(event)
            return True
        except queue.Full:
            self.overflowed = True
            return False

    def get(self, timeout: float) -> Optional[Event]:
        """The next event, or None after ``timeout`` seconds of quiet
        (the serving loop's heartbeat interval)."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def pending(self) -> int:
        return self._queue.qsize()


class EventBroker:
    """EventLog sink fanning events out to per-job subscriptions.

    Thread-safe: the event log emits from scheduler and worker-join
    threads while HTTP handler threads subscribe and unsubscribe.
    """

    def __init__(self, metrics: Metrics = NULL_METRICS,
                 buffer: int = DEFAULT_BUFFER) -> None:
        self.metrics = metrics
        self.buffer = buffer
        self._lock = threading.Lock()
        self._subscriptions: List[Subscription] = []

    # -- the sink contract ---------------------------------------------------

    def emit(self, event: Event) -> None:
        with self._lock:
            subscriptions = list(self._subscriptions)
        for subscription in subscriptions:
            if subscription.matches(event) and not subscription.offer(event):
                if subscription.overflowed:
                    self.metrics.inc("serve.sse.dropped")

    # -- subscriber lifecycle ------------------------------------------------

    def subscribe(self, job_id: str,
                  apps: Iterable[str]) -> Subscription:
        subscription = Subscription(job_id, apps, buffer=self.buffer)
        with self._lock:
            self._subscriptions.append(subscription)
        self.metrics.inc("serve.sse.subscribed")
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Idempotent detach; the subscription stops receiving and its
        buffer becomes garbage with it."""
        subscription.closed = True
        with self._lock:
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                return
        self.metrics.inc("serve.sse.unsubscribed")

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscriptions)
