"""The service front door: a local HTTP/JSON API over the job fleet.

Pure stdlib (``http.server``) — no new dependencies.  One
:class:`ReproServer` owns the whole service: the admission-controlled
:class:`~repro.serve.jobs.JobQueue`, the crash-safe
:class:`~repro.serve.journal.JobJournal`, the recovering
:class:`~repro.serve.scheduler.Scheduler` (on its own thread) and the
HTTP listener (a ``ThreadingHTTPServer``, one thread per request, so a
slow poll never blocks a submit).

Endpoints (all JSON)::

    GET  /health            service liveness, queue depth, job counts
    GET  /metrics           the service's counter registry
    GET  /jobs              every known job (summary rows)
    POST /jobs              submit a job -> 201 {"job": {...}}
    GET  /jobs/<id>         one job's full state
    GET  /jobs/<id>/logs    the job's event stream (progress)
    POST /jobs/<id>/cancel  cancel (immediate when queued,
                            cooperative when running)
    POST /shutdown          drain and stop the service

Typed failures map onto status codes clients can switch on:
``QueueFullError`` -> **429** (backpressure: resubmit later),
``JobBudgetError``/``AdmissionError`` -> **400**, ``UnknownJobError``
-> **404**, ``JobStateError`` -> **409**.  Every error body is
``{"error": <type>, "message": <text>}``.
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro.bench.parallel import explore_many
from repro.errors import (
    AdmissionError,
    JobBudgetError,
    JobStateError,
    QueueFullError,
    ServeError,
    UnknownJobError,
)
from repro.obs import EventLog, Tracer
from repro.obs.registry import RunRegistry
from repro.serve.jobs import Job, JobLimits, JobQueue, RUNNING
from repro.serve.journal import JobJournal
from repro.serve.scheduler import Scheduler, default_resolver

_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]+)$")
_JOB_LOGS_PATH = re.compile(r"^/jobs/([0-9a-f]+)/logs$")
_JOB_CANCEL_PATH = re.compile(r"^/jobs/([0-9a-f]+)/cancel$")

#: Submit-payload fields a client may set; anything else is a 400 (a
#: typo'd budget name must not silently become an unbounded default).
_SUBMIT_FIELDS = frozenset({
    "apps", "max_events", "time_budget_s", "backend", "workers",
    "fault_profile", "fault_seed",
})


class ReproServer:
    """The assembled analysis service (scheduler thread + HTTP thread).

    ``port=0`` binds an ephemeral port; read the real one from
    ``self.address`` after :meth:`start`.  ``registry_dir=None`` uses
    the default run-registry location (``$FRAGDROID_RUNS_DIR``), so
    finished jobs land where ``repro runs``/``repro regress`` already
    look.
    """

    def __init__(
        self,
        journal_dir: Optional[os.PathLike] = None,
        registry_dir: Optional[os.PathLike] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: Optional[JobLimits] = None,
        resolver: Callable = default_resolver,
        sweep_fn: Callable = explore_many,
        max_restarts: int = 2,
        backoff_clock=None,
        default_backend: str = "thread",
        default_workers: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.default_backend = default_backend
        self.default_workers = default_workers
        self.tracer = Tracer()
        self.event_log = EventLog()
        self.queue = JobQueue(limits, metrics=self.tracer.metrics)
        self.journal = JobJournal(journal_dir)
        self.registry = RunRegistry(registry_dir)
        self.resolver = resolver
        self.scheduler = Scheduler(
            queue=self.queue,
            journal=self.journal,
            registry=self.registry,
            resolver=resolver,
            sweep_fn=sweep_fn,
            max_restarts=max_restarts,
            backoff_clock=backoff_clock,
            tracer=self.tracer,
            event_log=self.event_log,
        )
        self._stop = threading.Event()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._threads: list = []
        self.address: Tuple[str, int] = (host, port)
        self.resumed: int = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Resume journaled in-flight jobs, start the scheduler and the
        HTTP listener; returns the bound (host, port)."""
        for job in self.journal.in_flight():
            self.queue.restore(job)
            self.journal.write(job)
            self.resumed += 1
            self.tracer.inc("serve.resumed")
        scheduler_thread = threading.Thread(
            target=self.scheduler.run_forever, args=(self._stop,),
            name="serve-scheduler", daemon=True)
        scheduler_thread.start()
        self._threads.append(scheduler_thread)
        self._httpd = _Server((self.host, self.port), _Handler, self)
        self.address = (self._httpd.server_address[0],
                        self._httpd.server_address[1])
        http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http",
            daemon=True)
        http_thread.start()
        self._threads.append(http_thread)
        return self.address

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting requests and let the scheduler finish its
        current round; running jobs stay journaled for the next start."""
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    @property
    def url(self) -> str:
        return f"http://{self.address[0]}:{self.address[1]}"

    # -- operations (shared by HTTP and in-process callers) ------------------

    def submit(self, payload: Dict) -> Job:
        """Validate + admit one job from a submit payload."""
        if not isinstance(payload, dict):
            raise AdmissionError("submit payload must be a JSON object")
        unknown = set(payload) - _SUBMIT_FIELDS
        if unknown:
            raise AdmissionError(
                f"unknown submit field(s): {', '.join(sorted(unknown))}")
        apps = payload.get("apps")
        if not isinstance(apps, list) or \
                not all(isinstance(a, str) for a in apps):
            raise AdmissionError("'apps' must be a list of app names")
        try:
            job = Job(
                apps=list(apps),
                max_events=payload.get("max_events", 2000),
                time_budget_s=float(payload.get("time_budget_s", 300.0)),
                backend=str(payload.get("backend", self.default_backend)),
                workers=(int(payload["workers"])
                         if payload.get("workers") is not None
                         else self.default_workers),
                fault_profile=str(payload.get("fault_profile", "none")),
                fault_seed=int(payload.get("fault_seed", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise JobBudgetError(f"malformed submit payload: {exc}") from exc
        for app in job.apps:
            self.resolver(app)  # unknown apps are an admission failure
        self.queue.submit(job)
        self.journal.write(job)
        self.event_log.emit("job.state", job=job.job_id, state=job.state,
                            error="")
        return job

    def cancel(self, job_id: str) -> Job:
        job = self.queue.cancel(job_id)
        if job.state != RUNNING:
            self.journal.write(job)
        return job

    def job_logs(self, job_id: str) -> list:
        job = self.queue.get(job_id)  # 404 on unknown ids
        apps = set(job.apps)
        return [event.to_dict() for event in self.event_log.events()
                if event.attributes.get("job") == job.job_id
                or (event.app in apps and not event.attributes.get("job"))]

    def health(self) -> Dict:
        return {
            "ok": True,
            "queue_depth": self.queue.depth(),
            "queue_bound": self.queue.limits.queue_depth,
            "jobs": self.queue.counts(),
            "resumed": self.resumed,
        }


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, repro: ReproServer) -> None:
        self.repro = repro
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    server: _Server  # narrowed for attribute access

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the event log is the service's record, not stderr

    def _json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, exc: Exception) -> None:
        self._json(status, {"error": type(exc).__name__,
                            "message": str(exc)})

    def _body(self) -> Dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise AdmissionError(f"request body is not JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise AdmissionError("request body must be a JSON object")
        return data

    def _dispatch(self, handler: Callable[[], None]) -> None:
        try:
            handler()
        except QueueFullError as exc:
            self._error(429, exc)
        except (JobBudgetError, AdmissionError) as exc:
            self._error(400, exc)
        except UnknownJobError as exc:
            self._error(404, exc)
        except JobStateError as exc:
            self._error(409, exc)
        except ServeError as exc:
            self._error(500, exc)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        repro = self.server.repro
        if self.path == "/health":
            return self._json(200, repro.health())
        if self.path == "/metrics":
            return self._json(200,
                              {"counters": repro.tracer.metrics.counters()})
        if self.path == "/jobs":
            return self._json(200, {
                "jobs": [job.summary_row() for job in repro.queue.jobs()]})
        match = _JOB_PATH.match(self.path)
        if match:
            return self._dispatch(lambda: self._json(
                200, {"job": repro.queue.get(match.group(1)).to_dict()}))
        match = _JOB_LOGS_PATH.match(self.path)
        if match:
            return self._dispatch(lambda: self._json(
                200, {"events": repro.job_logs(match.group(1))}))
        self._json(404, {"error": "NotFound",
                         "message": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        repro = self.server.repro
        if self.path == "/jobs":
            def submit() -> None:
                job = repro.submit(self._body())
                self._json(201, {"job": job.to_dict()})
            return self._dispatch(submit)
        match = _JOB_CANCEL_PATH.match(self.path)
        if match:
            return self._dispatch(lambda: self._json(
                200, {"job": repro.cancel(match.group(1)).to_dict()}))
        if self.path == "/shutdown":
            self._json(200, {"ok": True, "message": "shutting down"})
            self.wfile.flush()  # the reply must beat the socket close
            # Stop from another thread: shutdown() blocks until
            # serve_forever exits, which must not be this handler.
            threading.Thread(target=repro.stop, daemon=True).start()
            return None
        self._json(404, {"error": "NotFound",
                         "message": f"no route {self.path!r}"})
