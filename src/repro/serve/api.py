"""The service front door: a local HTTP/JSON API over the job fleet.

Pure stdlib (``http.server``) — no new dependencies.  One
:class:`ReproServer` owns the whole service: the admission-controlled
:class:`~repro.serve.jobs.JobQueue`, the crash-safe
:class:`~repro.serve.journal.JobJournal`, the recovering
:class:`~repro.serve.scheduler.Scheduler` (on its own thread) and the
HTTP listener (a ``ThreadingHTTPServer``, one thread per request, so a
slow poll never blocks a submit).

Endpoints::

    GET  /health            service liveness, queue depth, job counts
    GET  /metrics           counters + histogram summaries; JSON by
                            default, Prometheus text exposition under
                            ``Accept: text/plain`` or
                            ``?format=prometheus``
    GET  /jobs              every known job (summary rows)
    POST /jobs              submit a job -> 201 {"job": {...}}
    GET  /jobs/<id>         one job's full state
    GET  /jobs/<id>/logs    the job's event stream (progress)
    GET  /jobs/<id>/events  the same stream *live*, as Server-Sent
                            Events: backlog replay, then push until the
                            job reaches a terminal state (heartbeat
                            comments keep idle connections alive)
    POST /jobs/<id>/cancel  cancel (immediate when queued,
                            cooperative when running)
    POST /shutdown          drain and stop the service

Typed failures map onto status codes clients can switch on:
``QueueFullError`` -> **429** (backpressure: resubmit later),
``JobBudgetError``/``AdmissionError`` -> **400**, ``UnknownJobError``
-> **404**, ``JobStateError`` -> **409**.  Every error body is
``{"error": <type>, "message": <text>}``.

Every submitted job is assigned a **trace id** from the server tracer's
id space; queue-wait, scheduler rounds and worker spans all land on
that one trace (see :mod:`repro.serve.scheduler`), and the job carries
it (``"trace_id"`` in its JSON) so a client can slice the trace back
out of a spans export.
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.bench.parallel import explore_many
from repro.errors import (
    AdmissionError,
    JobBudgetError,
    JobStateError,
    QueueFullError,
    ServeError,
    UnknownJobError,
)
from repro.obs import EventLog, Tracer, prometheus_text
from repro.obs.events import JOB_STATE
from repro.obs.registry import RunRegistry
from repro.serve.jobs import (
    Job,
    JobLimits,
    JobQueue,
    RUNNING,
    TERMINAL_STATES,
)
from repro.serve.journal import JobJournal
from repro.serve.scheduler import Scheduler, default_resolver
from repro.serve.stream import DEFAULT_BUFFER, EventBroker, event_matches

_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]+)$")
_JOB_LOGS_PATH = re.compile(r"^/jobs/([0-9a-f]+)/logs$")
_JOB_EXPLANATION_PATH = re.compile(r"^/jobs/([0-9a-f]+)/explanation$")
_JOB_EVENTS_PATH = re.compile(r"^/jobs/([0-9a-f]+)/events$")
_JOB_CANCEL_PATH = re.compile(r"^/jobs/([0-9a-f]+)/cancel$")

#: The content type Prometheus scrapers expect from a /metrics target.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Submit-payload fields a client may set; anything else is a 400 (a
#: typo'd budget name must not silently become an unbounded default).
_SUBMIT_FIELDS = frozenset({
    "apps", "max_events", "time_budget_s", "backend", "workers",
    "fault_profile", "fault_seed",
})


class ReproServer:
    """The assembled analysis service (scheduler thread + HTTP thread).

    ``port=0`` binds an ephemeral port; read the real one from
    ``self.address`` after :meth:`start`.  ``registry_dir=None`` uses
    the default run-registry location (``$FRAGDROID_RUNS_DIR``), so
    finished jobs land where ``repro runs``/``repro regress`` already
    look.
    """

    def __init__(
        self,
        journal_dir: Optional[os.PathLike] = None,
        registry_dir: Optional[os.PathLike] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: Optional[JobLimits] = None,
        resolver: Callable = default_resolver,
        sweep_fn: Callable = explore_many,
        max_restarts: int = 2,
        backoff_clock=None,
        default_backend: str = "thread",
        default_workers: Optional[int] = None,
        heartbeat_s: float = 15.0,
        sse_buffer: int = DEFAULT_BUFFER,
    ) -> None:
        self.host = host
        self.port = port
        self.default_backend = default_backend
        self.default_workers = default_workers
        self.heartbeat_s = heartbeat_s
        self.tracer = Tracer()
        self.event_log = EventLog()
        self.broker = EventBroker(metrics=self.tracer.metrics,
                                  buffer=sse_buffer)
        self.event_log.add_sink(self.broker)
        self.queue = JobQueue(limits, metrics=self.tracer.metrics)
        self.journal = JobJournal(journal_dir)
        self.registry = RunRegistry(registry_dir)
        self.resolver = resolver
        self.scheduler = Scheduler(
            queue=self.queue,
            journal=self.journal,
            registry=self.registry,
            resolver=resolver,
            sweep_fn=sweep_fn,
            max_restarts=max_restarts,
            backoff_clock=backoff_clock,
            tracer=self.tracer,
            event_log=self.event_log,
        )
        self._stop = threading.Event()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._threads: list = []
        self.address: Tuple[str, int] = (host, port)
        self.resumed: int = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Resume journaled in-flight jobs, start the scheduler and the
        HTTP listener; returns the bound (host, port)."""
        for job in self.journal.in_flight():
            self.queue.restore(job)
            self.journal.write(job)
            self.resumed += 1
            self.tracer.inc("serve.resumed")
        scheduler_thread = threading.Thread(
            target=self.scheduler.run_forever, args=(self._stop,),
            name="serve-scheduler", daemon=True)
        scheduler_thread.start()
        self._threads.append(scheduler_thread)
        self._httpd = _Server((self.host, self.port), _Handler, self)
        self.address = (self._httpd.server_address[0],
                        self._httpd.server_address[1])
        http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http",
            daemon=True)
        http_thread.start()
        self._threads.append(http_thread)
        return self.address

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting requests and let the scheduler finish its
        current round; running jobs stay journaled for the next start."""
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    @property
    def url(self) -> str:
        return f"http://{self.address[0]}:{self.address[1]}"

    @property
    def stopping(self) -> bool:
        """Whether shutdown has been requested (SSE loops drain on it)."""
        return self._stop.is_set()

    # -- operations (shared by HTTP and in-process callers) ------------------

    def submit(self, payload: Dict) -> Job:
        """Validate + admit one job from a submit payload."""
        if not isinstance(payload, dict):
            raise AdmissionError("submit payload must be a JSON object")
        unknown = set(payload) - _SUBMIT_FIELDS
        if unknown:
            raise AdmissionError(
                f"unknown submit field(s): {', '.join(sorted(unknown))}")
        apps = payload.get("apps")
        if not isinstance(apps, list) or \
                not all(isinstance(a, str) for a in apps):
            raise AdmissionError("'apps' must be a list of app names")
        try:
            job = Job(
                apps=list(apps),
                max_events=payload.get("max_events", 2000),
                time_budget_s=float(payload.get("time_budget_s", 300.0)),
                backend=str(payload.get("backend", self.default_backend)),
                workers=(int(payload["workers"])
                         if payload.get("workers") is not None
                         else self.default_workers),
                fault_profile=str(payload.get("fault_profile", "none")),
                fault_seed=int(payload.get("fault_seed", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise JobBudgetError(f"malformed submit payload: {exc}") from exc
        # The submit span roots the job's one trace: its trace id is
        # stamped on the job, and the scheduler hangs queue.wait,
        # schedule.round and every worker's spans off the same id.
        with self.tracer.span("job.submit", job=job.job_id,
                              apps=len(job.apps)) as span:
            job.trace_id = span.trace_id
            for app in job.apps:
                self.resolver(app)  # unknown apps are an admission failure
            self.queue.submit(job)
        self.journal.write(job)
        self.event_log.emit(JOB_STATE, job=job.job_id, state=job.state,
                            error="")
        return job

    def cancel(self, job_id: str) -> Job:
        job = self.queue.cancel(job_id)
        if job.state != RUNNING:
            self.journal.write(job)
        return job

    def job_logs(self, job_id: str) -> list:
        job = self.queue.get(job_id)  # 404 on unknown ids
        apps = set(job.apps)
        return [event.to_dict() for event in self.event_log.events()
                if event_matches(event, job.job_id, apps)]

    def job_explanation(self, job_id: str) -> Dict:
        """The job's coverage explanation (miss causes per unreached
        target), computed at the terminal transition and stored next to
        the job's run record."""
        from repro.obs.attribution import ExplanationStore

        job = self.queue.get(job_id)  # 404 on unknown ids
        if not job.run_id:
            raise JobStateError(
                f"job {job_id} has no recorded run yet (state "
                f"{job.state!r}) — explanations exist once the job is "
                "terminal")
        try:
            explanation = ExplanationStore(
                self.registry.directory).load(job.run_id)
        except (KeyError, ValueError, OSError) as exc:
            raise UnknownJobError(
                f"no stored explanation for job {job_id} "
                f"(run {job.run_id}): {exc}") from exc
        return explanation.to_dict()

    def metrics_snapshot(self) -> Dict:
        """Counters *and* histogram summaries (count/sum/min/max/mean
        plus p50/p90/p99) — the /metrics JSON body."""
        return self.tracer.metrics.snapshot()

    def health(self) -> Dict:
        return {
            "ok": True,
            "queue_depth": self.queue.depth(),
            "queue_bound": self.queue.limits.queue_depth,
            "jobs": self.queue.counts(),
            "resumed": self.resumed,
        }


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, repro: ReproServer) -> None:
        self.repro = repro
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    server: _Server  # narrowed for attribute access

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the event log is the service's record, not stderr

    def _json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, exc: Exception) -> None:
        self._json(status, {"error": type(exc).__name__,
                            "message": str(exc)})

    def _body(self) -> Dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise AdmissionError(f"request body is not JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise AdmissionError("request body must be a JSON object")
        return data

    def _dispatch(self, handler: Callable[[], None]) -> None:
        try:
            handler()
        except QueueFullError as exc:
            self._error(429, exc)
        except (JobBudgetError, AdmissionError) as exc:
            self._error(400, exc)
        except UnknownJobError as exc:
            self._error(404, exc)
        except JobStateError as exc:
            self._error(409, exc)
        except ServeError as exc:
            self._error(500, exc)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        repro = self.server.repro
        parsed = urlparse(self.path)
        route = parsed.path
        if route == "/health":
            return self._json(200, repro.health())
        if route == "/metrics":
            return self._metrics(parsed.query)
        if route == "/jobs":
            return self._json(200, {
                "jobs": [job.summary_row() for job in repro.queue.jobs()]})
        match = _JOB_PATH.match(route)
        if match:
            return self._dispatch(lambda: self._json(
                200, {"job": repro.queue.get(match.group(1)).to_dict()}))
        match = _JOB_LOGS_PATH.match(route)
        if match:
            return self._dispatch(lambda: self._json(
                200, {"events": repro.job_logs(match.group(1))}))
        match = _JOB_EXPLANATION_PATH.match(route)
        if match:
            return self._dispatch(lambda: self._json(
                200, {"explanation":
                      repro.job_explanation(match.group(1))}))
        match = _JOB_EVENTS_PATH.match(route)
        if match:
            return self._dispatch(lambda: self._stream_events(match.group(1)))
        self._json(404, {"error": "NotFound",
                         "message": f"no route {self.path!r}"})

    # -- /metrics ------------------------------------------------------------

    def _metrics(self, query: str) -> None:
        """Content-negotiated metrics: JSON stays the default (existing
        clients keep working), Prometheus text under ``Accept:
        text/plain`` or an explicit ``?format=prometheus``."""
        repro = self.server.repro
        wanted = (parse_qs(query).get("format", [""])[0]
                  or ("prometheus"
                      if "text/plain" in self.headers.get("Accept", "")
                      else "json"))
        snapshot = repro.metrics_snapshot()
        if wanted == "prometheus":
            body = prometheus_text(snapshot).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._json(200, snapshot)

    # -- /jobs/<id>/events (SSE) ---------------------------------------------

    def _sse_send(self, data: Dict) -> None:
        payload = json.dumps(data, sort_keys=True)
        self.wfile.write(f"id: {data.get('seq', 0)}\n"
                         f"event: {data.get('kind', 'event')}\n"
                         f"data: {payload}\n\n".encode("utf-8"))
        self.wfile.flush()

    @staticmethod
    def _is_terminal(data: Dict) -> bool:
        return (data.get("kind") == JOB_STATE
                and data.get("attributes", {}).get("state")
                in TERMINAL_STATES)

    def _stream_events(self, job_id: str) -> None:
        """Serve one job's event stream as Server-Sent Events.

        Subscribe *before* reading the backlog (no gap), replay the
        backlog, then push live events until the job's terminal
        ``job.state`` event — then an explicit ``end`` event and close.
        Heartbeat comment lines flow while the stream is quiet, so both
        sides notice a dead peer; a disconnected or too-slow client is
        unsubscribed, its buffer released with it.
        """
        repro = self.server.repro
        job = repro.queue.get(job_id)  # 404 on unknown ids
        subscription = repro.broker.subscribe(job.job_id, job.apps)
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            last_seq = 0
            terminal = False
            for data in repro.job_logs(job_id):
                self._sse_send(data)
                last_seq = int(data.get("seq", 0))
                terminal = terminal or self._is_terminal(data)
            while not terminal and not repro.stopping:
                event = subscription.get(timeout=repro.heartbeat_s)
                if subscription.overflowed:
                    self.wfile.write(b": overflowed, closing\n\n")
                    self.wfile.flush()
                    break
                if event is None:
                    self.wfile.write(b": heartbeat\n\n")
                    self.wfile.flush()
                    continue
                data = event.to_dict()
                if int(data.get("seq", 0)) <= last_seq:
                    continue  # already replayed from the backlog
                self._sse_send(data)
                last_seq = int(data.get("seq", 0))
                terminal = self._is_terminal(data)
            if terminal:
                self.wfile.write(b"event: end\ndata: {}\n\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; cleanup below
        finally:
            repro.broker.unsubscribe(subscription)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        repro = self.server.repro
        if self.path == "/jobs":
            def submit() -> None:
                job = repro.submit(self._body())
                self._json(201, {"job": job.to_dict()})
            return self._dispatch(submit)
        match = _JOB_CANCEL_PATH.match(self.path)
        if match:
            return self._dispatch(lambda: self._json(
                200, {"job": repro.cancel(match.group(1)).to_dict()}))
        if self.path == "/shutdown":
            self._json(200, {"ok": True, "message": "shutting down"})
            self.wfile.flush()  # the reply must beat the socket close
            # Stop from another thread: shutdown() blocks until
            # serve_forever exits, which must not be this handler.
            threading.Thread(target=repro.stop, daemon=True).start()
            return None
        self._json(404, {"error": "NotFound",
                         "message": f"no route {self.path!r}"})
