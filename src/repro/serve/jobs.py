"""The job model and admission-controlled queue of the analysis service.

A :class:`Job` is one analysis request — a list of corpus apps plus its
budgets — moving through a fixed lifecycle::

    submitted -> admitted -> running -> done
                                     -> failed
              -> cancelled (any non-terminal state)

The :class:`JobQueue` is where admission control lives: every submit is
validated against the server's :class:`JobLimits` *before* it is
queued, and a queue already at its depth bound rejects the submit with
a typed :class:`~repro.errors.QueueFullError` (backpressure — the
client resubmits later) instead of growing without bound.  Every
rejection is counted in the queue's metrics, so overload is observable,
never silent.

Jobs are plain data: :meth:`Job.to_dict`/:meth:`Job.from_dict` round-
trip through JSON, which is what the crash-safe journal
(:mod:`repro.serve.journal`) persists and the HTTP API serves.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.bench.parallel import BACKENDS
from repro.errors import (
    AdmissionError,
    JobBudgetError,
    JobStateError,
    QueueFullError,
    UnknownJobError,
)
from repro.obs.metrics import NULL_METRICS, Metrics

#: Bump whenever the journaled job shape changes; journal entries
#: written by another schema version are skipped, never mis-parsed.
#: v2 added the correlation ``trace_id``.
JOB_SCHEMA = 2

# -- lifecycle states --------------------------------------------------------

SUBMITTED = "submitted"    # accepted by admission control, not yet queued
ADMITTED = "admitted"      # waiting in the queue for a scheduler slot
RUNNING = "running"        # the scheduler is sweeping its apps
DONE = "done"              # every app has a journaled outcome
FAILED = "failed"          # the job as a whole failed (budget, crash)
CANCELLED = "cancelled"    # cancelled before completion

JOB_STATES = (SUBMITTED, ADMITTED, RUNNING, DONE, FAILED, CANCELLED)
ACTIVE_STATES = frozenset({SUBMITTED, ADMITTED, RUNNING})
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


@dataclass(frozen=True)
class JobLimits:
    """The server's admission caps, validated at submit time.

    A submit beyond any cap is rejected with a typed
    :class:`~repro.errors.JobBudgetError` — the service never accepts
    work it is not configured to finish.
    """

    queue_depth: int = 16
    max_apps: int = 500
    max_events_cap: int = 20000
    max_time_budget_s: float = 3600.0

    def __post_init__(self) -> None:
        for rail in ("queue_depth", "max_apps", "max_events_cap"):
            value = getattr(self, rail)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ValueError(
                    f"{rail} must be a positive integer, got {value!r}")
        if self.max_time_budget_s <= 0:
            raise ValueError(f"max_time_budget_s must be positive, "
                             f"got {self.max_time_budget_s!r}")


def new_job_id() -> str:
    """A fresh, unguessable job id (jobs are identities, not content —
    two identical submissions are two jobs)."""
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One analysis request and everything the service knows about it."""

    apps: List[str]
    job_id: str = field(default_factory=new_job_id)
    state: str = SUBMITTED
    # Per-job budgets, validated against JobLimits at submit.
    max_events: int = 2000
    time_budget_s: float = 300.0
    # Execution knobs (the sweep contract of bench.parallel).
    backend: str = "thread"
    workers: Optional[int] = None
    fault_profile: str = "none"
    fault_seed: int = 0
    # Lifecycle timestamps (wall clock, 0.0 until reached).
    created: float = field(default_factory=lambda: round(time.time(), 3))
    started: float = 0.0
    finished: float = 0.0
    # package -> sweep row (the bench.parallel.sweep_rows shape): the
    # journaled per-app outcomes.  An app present here is never
    # re-analyzed, even across a service restart.
    completed: Dict[str, Dict] = field(default_factory=dict)
    # package -> worker-death re-admissions spent so far.
    attempts: Dict[str, int] = field(default_factory=dict)
    # Apps whose worker-killing strikes tripped the circuit breaker.
    quarantined: List[str] = field(default_factory=list)
    # Why the job failed / was cancelled ("" while healthy).
    error: str = ""
    # Cooperative cancellation: checked by the scheduler between rounds.
    cancel_requested: bool = False
    # The run-registry record id once the job is done.
    run_id: str = ""
    # Correlation id for the job's one trace: assigned at submit from
    # the server tracer's id space, stamped on every span the job's
    # rounds and workers record (0 = none assigned — tracing off).
    trace_id: int = 0
    schema: int = JOB_SCHEMA

    # -- views ---------------------------------------------------------------

    def remaining(self) -> List[str]:
        """Apps without a journaled outcome yet, in submit order."""
        return [app for app in self.apps if app not in self.completed]

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    def degradation(self) -> Dict[str, object]:
        """The job's account of its own adversity: worker deaths
        absorbed, re-admissions spent, apps abandoned to quarantine."""
        failed = sorted(package for package, row in self.completed.items()
                        if not row.get("ok", True))
        return {
            "worker_deaths": int(sum(self.attempts.values())),
            "readmitted_apps": sorted(self.attempts),
            "quarantined_apps": list(self.quarantined),
            "failed_apps": failed,
        }

    def summary_row(self) -> Dict[str, object]:
        """The compact row the job listing renders."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "apps": len(self.apps),
            "completed": len(self.completed),
            "failed": sum(1 for row in self.completed.values()
                          if not row.get("ok", True)),
            "created": self.created,
            "error": self.error,
            "run_id": self.run_id,
        }

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "job_id": self.job_id,
            "state": self.state,
            "apps": list(self.apps),
            "max_events": self.max_events,
            "time_budget_s": self.time_budget_s,
            "backend": self.backend,
            "workers": self.workers,
            "fault_profile": self.fault_profile,
            "fault_seed": self.fault_seed,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "completed": {package: dict(row)
                          for package, row in self.completed.items()},
            "attempts": dict(self.attempts),
            "quarantined": list(self.quarantined),
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "run_id": self.run_id,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Job":
        schema = int(data.get("schema", -1))
        if schema != JOB_SCHEMA:
            raise ValueError(f"unsupported job schema {schema!r} "
                             f"(this build reads {JOB_SCHEMA})")
        state = str(data.get("state", SUBMITTED))
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        return cls(
            apps=[str(a) for a in data.get("apps") or ()],
            job_id=str(data.get("job_id", "")) or new_job_id(),
            state=state,
            max_events=int(data.get("max_events", 2000)),
            time_budget_s=float(data.get("time_budget_s", 300.0)),
            backend=str(data.get("backend", "thread")),
            workers=(int(data["workers"])
                     if data.get("workers") is not None else None),
            fault_profile=str(data.get("fault_profile", "none")),
            fault_seed=int(data.get("fault_seed", 0)),
            created=float(data.get("created", 0.0)),
            started=float(data.get("started", 0.0)),
            finished=float(data.get("finished", 0.0)),
            completed={str(package): dict(row) for package, row
                       in (data.get("completed") or {}).items()},
            attempts={str(package): int(count) for package, count
                      in (data.get("attempts") or {}).items()},
            quarantined=[str(a) for a in data.get("quarantined") or ()],
            error=str(data.get("error", "")),
            cancel_requested=bool(data.get("cancel_requested", False)),
            run_id=str(data.get("run_id", "")),
            trace_id=int(data.get("trace_id", 0)),
            schema=schema,
        )


# ---------------------------------------------------------------------------
# The queue
# ---------------------------------------------------------------------------

class JobQueue:
    """Bounded, admission-controlled FIFO of jobs.

    ``submit`` validates and either admits (state ``admitted``) or
    raises a typed :class:`~repro.errors.AdmissionError` subclass —
    nothing is ever queued past ``limits.queue_depth`` and every
    rejection lands in the metrics (``serve.rejected.*``).  The
    scheduler drains with ``next_job``; terminal jobs stay readable by
    id so clients can poll a finished job's status.
    """

    def __init__(self, limits: Optional[JobLimits] = None,
                 metrics: Metrics = NULL_METRICS) -> None:
        self.limits = limits or JobLimits()
        self.metrics = metrics
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._pending: Deque[str] = deque()

    # -- admission -----------------------------------------------------------

    def validate(self, job: Job) -> None:
        """Admission-control validation; raises on any violation."""
        if not job.apps:
            raise JobBudgetError("a job needs at least one app")
        if len(job.apps) > self.limits.max_apps:
            raise JobBudgetError(
                f"job asks for {len(job.apps)} apps; this server admits "
                f"at most {self.limits.max_apps} per job")
        if len(set(job.apps)) != len(job.apps):
            raise AdmissionError("duplicate apps in one job")
        if not isinstance(job.max_events, int) \
                or isinstance(job.max_events, bool) or job.max_events < 1:
            raise JobBudgetError(
                f"max_events must be a positive integer, "
                f"got {job.max_events!r}")
        if job.max_events > self.limits.max_events_cap:
            raise JobBudgetError(
                f"max_events {job.max_events} exceeds the server cap "
                f"{self.limits.max_events_cap}")
        if job.time_budget_s <= 0:
            raise JobBudgetError(
                f"time_budget_s must be positive, got {job.time_budget_s!r}")
        if job.time_budget_s > self.limits.max_time_budget_s:
            raise JobBudgetError(
                f"time_budget_s {job.time_budget_s} exceeds the server cap "
                f"{self.limits.max_time_budget_s}")
        if job.backend not in BACKENDS:
            raise AdmissionError(
                f"unknown backend {job.backend!r}; choose from {BACKENDS}")
        if job.workers is not None and job.workers < 1:
            raise JobBudgetError(
                f"workers must be a positive integer, got {job.workers!r}")

    def submit(self, job: Job) -> Job:
        """Admit a job or raise; full queues raise
        :class:`~repro.errors.QueueFullError` (counted), they never
        grow past the bound."""
        try:
            self.validate(job)
        except AdmissionError:
            self.metrics.inc("serve.rejected.budget")
            raise
        with self._lock:
            if len(self._pending) >= self.limits.queue_depth:
                self.metrics.inc("serve.rejected.queue_full")
                raise QueueFullError(
                    f"job queue is at its bound "
                    f"({self.limits.queue_depth} pending); retry later")
            job.state = ADMITTED
            self._jobs[job.job_id] = job
            self._pending.append(job.job_id)
        self.metrics.inc("serve.admitted")
        return job

    # -- draining ------------------------------------------------------------

    def next_job(self) -> Optional[Job]:
        """The oldest admitted job, or None when the queue is idle.
        Cancelled-while-queued jobs are skipped, not returned."""
        with self._lock:
            while self._pending:
                job = self._jobs[self._pending.popleft()]
                if job.state == ADMITTED:
                    return job
        return None

    # -- access --------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"no job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        """Every known job, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(),
                          key=lambda j: (j.created, j.job_id))

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def counts(self) -> Dict[str, int]:
        """Job tally by state (the /health payload)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            counts[job.state] += 1
        return counts

    # -- cancellation --------------------------------------------------------

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job immediately; flag a running one for
        cooperative cancellation at its next round boundary."""
        with self._lock:
            try:
                job = self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"no job {job_id!r}") from None
            if job.state in TERMINAL_STATES:
                raise JobStateError(
                    f"job {job_id} is already {job.state}; cannot cancel")
            if job.state == RUNNING:
                job.cancel_requested = True
            else:
                job.state = CANCELLED
                job.finished = round(time.time(), 3)
                job.error = "cancelled before start"
                # Free the queue slot now — a cancelled job must not
                # keep holding the admission bound against new submits.
                try:
                    self._pending.remove(job_id)
                except ValueError:
                    pass
        self.metrics.inc("serve.cancel_requested")
        return job

    # -- restart recovery ----------------------------------------------------

    def restore(self, job: Job) -> None:
        """Re-admit a journaled in-flight job after a service restart
        (its completed apps ride along, so nothing re-analyzes)."""
        with self._lock:
            if job.state in (SUBMITTED, RUNNING):
                job.state = ADMITTED
            self._jobs[job.job_id] = job
            if job.state == ADMITTED:
                self._pending.append(job.job_id)
