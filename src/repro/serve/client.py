"""A tiny stdlib HTTP client for the analysis service.

What ``repro jobs submit|status|logs|cancel`` talks through — and the
programmatic way to drive a running ``repro serve`` from a script.
Server-side typed failures come back as :class:`ServeClientError` with
the HTTP status and the original error type name attached, so callers
can distinguish backpressure (429, resubmit later) from a bad request
(400) without parsing message text.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

from repro.errors import ServeError

#: $FRAGDROID_SERVE_URL overrides this; the CLI default.
DEFAULT_URL = "http://127.0.0.1:7340"


class ServeClientError(ServeError):
    """An HTTP call to the service failed.

    ``status`` is the HTTP code (0 when the service was unreachable);
    ``kind`` is the server-side error type name (``QueueFullError``,
    ``JobBudgetError``, ...) or ``""`` for transport failures.
    """

    def __init__(self, message: str, status: int = 0,
                 kind: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind


class ServeClient:
    """Talks JSON to one ``repro serve`` instance."""

    def __init__(self, url: str = DEFAULT_URL,
                 timeout_s: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        data = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        request = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {}
            raise ServeClientError(
                str(body.get("message", f"HTTP {exc.code}")),
                status=exc.code,
                kind=str(body.get("error", "")),
            ) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"cannot reach the service at {self.url}: {exc.reason} "
                f"(is `repro serve` running?)") from None
        except OSError as exc:
            # A mid-response connection reset (e.g. the service going
            # down right after /shutdown) is a transport failure too.
            raise ServeClientError(
                f"connection to {self.url} failed: {exc}") from None

    # -- operations ----------------------------------------------------------

    def health(self) -> Dict:
        return self._request("GET", "/health")

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """The /metrics payload in Prometheus text exposition format."""
        request = urllib.request.Request(
            self.url + "/metrics?format=prometheus",
            headers={"Accept": "text/plain"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            raise ServeClientError(
                f"cannot scrape {self.url}/metrics: {exc}") from None

    def submit(self, apps: List[str], **options) -> Dict:
        """Submit a job; returns the admitted job dict."""
        payload: Dict = {"apps": list(apps)}
        payload.update({key: value for key, value in options.items()
                        if value is not None})
        return self._request("POST", "/jobs", payload)["job"]

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def logs(self, job_id: str) -> List[Dict]:
        return self._request("GET", f"/jobs/{job_id}/logs")["events"]

    def explanation(self, job_id: str) -> Dict:
        """The finished job's coverage explanation (miss causes)."""
        return self._request(
            "GET", f"/jobs/{job_id}/explanation")["explanation"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def stream_events(self, job_id: str,
                      timeout_s: Optional[float] = None) -> Iterator[Dict]:
        """Follow one job's event stream live (SSE).

        Yields each event's dict as the service pushes it — the backlog
        first, then live — and returns when the service closes the
        stream (the job reached a terminal state, or shutdown).
        Heartbeat comments are consumed silently.  ``timeout_s`` is the
        socket read timeout between events; it must exceed the server's
        heartbeat interval (the default rides the client timeout).
        """
        request = urllib.request.Request(
            self.url + f"/jobs/{job_id}/events",
            headers={"Accept": "text/event-stream"})
        timeout = timeout_s if timeout_s is not None else self.timeout_s
        try:
            response = urllib.request.urlopen(request, timeout=timeout)
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {}
            raise ServeClientError(
                str(body.get("message", f"HTTP {exc.code}")),
                status=exc.code,
                kind=str(body.get("error", "")),
            ) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServeClientError(
                f"cannot reach the service at {self.url}: {exc} "
                f"(is `repro serve` running?)") from None
        try:
            data_lines: List[str] = []
            event_name = ""
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:  # blank line = dispatch the pending event
                    if event_name == "end":
                        return
                    if data_lines:
                        try:
                            yield json.loads("\n".join(data_lines))
                        except ValueError:
                            pass  # a malformed frame never kills the tail
                    data_lines = []
                    event_name = ""
                    continue
                if line.startswith(":"):
                    continue  # heartbeat comment
                if line.startswith("event:"):
                    event_name = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
        except OSError:
            return  # the service went away mid-stream; yield what we got
        finally:
            response.close()

    def shutdown(self) -> Dict:
        return self._request("POST", "/shutdown")

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2) -> Dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {job['state']!r} after "
                    f"{timeout_s:g}s")
            time.sleep(poll_s)
