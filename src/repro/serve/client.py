"""A tiny stdlib HTTP client for the analysis service.

What ``repro jobs submit|status|logs|cancel`` talks through — and the
programmatic way to drive a running ``repro serve`` from a script.
Server-side typed failures come back as :class:`ServeClientError` with
the HTTP status and the original error type name attached, so callers
can distinguish backpressure (429, resubmit later) from a bad request
(400) without parsing message text.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.errors import ServeError

#: $FRAGDROID_SERVE_URL overrides this; the CLI default.
DEFAULT_URL = "http://127.0.0.1:7340"


class ServeClientError(ServeError):
    """An HTTP call to the service failed.

    ``status`` is the HTTP code (0 when the service was unreachable);
    ``kind`` is the server-side error type name (``QueueFullError``,
    ``JobBudgetError``, ...) or ``""`` for transport failures.
    """

    def __init__(self, message: str, status: int = 0,
                 kind: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind


class ServeClient:
    """Talks JSON to one ``repro serve`` instance."""

    def __init__(self, url: str = DEFAULT_URL,
                 timeout_s: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None) -> Dict:
        data = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        request = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {}
            raise ServeClientError(
                str(body.get("message", f"HTTP {exc.code}")),
                status=exc.code,
                kind=str(body.get("error", "")),
            ) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"cannot reach the service at {self.url}: {exc.reason} "
                f"(is `repro serve` running?)") from None
        except OSError as exc:
            # A mid-response connection reset (e.g. the service going
            # down right after /shutdown) is a transport failure too.
            raise ServeClientError(
                f"connection to {self.url} failed: {exc}") from None

    # -- operations ----------------------------------------------------------

    def health(self) -> Dict:
        return self._request("GET", "/health")

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    def submit(self, apps: List[str], **options) -> Dict:
        """Submit a job; returns the admitted job dict."""
        payload: Dict = {"apps": list(apps)}
        payload.update({key: value for key, value in options.items()
                        if value is not None})
        return self._request("POST", "/jobs", payload)["job"]

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def logs(self, job_id: str) -> List[Dict]:
        return self._request("GET", f"/jobs/{job_id}/logs")["events"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def shutdown(self) -> Dict:
        return self._request("POST", "/shutdown")

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2) -> Dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {job['state']!r} after "
                    f"{timeout_s:g}s")
            time.sleep(poll_s)
