"""The supervised job scheduler: sweeps with a safety net.

One :class:`Scheduler` drains the admission-controlled
:class:`~repro.serve.jobs.JobQueue` and runs each job as a sequence of
*rounds* over the existing sweep machinery
(:func:`repro.bench.parallel.explore_many`, thread or process
backend).  What turns the batch sweep into a service is everything
around the rounds:

* **Worker-death recovery** — a process-backend worker killed mid-chunk
  surfaces as ``fault_kind "worker-died"`` outcomes (the
  ``BrokenProcessPool`` handling in ``bench.parallel``).  The scheduler
  re-admits exactly those apps into the next round, with backoff from
  the existing :class:`~repro.faults.RetryPolicy`; each death is a
  strike in a :class:`~repro.faults.WidgetQuarantine`-style circuit
  breaker, and after ``max_restarts`` re-admissions the app is
  quarantined and recorded as *failed* — bounded requeue, never an
  infinite loop, never a silently dropped app.
* **Watchdog** — each round runs under the job's remaining wall-clock
  budget; a sweep that hangs past it is abandoned (the thread is
  daemonized, so a wedged pool cannot wedge the service) and the job
  fails with its unfinished apps recorded as ``hung``.
* **Crash-safe journaling** — the job snapshot is journaled after every
  round, so a service restart resumes mid-job without re-analyzing any
  app whose row was already journaled.
* **Registry hand-off** — a terminal ``done``/``failed`` job lands as
  one content-addressed record in the
  :class:`~repro.obs.registry.RunRegistry`, its ``meta`` carrying the
  job id and the degradation account (deaths, re-admissions,
  quarantines), exactly once even across restarts.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro import FragDroidConfig
from repro.bench.parallel import SweepOutcome, explore_many, sweep_rows
from repro.corpus.synth import AppPlan
from repro.corpus.table1_apps import plan_for
from repro.errors import AdmissionError
from repro.faults import RetryPolicy, SimulatedClock, WidgetQuarantine
from repro.obs import NULL_EVENT_LOG, NULL_TRACER, EventLog, Tracer
from repro.obs.events import (
    JOB_APP_DONE,
    JOB_READMITTED,
    JOB_ROUND,
    JOB_STATE,
    JOB_WORKER_DIED,
)
from repro.obs.registry import (
    RunRegistry,
    capture_run_record,
    corpus_digest_of,
)
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    Job,
    JobQueue,
)
from repro.serve.journal import JobJournal

#: Fault kinds the scheduler re-admits: the app did not fail, its
#: execution vehicle did.
_READMIT_KINDS = frozenset({"worker-died"})

#: Tiny demo corpus for service smoke tests: three healthy apps small
#: enough that a full job finishes in seconds.
SERVE_DEMO_PLANS = (
    AppPlan(package="com.serve.demo.alpha", visited_activities=2,
            visited_fragments=1),
    AppPlan(package="com.serve.demo.beta", visited_activities=3),
    AppPlan(package="com.serve.demo.gamma", visited_activities=2,
            visited_fragments=2),
)


def default_resolver(name: str) -> AppPlan:
    """App name -> plan, over the Table-I corpus and the serve demos.

    Unknown names raise :class:`~repro.errors.AdmissionError` — the
    submit is rejected up front, not after the job is queued.
    """
    for plan in SERVE_DEMO_PLANS:
        if plan.package == name:
            return plan
    try:
        return plan_for(name)
    except KeyError:
        raise AdmissionError(
            f"unknown app {name!r}; known apps are the Table-I corpus "
            f"and the serve demos "
            f"({', '.join(p.package for p in SERVE_DEMO_PLANS)})"
        ) from None


class WallClock:
    """The production sleeper (tests pass a SimulatedClock instead)."""

    def __init__(self) -> None:
        self.now = 0.0

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)
        self.now += seconds


class Scheduler:
    """Runs queued jobs with recovery, journaling and registry hand-off.

    ``sweep_fn`` is the round primitive (default
    :func:`~repro.bench.parallel.explore_many`); tests inject a fake to
    script worker deaths and hangs without real process pools.
    ``backoff_clock`` spaces re-admission rounds under ``retry_policy``
    — the default :class:`~repro.faults.SimulatedClock` makes recovery
    immediate and deterministic; pass :class:`WallClock` to actually
    wait.  ``wall`` is the watchdog's monotonic time source.
    """

    def __init__(
        self,
        queue: JobQueue,
        journal: JobJournal,
        registry: Optional[RunRegistry] = None,
        resolver: Callable[[str], AppPlan] = default_resolver,
        sweep_fn: Callable[..., Dict[str, SweepOutcome]] = explore_many,
        max_restarts: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        backoff_clock=None,
        tracer: Tracer = NULL_TRACER,
        event_log: EventLog = NULL_EVENT_LOG,
        wall: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, "
                             f"got {max_restarts}")
        self.queue = queue
        self.journal = journal
        self.registry = registry
        self.resolver = resolver
        self.sweep_fn = sweep_fn
        self.max_restarts = max_restarts
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=max_restarts + 1, max_total_delay=30.0)
        self.backoff_clock = backoff_clock or SimulatedClock()
        self.tracer = tracer
        self.event_log = event_log
        self.wall = wall
        # Live sweep outcomes per running job, so the terminal record
        # can be explained (per-target miss causes) before the results
        # are dropped.  Journal-resumed rows have no outcome — their
        # apps are simply absent from the job's explanation.
        self._live_outcomes: Dict[str, Dict[str, SweepOutcome]] = {}

    # -- the service loop ----------------------------------------------------

    def run_forever(self, stop: threading.Event,
                    poll_s: float = 0.05) -> None:
        """Drain the queue until ``stop`` is set.  A job whose run
        raises (a scheduler bug, a full disk) is marked failed — one
        broken job never takes the service down."""
        while not stop.is_set():
            job = self.queue.next_job()
            if job is None:
                stop.wait(poll_s)
                continue
            try:
                self.run_job(job)
            except Exception as exc:  # noqa: BLE001 - service supervisor
                self.tracer.inc("serve.job.crashed")
                job.state = FAILED
                job.error = f"scheduler failure: {exc!r}"
                job.finished = round(time.time(), 3)
                try:
                    self.journal.write(job)
                except OSError:
                    pass

    # -- one job -------------------------------------------------------------

    def run_job(self, job: Job) -> Job:
        """Run one admitted job to a terminal state.

        Everything the job does — the ``queue.wait`` it already paid,
        every ``schedule.round``, every worker's spans (thread or
        process backend) — lands on one trace, the job's ``trace_id``,
        so ``trace-summary``/flamegraphs show one tree per job.
        """
        trace = job.trace_id or None
        wait_s = max(0.0, time.time() - job.created)
        # The wait is only known at pickup — record it retrospectively.
        self.tracer.record_span("queue.wait", wait_s, trace_id=trace,
                                job=job.job_id)
        self.tracer.observe("serve.queue.wait_s", wait_s)
        self.tracer.observe("serve.queue.depth", float(self.queue.depth()))
        with self.tracer.trace_span("job.run", trace, job=job.job_id,
                                    apps=len(job.apps)):
            return self._run_admitted(job)

    def _run_admitted(self, job: Job) -> Job:
        job.state = RUNNING
        job.started = job.started or round(time.time(), 3)
        self.tracer.observe("serve.job.start_s",
                            max(0.0, job.started - job.created))
        self.journal.write(job)
        self._emit_state(job)
        deadline = self.wall() + job.time_budget_s

        # Re-seed the circuit breaker from journaled attempts, so a
        # restarted service does not grant a fresh restart budget.
        quarantine = WidgetQuarantine(threshold=self.max_restarts + 1)
        for package, strikes in job.attempts.items():
            for _ in range(strikes):
                quarantine.record(package, "worker-died")

        plans = [self.resolver(name) for name in job.remaining()]
        backed_off = 0.0
        round_index = 0
        while plans:
            if job.cancel_requested:
                return self._finish(job, CANCELLED, "cancelled mid-flight")
            # Round 0 sweeps the whole job at once.  Re-admission
            # rounds sweep one app per pool, so a poison app that keeps
            # killing its worker can never take a surviving app's
            # retry down with it (a broken pool fails every chunk
            # still pending in it).
            batches = ([plans] if round_index == 0
                       else [[plan] for plan in plans])
            outcomes: Dict[str, SweepOutcome] = {}
            failure = ""
            with self.tracer.span("schedule.round", job=job.job_id,
                                  round=round_index,
                                  apps=len(plans)) as round_span:
                for batch in batches:
                    remaining_s = deadline - self.wall()
                    if remaining_s <= 0:
                        failure = failure or "timeout"
                        break
                    part = self._guarded_sweep(job, batch, remaining_s)
                    if part is None:
                        # The hang consumed the remaining budget; stop.
                        failure = "hung"
                        break
                    outcomes.update(part)
                if failure:
                    round_span.set_attribute("failure", failure)
            requeue: List[AppPlan] = []
            for plan in plans:
                outcome = outcomes.get(plan.package)
                if outcome is None:
                    continue  # unfinished: handled by the failure path
                if outcome.fault_kind in _READMIT_KINDS:
                    if self._readmit(job, plan, quarantine):
                        requeue.append(plan)
                        continue
                self._complete_app(job, outcome)
            self.journal.write(job)
            self.event_log.emit(JOB_ROUND, job=job.job_id,
                                round=round_index, apps=len(plans),
                                requeued=len(requeue),
                                **({"failure": failure} if failure else {}))
            if failure:
                unfinished = [plan for plan in plans
                              if plan.package not in job.completed]
                self._record_unfinished(job, unfinished, failure)
                return self._finish(
                    job, FAILED,
                    f"{'watchdog: sweep hung past' if failure == 'hung' else 'exhausted'} "
                    f"the time budget ({job.time_budget_s:g}s) with "
                    f"{len(unfinished)} app(s) unfinished")
            if requeue:
                delay = self.retry_policy.delay_for(round_index,
                                                    elapsed=backed_off)
                backed_off += delay
                self.tracer.observe("serve.retry.delay_s", delay)
                self.backoff_clock.sleep(delay)
                round_index += 1
            plans = requeue
        if job.cancel_requested:
            return self._finish(job, CANCELLED, "cancelled mid-flight")
        return self._finish(job, DONE, "")

    # -- round plumbing ------------------------------------------------------

    def _guarded_sweep(self, job: Job, plans: List[AppPlan],
                       timeout_s: float,
                       ) -> Optional[Dict[str, SweepOutcome]]:
        """One sweep round under the watchdog; None when it hung."""
        box: Dict[str, object] = {}

        def run() -> None:
            try:
                box["outcomes"] = self.sweep_fn(
                    plans, config=self._job_config(job),
                    max_workers=job.workers, backend=job.backend)
            except BaseException as exc:  # noqa: BLE001 - crosses threads
                box["error"] = exc

        thread = threading.Thread(target=run, daemon=True,
                                  name=f"serve-sweep-{job.job_id}")
        thread.start()
        thread.join(timeout=timeout_s)
        if thread.is_alive():
            self.tracer.inc("serve.watchdog.hung")
            return None
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["outcomes"]  # type: ignore[return-value]

    def _job_config(self, job: Job,
                    observed: bool = True) -> FragDroidConfig:
        """A fresh per-round config: the job's budgets plus (when
        ``observed``) the service's shared observers.  No registry —
        the scheduler writes the one terminal record itself.  The
        terminal record passes ``observed=False`` so each job's record
        carries its own fingerprint, not the whole service's spans."""
        config = FragDroidConfig(
            max_events=job.max_events,
            fault_profile=job.fault_profile,
            fault_seed=job.fault_seed,
        )
        if observed:
            config.tracer = self.tracer
            config.event_log = self.event_log
            # Worker spans — thread or process backend — land on the
            # job's trace (observer-only: not part of the fingerprint).
            config.trace_id = job.trace_id or None
        return config

    def _readmit(self, job: Job, plan: AppPlan,
                 quarantine: WidgetQuarantine) -> bool:
        """Count one worker-killing strike; True to requeue the app,
        False once its restart budget is spent (it gets a failed row)."""
        package = plan.package
        quarantine.record(package, "worker-died")
        self.tracer.inc("serve.worker.deaths")
        self.event_log.emit(JOB_WORKER_DIED, app=package, job=job.job_id,
                            strikes=quarantine.strikes(package))
        if not quarantine.blocked(package):
            job.attempts[package] = job.attempts.get(package, 0) + 1
            self.tracer.inc("serve.readmitted")
            self.event_log.emit(JOB_READMITTED, app=package,
                                job=job.job_id)
            return True
        if package not in job.quarantined:
            job.quarantined.append(package)
        self.tracer.inc("serve.quarantined")
        return False

    def _complete_app(self, job: Job, outcome: SweepOutcome) -> None:
        row = sweep_rows({outcome.package: outcome})[0]
        row["apk_digest"] = outcome.apk_digest
        job.completed[outcome.package] = row
        self._live_outcomes.setdefault(job.job_id, {})[
            outcome.package] = outcome
        self.event_log.emit(JOB_APP_DONE, app=outcome.package,
                            job=job.job_id, ok=outcome.ok)

    def _record_unfinished(self, job: Job, plans: List[AppPlan],
                           kind: str) -> None:
        """Never drop an app silently: unfinished work gets explicit
        failed rows (fault kind ``timeout``/``hung``)."""
        for plan in plans:
            job.completed[plan.package] = {
                "package": plan.package,
                "ok": False,
                "duration_s": 0.0,
                "fault_kind": kind,
                "activities_visited": 0, "activities_sum": 0,
                "fragments_visited": 0, "fragments_sum": 0,
                "apis": 0, "events": 0, "crashes": 0,
                "apk_digest": None,
            }

    # -- terminal transition -------------------------------------------------

    def _finish(self, job: Job, state: str, error: str) -> Job:
        job.state = state
        job.error = error
        job.finished = round(time.time(), 3)
        if job.started:
            self.tracer.observe("serve.job.run_s",
                                max(0.0, job.finished - job.started))
        if state in (DONE, FAILED) and self.registry is not None:
            job.run_id = self._record_run(job)
        self._live_outcomes.pop(job.job_id, None)
        self.journal.write(job)
        self._emit_state(job)
        self.tracer.inc(f"serve.jobs.{state}")
        return job

    def _record_run(self, job: Job) -> str:
        rows = [job.completed[package] for package in sorted(job.completed)]
        census: Dict[str, int] = {}
        for row in rows:
            if not row.get("ok", True):
                kind = row.get("fault_kind") or "other"
                census[kind] = census.get(kind, 0) + 1
        record = capture_run_record(
            "serve-job",
            config=self._job_config(job, observed=False),
            apps=[{key: value for key, value in row.items()
                   if key != "apk_digest"} for row in rows],
            fault_census=census,
            corpus_digest=corpus_digest_of(
                {row["package"]: row.get("apk_digest") for row in rows}),
            meta={
                "job_id": job.job_id,
                "backend": job.backend,
                "workers": job.workers,
                "state": job.state,
                "degradation": job.degradation(),
            },
        )
        run_id = self.registry.record(record)
        self._record_explanation(job, run_id)
        return run_id

    def _record_explanation(self, job: Job, run_id: str) -> None:
        """Explain the job's misses and store the artifact next to its
        run record, so ``GET /jobs/<id>/explanation`` and ``repro
        explain <run id>`` answer from the same file.  Best-effort: an
        attribution failure never fails the job."""
        outcomes = self._live_outcomes.get(job.job_id) or {}
        if not outcomes:
            return
        from repro.obs.attribution import ExplanationStore, explain_outcomes

        try:
            explanation = explain_outcomes(
                outcomes, label="serve-job", source_run_id=run_id,
                meta={"job_id": job.job_id}, event_log=self.event_log)
            ExplanationStore(self.registry.directory).save(explanation)
        except Exception:  # noqa: BLE001 - post-hoc analysis only
            self.tracer.inc("serve.explanation.failed")

    def _emit_state(self, job: Job) -> None:
        self.event_log.emit(JOB_STATE, job=job.job_id, state=job.state,
                            error=job.error)
