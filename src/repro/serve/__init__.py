"""Service mode: the supervised, resumable exploration fleet.

``repro serve`` turns the batch sweep (:mod:`repro.bench.parallel`)
into a long-running local analysis service:

* :class:`Job` / :class:`JobQueue` — the job lifecycle and the
  admission-controlled, bounded queue (typed rejections, backpressure);
* :class:`JobJournal` — crash-safe job persistence (atomic writes,
  schema-versioned, corrupt entries skipped), the restart story;
* :class:`Scheduler` — sweeps each job in supervised rounds with
  worker-death re-admission, circuit breaking and a watchdog;
* :class:`ReproServer` — the assembled service plus its HTTP/JSON API;
* :class:`EventBroker` — the SSE fan-out behind ``GET
  /jobs/<id>/events`` (bounded per-client buffers, overflow counted);
* :class:`ServeClient` — the stdlib client the ``repro jobs`` CLI uses.

Telemetry: every job is assigned a ``trace_id`` at submit; queue-wait,
scheduler rounds and worker spans all correlate under it, and
``/metrics`` serves the latency histograms (queue wait, time to start,
run duration, retry delay) as JSON or Prometheus text.

See ``docs/service.md`` for lifecycle, recovery guarantees, telemetry
and the API.
"""

from repro.serve.api import PROMETHEUS_CONTENT_TYPE, ReproServer
from repro.serve.client import DEFAULT_URL, ServeClient, ServeClientError
from repro.serve.jobs import (
    ACTIVE_STATES,
    ADMITTED,
    CANCELLED,
    DONE,
    FAILED,
    JOB_SCHEMA,
    JOB_STATES,
    RUNNING,
    SUBMITTED,
    TERMINAL_STATES,
    Job,
    JobLimits,
    JobQueue,
)
from repro.serve.journal import JobJournal, default_journal_dir
from repro.serve.scheduler import (
    SERVE_DEMO_PLANS,
    Scheduler,
    WallClock,
    default_resolver,
)
from repro.serve.stream import (
    DEFAULT_BUFFER,
    EventBroker,
    Subscription,
    event_matches,
)

__all__ = [
    "ACTIVE_STATES",
    "ADMITTED",
    "CANCELLED",
    "DEFAULT_BUFFER",
    "DEFAULT_URL",
    "DONE",
    "EventBroker",
    "FAILED",
    "JOB_SCHEMA",
    "JOB_STATES",
    "Job",
    "JobJournal",
    "JobLimits",
    "JobQueue",
    "PROMETHEUS_CONTENT_TYPE",
    "RUNNING",
    "ReproServer",
    "SERVE_DEMO_PLANS",
    "SUBMITTED",
    "Scheduler",
    "ServeClient",
    "ServeClientError",
    "Subscription",
    "TERMINAL_STATES",
    "WallClock",
    "default_journal_dir",
    "default_resolver",
    "event_matches",
]
