"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the corpus apps and figure demos available by name;
* ``static <app>`` — run Static Information Extraction, print the AFTM
  summary (``--dot`` for Graphviz, ``--json`` for the model);
* ``explore <app>`` — run the full FragDroid pipeline, print the
  coverage report (``--json`` for the structured run report);
* ``audit <app>`` — explore and print the sensitive-API relations;
* ``trace-summary <run.jsonl>`` — per-phase timing and top-N slowest
  spans of a traced run (written with ``explore --trace-jsonl``);
  ``--flame`` emits collapsed-stack flamegraph lines instead;
* ``dashboard <run dir>`` — render the self-contained HTML run
  dashboard from a saved run (``explore --save`` with the flight
  recorder on) or a directory of runs (the fleet view);
* ``table1`` / ``table2`` / ``study`` / ``compare`` / ``ablate`` —
  regenerate the paper's experiments; the sweep commands take
  ``--workers N`` and ``--backend {thread,process}`` (the process pool
  sidesteps the GIL for market-scale runs);
* ``cache stats`` / ``cache clear`` — inspect or drop the
  content-addressed static-analysis cache (fed by ``--static-cache``);
* ``runs list|show|diff|gc|pin|ingest`` — the longitudinal run
  registry: list recorded runs, print one record, structured-diff two
  records, prune old ones (never the pinned baseline), pin the
  regression baseline, ingest benchmark result JSON;
* ``regress --baseline REF`` — the deterministic regression gate:
  compare a candidate run (recorded id, record file, or a fresh
  Table-I sweep) against a baseline record; exit 1 on regression (a
  replay record with divergences on an unchanged app also fails);
* ``replay SCRIPT`` — re-run a recorded ``*.replay.json`` script
  (written by ``explore --save DIR --export-replay``) on a fresh
  device; reports applied/diverged-at and the coverage reached;
* ``fragility APP`` — the R&R breakage study: record a suite, replay
  it against seeded app mutations, print the per-mutation table;
* ``serve`` — run the exploration fleet as a local HTTP/JSON service:
  admission-controlled job queue, crash-safe journal (restart resumes
  in-flight jobs), worker-death recovery with bounded re-admission;
* ``jobs submit|status|logs|cancel`` — talk to a running ``serve``
  (``--url``, or ``$FRAGDROID_SERVE_URL``); see ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.apk.appspec import AppSpec
from repro.bench import (
    run_ablation,
    run_baseline_comparison,
    run_table1,
    run_usage_study,
)
from repro.bench.parallel import BACKENDS
from repro.core.report import aftm_to_json, result_to_json
from repro.core.sensitive_analysis import build_api_report
from repro.faults import FAULT_PROFILES, make_device
from repro.corpus import (
    build_table1_app,
    demo_aftm_example,
    demo_drawer_app,
    demo_tabbed_app,
    table1_packages,
)
from repro.static import extract_static_info

DEMOS: Dict[str, Callable[[], AppSpec]] = {
    "demo:tabs": demo_tabbed_app,
    "demo:drawer": demo_drawer_app,
    "demo:aftm": demo_aftm_example,
}


def _resolve_apk(name: str):
    """An app by corpus name, demo name, or .apk file path."""
    import pathlib

    if name.endswith(".apk") and pathlib.Path(name).exists():
        from repro.apk.apkfile import load_apk

        return load_apk(name)
    if name in DEMOS:
        return build_apk(DEMOS[name]())
    if name in table1_packages():
        return build_apk(build_table1_app(name))
    # Replay scripts name the Android package, not the demo alias.
    for factory in DEMOS.values():
        spec = factory()
        if spec.package == name:
            return build_apk(spec)
    raise SystemExit(
        f"unknown app {name!r}; run `python -m repro list` for choices, "
        "or pass a path to a saved .apk"
    )


def _resolve_spec(name: str) -> AppSpec:
    """An app *spec* by corpus or demo name (mutations need the spec;
    a bare .apk file cannot be mutated)."""
    if name.endswith(".apk"):
        raise SystemExit(
            "the fragility study mutates the app spec; .apk files are "
            "not supported — pass a demo:* or corpus name"
        )
    if name in DEMOS:
        return DEMOS[name]()
    if name in table1_packages():
        return build_table1_app(name)
    for factory in DEMOS.values():
        spec = factory()
        if spec.package == name:
            return spec
    raise SystemExit(
        f"unknown app {name!r}; run `python -m repro list` for choices"
    )


def _config_from(args: argparse.Namespace) -> FragDroidConfig:
    config = FragDroidConfig(
        enable_reflection=not args.no_reflection,
        enable_forced_start=not args.no_forced_start,
        enable_click_exploration=not args.no_click_sweep,
        input_strategy="heuristic" if args.heuristic_inputs else "default",
        max_events=args.max_events,
        fault_profile=getattr(args, "faults", "none"),
        fault_seed=getattr(args, "fault_seed", 0),
    )
    if getattr(args, "trace_jsonl", None):
        from repro.obs import JsonlSink, Tracer

        try:
            sink = JsonlSink(args.trace_jsonl)
        except OSError as exc:
            raise SystemExit(
                f"cannot open trace file {args.trace_jsonl!r}: {exc}"
            ) from exc
        config.tracer = Tracer(sinks=[sink])
    if getattr(args, "metrics_prom", None) and not config.tracer.enabled:
        from repro.obs import Tracer

        # The counters live on the tracer; --metrics-prom alone still
        # needs a live one (spans just go nowhere).
        config.tracer = Tracer()
    if getattr(args, "events_jsonl", None):
        from repro.obs import EventLog, JsonlSink

        try:
            sink = JsonlSink(args.events_jsonl)
        except OSError as exc:
            raise SystemExit(
                f"cannot open event file {args.events_jsonl!r}: {exc}"
            ) from exc
        config.event_log = EventLog(sinks=[sink])
    if getattr(args, "static_cache", None):
        from repro.static.cache import StaticCache

        config.static_cache = StaticCache(directory=args.static_cache)
    return config


def _add_explore_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("app", help="corpus package or demo:* name")
    parser.add_argument("--no-reflection", action="store_true")
    parser.add_argument("--no-forced-start", action="store_true")
    parser.add_argument("--no-click-sweep", action="store_true")
    parser.add_argument("--heuristic-inputs", action="store_true")
    parser.add_argument("--max-events", type=int, default=20000)
    parser.add_argument("--faults", metavar="PROFILE",
                        choices=sorted(FAULT_PROFILES), default="none",
                        help="fault-injection profile (none | mild | "
                             "hostile); the run retries, quarantines "
                             "and reports a degradation section")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the deterministic fault stream")
    parser.add_argument("--json", action="store_true",
                        help="emit the structured JSON report")
    parser.add_argument("--trace", action="store_true",
                        help="print the exploration trace")
    parser.add_argument("--trace-jsonl", metavar="FILE",
                        help="record observability spans as JSON lines "
                             "(inspect with `repro trace-summary FILE`)")
    parser.add_argument("--events-jsonl", metavar="FILE",
                        help="record the flight-recorder event timeline "
                             "as JSON lines (feeds `repro dashboard`)")
    parser.add_argument("--metrics-prom", metavar="FILE",
                        help="write the run's metrics in Prometheus "
                             "text exposition format")
    parser.add_argument("--save", metavar="DIR",
                        help="persist all run artifacts under DIR")
    parser.add_argument("--export-replay", action="store_true",
                        help="with --save: also write each passing test "
                             "case as a testcases/*.replay.json replay "
                             "script (re-run with `repro replay`)")
    parser.add_argument("--static-cache", metavar="DIR",
                        help="content-addressed cache of the static "
                             "phase under DIR; a digest hit skips "
                             "decode + Algorithms 1-3 (inspect with "
                             "`repro cache stats --dir DIR`)")


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count (default min(apps, cpus); "
                             "FRAGDROID_WORKERS overrides)")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="pool backend: thread (default) or process "
                             "(sidesteps the GIL; FRAGDROID_SWEEP_BACKEND "
                             "overrides the default)")


def cmd_list(_args: argparse.Namespace) -> int:
    print("figure demos:")
    for name in sorted(DEMOS):
        print(f"  {name}")
    print("evaluation corpus (Tables I & II):")
    for name in table1_packages():
        print(f"  {name}")
    return 0


def cmd_static(args: argparse.Namespace) -> int:
    cache = None
    if getattr(args, "static_cache", None):
        from repro.static.cache import StaticCache

        cache = StaticCache(directory=args.static_cache)
    info = extract_static_info(_resolve_apk(args.app), cache=cache)
    if args.json:
        print(aftm_to_json(info.aftm))
        return 0
    print(info.aftm.summary())
    for edge in sorted(info.aftm.edges):
        print(f"  {edge.src} -> {edge.dst}  [{edge.kind.name}]")
    if args.dot:
        print(info.aftm.to_dot())
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    config = _config_from(args)
    device = make_device(config.fault_plan, scope=args.app)
    result = FragDroid(device, config).explore(_resolve_apk(args.app))
    config.tracer.close()
    config.event_log.close()
    if args.json:
        print(result_to_json(result))
    else:
        print(result.coverage_report())
    if args.trace:
        print(result.trace_text())
    if getattr(args, "export_replay", False) and not args.save:
        raise SystemExit("--export-replay needs --save DIR (replay "
                         "scripts are written next to the Robotium "
                         "sources)")
    if args.save:
        from repro.core.artifacts import save_artifacts

        written = save_artifacts(
            result, args.save,
            replay_scripts=getattr(args, "export_replay", False))
        print(f"wrote {len(written)} artifacts under {args.save}")
    if getattr(args, "trace_jsonl", None):
        print(f"wrote {len(result.spans)} spans to {args.trace_jsonl}")
    if getattr(args, "events_jsonl", None):
        print(f"wrote {len(result.events)} events to {args.events_jsonl}")
    if getattr(args, "metrics_prom", None):
        from repro.obs import prometheus_text

        try:
            with open(args.metrics_prom, "w", encoding="utf-8") as handle:
                handle.write(prometheus_text(config.tracer.metrics))
        except OSError as exc:
            raise SystemExit(
                f"cannot write metrics file {args.metrics_prom!r}: {exc}"
            ) from exc
        print(f"wrote metrics to {args.metrics_prom}")
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    config = _config_from(args)
    device = make_device(config.fault_plan, scope=args.app)
    result = FragDroid(device, config).explore(_resolve_apk(args.app))
    config.tracer.close()
    config.event_log.close()
    report = build_api_report([result])
    print(report.render())
    return 0


def cmd_target(args: argparse.Namespace) -> int:
    """Explore, then drive straight to a sensitive API (SmartDroid-style)."""
    from repro.core.targeted import components_invoking, drive_to_api

    apk = _resolve_apk(args.app)
    result = FragDroid(Device(), _config_from(args)).explore(apk)
    candidates = components_invoking(result, args.api)
    if not candidates:
        print(f"{args.api} was never observed in {args.app}")
        return 1
    device = Device()
    case, component = drive_to_api(result, apk, device, args.api)
    print(f"drove to {component}; {args.api} fired.")
    print()
    print(case.to_robotium_java())
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """Compile an app and write it to disk as a .apk archive."""
    from repro.apk.apkfile import save_apk
    from repro.apk.lint import lint_apk

    apk = _resolve_apk(args.app)
    report = lint_apk(apk)
    if not report.ok:
        print(report.render())
        return 1
    path = save_apk(apk, args.output)
    print(f"wrote {path} ({path.stat().st_size} bytes, "
          f"{len(apk.smali_files)} classes)")
    return 0


def cmd_export_corpus(args: argparse.Namespace) -> int:
    """Write the whole evaluation corpus to .apk files."""
    import pathlib

    from repro.apk.apkfile import save_apk

    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    for package in table1_packages():
        path = save_apk(build_apk(build_table1_app(package)),
                        out / f"{package}.apk")
        print(f"  {path}")
    print(f"exported {len(table1_packages())} apps to {out}")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    """Explore every .apk in a directory; write artifacts + summary CSV."""
    import csv
    import pathlib
    from concurrent.futures import ThreadPoolExecutor

    from repro.apk.apkfile import load_apk
    from repro.core.artifacts import save_artifacts

    in_dir = pathlib.Path(args.directory)
    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    apk_paths = sorted(in_dir.glob("*.apk"))
    if not apk_paths:
        print(f"no .apk files under {in_dir}")
        return 1

    def run(path: pathlib.Path):
        apk = load_apk(path)
        result = FragDroid(Device()).explore(apk)
        save_artifacts(result, out_dir / apk.package)
        return result

    with ThreadPoolExecutor(max_workers=args.workers) as pool:
        results = list(pool.map(run, apk_paths))

    summary = out_dir / "summary.csv"
    with summary.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "package", "activities_visited", "activities_sum",
            "fragments_visited", "fragments_sum", "api_relations",
            "events", "crashes",
        ])
        for result in results:
            writer.writerow([
                result.package,
                len(result.visited_activities), result.activity_total,
                len(result.visited_fragments), result.fragment_total,
                len({(i.api, i.source) for i in result.api_invocations}),
                result.stats.events, result.stats.crashes,
            ])
    print(f"explored {len(results)} apps; summary at {summary}")
    return 0


def cmd_trace_summary(args: argparse.Namespace) -> int:
    """Summarize a span JSONL file: per-phase totals + slowest spans
    (or collapsed-stack flamegraph lines with ``--flame``)."""
    import pathlib

    from repro.obs import collapsed_stacks, read_spans, render_summary

    path = pathlib.Path(args.jsonl)
    if not path.exists():
        print(f"no such trace file: {path}")
        return 1
    try:
        spans = read_spans(path)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"{path} is not a span JSONL file: {exc}")
        return 1
    if not spans:
        print(f"{path} holds no spans — was the run traced? "
              "(record with `explore --trace-jsonl`)")
        return 1
    if args.flame:
        for line in collapsed_stacks(spans):
            print(line)
        return 0
    print(render_summary(spans, top=args.top))
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    """Render the self-contained HTML dashboard for a saved run, a
    directory of runs (the fleet view), or — with ``--journal`` — the
    service fleet-health view from a job journal."""
    import pathlib

    from repro.obs import render_dashboard_dir

    history = None
    explanations = None
    if getattr(args, "registry", None):
        from repro.obs.dashboard import load_explanations
        from repro.obs.registry import RunRegistry

        history = RunRegistry(args.registry).latest(args.trend)
        explanations = load_explanations(args.registry)
    if getattr(args, "journal", None):
        from repro.obs.dashboard import render_service_dashboard
        from repro.serve import JobJournal

        journal_dir = pathlib.Path(args.journal)
        if not journal_dir.is_dir():
            print(f"no such journal directory: {journal_dir}")
            return 1
        journal = JobJournal(journal_dir)
        html = render_service_dashboard(journal.jobs(), journal_dir,
                                        records=history, history=history,
                                        explanations=explanations)
    elif args.directory is None:
        print("dashboard needs a run directory (or --journal DIR)")
        return 1
    else:
        try:
            html = render_dashboard_dir(args.directory, history=history,
                                        explanations=explanations)
        except FileNotFoundError as exc:
            print(exc)
            return 1
        except ValueError as exc:
            print(f"cannot read run records under {args.directory}: {exc}")
            return 1
    out = pathlib.Path(args.output)
    try:
        out.write_text(html, encoding="utf-8")
    except OSError as exc:
        raise SystemExit(
            f"cannot write dashboard file {args.output!r}: {exc}"
        ) from exc
    print(f"wrote dashboard to {out}")
    return 0


def _sweep_config(args: argparse.Namespace) -> Optional[FragDroidConfig]:
    if getattr(args, "static_cache", None):
        from repro.static.cache import StaticCache

        return FragDroidConfig(
            static_cache=StaticCache(directory=args.static_cache)
        )
    return None


def cmd_table1(args: argparse.Namespace) -> int:
    print(run_table1(config=_sweep_config(args), max_workers=args.workers,
                     backend=args.backend).render_table1())
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    print(run_table1(config=_sweep_config(args), max_workers=args.workers,
                     backend=args.backend).render_table2())
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    workers = args.workers if args.workers is not None else 1
    cache = None
    if getattr(args, "static_cache", None):
        from repro.static.cache import StaticCache

        cache = StaticCache(directory=args.static_cache)
    result = run_usage_study(max_workers=workers, backend=args.backend,
                             cache=cache)
    print(result.render())
    if cache is not None:
        stats = cache.stats()
        print(f"static cache: {stats['hits']} hits, "
              f"{stats['misses']} misses "
              f"(hit rate {stats['hit_rate']:.0%})")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the content-addressed static-analysis cache."""
    from repro.static.cache import StaticCache, default_cache_dir

    directory = args.dir if args.dir else default_cache_dir()
    cache = StaticCache(directory=directory)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entries from {directory}")
        return 0
    stats = cache.stats()
    print(f"cache directory: {stats['directory']}")
    print(f"entries: {stats['disk_entries']} "
          f"({stats['disk_bytes']} bytes)")
    print(f"lifetime hits: {stats.get('lifetime_hits', 0)}  "
          f"misses: {stats.get('lifetime_misses', 0)}  "
          f"stores: {stats.get('lifetime_stores', 0)}")
    print(f"lifetime hit rate: {stats.get('lifetime_hit_rate', 0.0):.0%}")
    return 0


def _open_registry(args: argparse.Namespace):
    from repro.obs.registry import RunRegistry

    return RunRegistry(args.dir) if getattr(args, "dir", None) \
        else RunRegistry()


def _resolve_record(registry, ref: str):
    """A run record by registry id/prefix or by record-file path.

    File paths may name either a full run record or a bench-result file
    (the ``write_result_json`` shape, ``{"bench": ..., "data": {...}}``);
    the latter is converted through the same flattening as
    ``repro runs ingest``, so committed bench baselines gate directly.
    """
    import json
    import pathlib

    from repro.obs.registry import load_record, record_from_bench

    path = pathlib.Path(ref)
    if path.is_file():
        payload = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(payload, dict) and "bench" in payload \
                and isinstance(payload.get("data"), dict):
            return record_from_bench(path)
        return load_record(path)
    return registry.load(ref)


def _print_diff_attribution(registry, baseline, candidate) -> None:
    """Append the attribution delta to a textual ``runs diff`` when
    both records have stored explanations; silent otherwise."""
    from repro.obs import ExplanationStore, newly_unreached

    store = ExplanationStore(registry.directory)
    try:
        base_exp = store.load(baseline.run_id)
        cand_exp = store.load(candidate.run_id)
    except (KeyError, ValueError, OSError):
        return
    fresh = newly_unreached(base_exp, cand_exp)
    recovered = newly_unreached(cand_exp, base_exp)
    if not fresh and not recovered:
        return
    print(f"attribution: {len(fresh)} newly unreached, "
          f"{len(recovered)} newly reached")
    for miss in fresh:
        print(f"  - now unreached ({miss.cause}): {miss.kind} {miss.name}")
    for miss in recovered:
        print(f"  + now reached: {miss.kind} {miss.name}")


def cmd_runs(args: argparse.Namespace) -> int:
    """The longitudinal run registry: list / show / diff / gc / pin /
    ingest."""
    import json

    registry = _open_registry(args)

    def need(count: int, what: str) -> bool:
        if len(args.refs) != count:
            print(f"runs {args.action} takes {what}")
            return False
        return True

    if args.action == "list":
        records = registry.list()
        for name, reason in registry.skipped:
            print(f"warning: skipped {name}: {reason}", file=sys.stderr)
        if not records:
            print(f"no run records under {registry.directory}")
            return 0
        pinned = registry.pinned()
        header = (f"{'run id':18} {'label':14} {'apps':>5} {'ok':>4} "
                  f"{'act rate':>9} {'frag rate':>10} {'apis':>6} "
                  f"{'phase s':>9}")
        print(header)
        print("-" * (len(header) + 8))
        for record in records:
            row = record.summary_row()
            act = row["mean_activity_rate"]
            frag = row["mean_fragment_rate"]
            apis = row["apis"]
            print(f"{row['run_id']:18} {str(row['label'])[:14]:14} "
                  f"{row['apps']:>5} {row['apps_ok']:>4} "
                  f"{(f'{act:.3f}' if act is not None else '-'):>9} "
                  f"{(f'{frag:.3f}' if frag is not None else '-'):>10} "
                  f"{(f'{int(apis)}' if apis is not None else '-'):>6} "
                  f"{row['phase_s']:>9.3f}"
                  f"{'  pinned' if row['run_id'] == pinned else ''}")
        return 0
    if args.action == "show":
        if not need(1, "one run id (or record file)"):
            return 2
        try:
            print(_resolve_record(registry, args.refs[0]).to_json(),
                  end="")
        except (KeyError, ValueError, OSError) as exc:
            print(f"cannot load {args.refs[0]!r}: {exc}")
            return 1
        return 0
    if args.action == "diff":
        if not need(2, "two run ids (or record files): BASELINE "
                       "CANDIDATE"):
            return 2
        from repro.obs.diff import diff_records

        try:
            baseline = _resolve_record(registry, args.refs[0])
            candidate = _resolve_record(registry, args.refs[1])
        except (KeyError, ValueError, OSError) as exc:
            print(f"cannot load records: {exc}")
            return 1
        diff = diff_records(baseline, candidate,
                            tolerance=args.tolerance)
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2))
        else:
            print(diff.render_text(changed_only=not args.all))
            _print_diff_attribution(registry, baseline, candidate)
        return 0
    if args.action == "pin":
        if not need(1, "one run id"):
            return 2
        try:
            print(f"pinned {registry.pin(args.refs[0])} as the "
                  "regression baseline")
        except (KeyError, ValueError, OSError) as exc:
            print(f"cannot pin {args.refs[0]!r}: {exc}")
            return 1
        return 0
    if args.action == "gc":
        removed = registry.gc(keep=args.keep)
        print(f"removed {len(removed)} record"
              f"{'s' if len(removed) != 1 else ''} from "
              f"{registry.directory} (keeping the newest {args.keep}"
              + (" and the pinned baseline" if registry.pinned() else "")
              + ")")
        return 0
    # ingest
    if not args.refs:
        print("runs ingest takes one or more bench result JSON files")
        return 2
    status = 0
    for path in args.refs:
        try:
            record = registry.ingest_bench(path)
        except (OSError, ValueError) as exc:
            print(f"cannot ingest {path}: {exc}")
            status = 1
            continue
        print(f"ingested {path} as {record.run_id} ({record.label})")
    return status


def cmd_profile(args: argparse.Namespace) -> int:
    """Where the time goes: top phases by p90 self time from a run
    record (default: the latest in the registry), optionally diffed
    against a baseline record."""
    registry = _open_registry(args)
    if args.record:
        try:
            record = _resolve_record(registry, args.record)
        except (KeyError, ValueError, OSError) as exc:
            print(f"cannot load record {args.record!r}: {exc}")
            return 2
    else:
        latest = registry.latest(1)
        if not latest:
            print(f"no run records in {registry.directory} — run a sweep "
                  "with a registry, or name a record file")
            return 2
        record = latest[0]
    if not record.phases:
        print(f"record {record.run_id or '<unnamed>'} has no phase data")
        return 2

    baseline = None
    if args.diff:
        try:
            baseline = _resolve_record(registry, args.diff)
        except (KeyError, ValueError, OSError) as exc:
            print(f"cannot load baseline {args.diff!r}: {exc}")
            return 2

    total = record.total_phase_time()
    ranked = sorted(record.phases.items(),
                    key=lambda item: item[1].get("self_p90_ms", 0.0),
                    reverse=True)[:args.top]
    print(f"run {record.run_id or '<unnamed>'} ({record.label}) — "
          f"top {len(ranked)} phases by p90 self time; "
          f"total self time {total:.3f}s")
    header = (f"{'phase':<32} {'count':>7} {'self_s':>8} {'share':>7} "
              f"{'p50_ms':>8} {'p90_ms':>8} {'p99_ms':>8}")
    if baseline is not None:
        header += f" {'Δp90_ms':>9}"
    print(header)
    for name, stats in ranked:
        self_s = stats.get("self_total_s", 0.0)
        share = self_s / total if total else 0.0
        line = (f"{name:<32} {int(stats.get('count', 0)):>7} "
                f"{self_s:>8.3f} {share:>6.1%} "
                f"{stats.get('self_p50_ms', 0.0):>8.2f} "
                f"{stats.get('self_p90_ms', 0.0):>8.2f} "
                f"{stats.get('self_p99_ms', 0.0):>8.2f}")
        if baseline is not None:
            base_stats = baseline.phases.get(name)
            if base_stats is None:
                line += f" {'new':>9}"
            else:
                delta = (stats.get("self_p90_ms", 0.0)
                         - base_stats.get("self_p90_ms", 0.0))
                line += f" {delta:>+9.2f}"
        print(line)
    if baseline is not None:
        gone = sorted(set(baseline.phases) - set(record.phases))
        if gone:
            print("phases only in baseline: " + ", ".join(gone))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Why every unreached target stayed unreached: a typed cause,
    witness path and blocking widget per missed activity / fragment /
    sensitive API, from a stored explanation, a saved run directory,
    or a fresh Table-I sweep."""
    import pathlib

    from repro.obs import ExplanationStore, render_explanation
    from repro.obs.attribution import explain_outcomes, explain_run_dir

    registry = _open_registry(args)
    store = ExplanationStore(registry.directory)
    if args.table1:
        from repro.bench.parallel import explore_many
        from repro.corpus import TABLE1_PLANS
        from repro.obs import EventLog, Tracer

        # The event log feeds the classifier's dynamic record (clicks,
        # quarantines, termination); without it causes degrade to the
        # static-only ladder.
        config = FragDroidConfig(tracer=Tracer(), event_log=EventLog(),
                                 run_registry=registry)
        outcomes = explore_many(TABLE1_PLANS, config=config,
                                max_workers=args.workers,
                                backend=args.backend)
        record = registry.latest(1)[0]
        explanation = explain_outcomes(outcomes, label="table1",
                                       source_run_id=record.run_id)
        store.save(explanation)
        print(f"recorded sweep as {record.run_id}; stored explanation "
              f"{explanation.explanation_id} under {store.directory}",
              file=sys.stderr)
    elif args.ref is None:
        print("explain needs a stored run id, a saved run directory, "
              "or --table1")
        return 2
    else:
        path = pathlib.Path(args.ref)
        if path.is_dir():
            try:
                explanation = explain_run_dir(path)
            except (OSError, ValueError, KeyError) as exc:
                print(f"cannot explain run directory {args.ref!r}: {exc}")
                return 2
        else:
            try:
                explanation = store.load(args.ref)
            except (KeyError, ValueError, OSError) as exc:
                print(f"cannot load explanation {args.ref!r}: {exc}")
                return 2
    if args.json:
        print(explanation.to_json(), end="")
    else:
        print(render_explanation(explanation, target=args.target,
                                 top=args.top), end="")
    return 0


def _print_newly_unreached(registry, baseline, candidate, report) -> None:
    """After a coverage violation, name the targets that regressed.

    Needs stored explanations for both records (``repro explain
    --table1`` or the live ``repro regress`` path writes them); silent
    when either side has none — the gate's verdict is unaffected.
    """
    if not any(v.kind == "coverage" for v in report.violations):
        return
    from repro.obs import ExplanationStore, newly_unreached

    store = ExplanationStore(registry.directory)
    try:
        base_exp = store.load(baseline.run_id)
        cand_exp = store.load(candidate.run_id)
    except (KeyError, ValueError, OSError):
        return
    fresh = newly_unreached(base_exp, cand_exp)
    if not fresh:
        return
    print(f"newly unreached targets ({len(fresh)}):")
    for miss in fresh:
        widget = (f" (widget {miss.blocking_widget})"
                  if miss.blocking_widget else "")
        print(f"  - {miss.cause}: {miss.kind} {miss.name}{widget}")
    print("  (drill down with `repro explain "
          f"{cand_exp.source_run_id} --target NAME`)")


def cmd_regress(args: argparse.Namespace) -> int:
    """The regression gate: candidate vs pinned baseline, exit 1 on
    regression."""
    import json
    import pathlib

    from repro.obs.regress import RegressionPolicy, check_regression

    registry = _open_registry(args)
    try:
        baseline = _resolve_record(registry, args.baseline)
    except (KeyError, ValueError, OSError) as exc:
        print(f"cannot load baseline {args.baseline!r}: {exc}")
        return 2
    if args.candidate:
        try:
            candidate = _resolve_record(registry, args.candidate)
        except (KeyError, ValueError, OSError) as exc:
            print(f"cannot load candidate {args.candidate!r}: {exc}")
            return 2
    else:
        # No candidate named: run the Table-I sweep now and gate on it.
        from repro.bench.parallel import explore_many
        from repro.corpus import TABLE1_PLANS
        from repro.obs import EventLog, ExplanationStore, Tracer
        from repro.obs.attribution import explain_outcomes

        config = FragDroidConfig(tracer=Tracer(), event_log=EventLog(),
                                 run_registry=registry)
        outcomes = explore_many(TABLE1_PLANS, config=config,
                                max_workers=args.workers,
                                backend=args.backend)
        candidate = registry.latest(1)[0]
        print(f"recorded candidate sweep as {candidate.run_id}")
        # Attribution rides along: store the candidate's explanation so
        # a coverage drop below names the newly unreached targets.
        ExplanationStore(registry.directory).save(explain_outcomes(
            outcomes, label="table1", source_run_id=candidate.run_id))
    policy_kwargs = dict(
        max_coverage_drop=args.max_coverage_drop,
        max_phase_time_increase=args.max_phase_time_increase,
        require_same_config=not args.ignore_comparability,
        require_same_corpus=not args.ignore_comparability,
        max_replay_divergences=args.max_replay_divergences,
    )
    if getattr(args, "coverage_key", None):
        policy_kwargs["coverage_keys"] = tuple(args.coverage_key)
    policy = RegressionPolicy(**policy_kwargs)
    report = check_regression(baseline, candidate, policy)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
        _print_newly_unreached(registry, baseline, candidate, report)
    if args.record_out:
        out = pathlib.Path(args.record_out)
        try:
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(candidate.to_json(), encoding="utf-8")
        except OSError as exc:
            raise SystemExit(
                f"cannot write candidate record {args.record_out!r}: "
                f"{exc}"
            ) from exc
        print(f"wrote candidate record to {out}")
    return report.exit_code


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-run a recorded replay script against a fresh device.

    Exit codes: 0 applied divergence-free, 1 diverged, 2 the script
    (or the app) could not be loaded.
    """
    import json
    import pathlib

    from repro.errors import ReproError
    from repro.rnr import ReplayScript, replay_script

    path = pathlib.Path(args.script)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        print(f"cannot read replay script {args.script!r}: {exc}")
        return 2
    try:
        script = ReplayScript.from_json(text)
    except ReproError as exc:
        print(f"{path} is not a usable replay script: {exc}")
        return 2
    apk = _resolve_apk(args.apk or script.package)
    name = path.name
    for suffix in (".json", ".replay"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
    outcome = replay_script(script, Device(), apk=apk, name=name)
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2))
    else:
        print(outcome.render())
    if args.record:
        from repro.obs.registry import RunRegistry
        from repro.rnr.replay import SuiteReplayReport, replay_run_record

        suite = SuiteReplayReport(package=script.package,
                                  outcomes=[outcome])
        record = replay_run_record(suite)
        RunRegistry(args.record).record(record)
        print(f"recorded replay as {record.run_id}")
    return 0 if outcome.ok else 1


def cmd_fragility(args: argparse.Namespace) -> int:
    """The R&R fragility study: replay a recorded suite against
    mutated app versions; exit 1 when even the unchanged app diverges
    (a harness regression, not UI drift)."""
    import json

    from repro.rnr import run_fragility

    spec = _resolve_spec(args.app)
    config = FragDroidConfig(max_events=args.max_events)
    report = run_fragility(spec, seed=args.seed, config=config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.control_ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the analysis service until SIGINT/SIGTERM (clean shutdown:
    running jobs stay journaled and resume on the next start)."""
    import signal
    import threading

    from repro.errors import ReproError
    from repro.serve import JobLimits, ReproServer, WallClock

    try:
        limits = JobLimits(
            queue_depth=args.queue_depth,
            max_apps=args.max_apps,
            max_events_cap=args.max_events_cap,
            max_time_budget_s=args.max_time_budget,
        )
        server = ReproServer(
            journal_dir=args.journal,
            registry_dir=args.runs_dir,
            host=args.host,
            port=args.port,
            limits=limits,
            max_restarts=args.max_restarts,
            backoff_clock=WallClock(),
            default_backend=args.backend or "thread",
            default_workers=args.workers,
            heartbeat_s=args.sse_heartbeat,
            sse_buffer=args.sse_buffer,
        )
        host, port = server.start()
    except (ReproError, ValueError, OSError) as exc:
        raise SystemExit(f"cannot start the service: {exc}") from exc
    stop = threading.Event()

    def handle(_signum, _frame) -> None:
        stop.set()

    signal.signal(signal.SIGINT, handle)
    signal.signal(signal.SIGTERM, handle)
    print(f"serving on http://{host}:{port} "
          f"(journal: {server.journal.directory}, "
          f"runs: {server.registry.directory})", flush=True)
    if server.resumed:
        print(f"resumed {server.resumed} in-flight job"
              f"{'s' if server.resumed != 1 else ''} from the journal",
              flush=True)
    while not stop.is_set():
        stop.wait(0.2)
    print("shutting down (running jobs stay journaled)", flush=True)
    server.stop()
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """Drive a running service: submit / status / logs / cancel."""
    import json
    import os

    from repro.serve import DEFAULT_URL, ServeClient, ServeClientError

    url = args.url or os.environ.get("FRAGDROID_SERVE_URL") or DEFAULT_URL
    client = ServeClient(url)

    def show(job: dict) -> None:
        if args.json:
            print(json.dumps(job, indent=2, sort_keys=True))
            return
        print(f"{job['job_id']}  {job['state']:10} "
              f"{len(job.get('completed', {}))}/{len(job['apps'])} apps"
              + (f"  error: {job['error']}" if job.get("error") else ""))

    try:
        if args.action == "submit":
            if not args.refs:
                print("jobs submit takes one or more app names")
                return 2
            job = client.submit(
                args.refs,
                max_events=args.max_events,
                time_budget_s=args.time_budget,
                backend=args.backend,
                workers=args.workers,
                fault_profile=(args.faults
                               if args.faults != "none" else None),
                fault_seed=args.fault_seed or None,
            )
            if args.wait:
                job = client.wait(job["job_id"],
                                  timeout_s=args.wait_timeout)
                show(job)
                return 0 if job["state"] == "done" else 1
            show(job)
            return 0
        if args.action == "status":
            if args.refs:
                show(client.job(args.refs[0]))
            else:
                rows = client.jobs()
                if not rows:
                    print("no jobs")
                for row in rows:
                    print(f"{row['job_id']}  {row['state']:10} "
                          f"{row['completed']}/{row['apps']} apps"
                          + (f"  error: {row['error']}"
                             if row.get("error") else ""))
            return 0
        if args.action == "logs":
            if not args.refs:
                print("jobs logs takes a JOB_ID")
                return 2

            def show_event(event: dict) -> None:
                if args.json:
                    print(json.dumps(event, sort_keys=True), flush=True)
                else:
                    extras = " ".join(
                        f"{key}={value}" for key, value in
                        sorted(event.get("attributes", {}).items()))
                    print(f"{event['seq']:>6}  {event['kind']:18} "
                          f"{event.get('app', ''):24} {extras}",
                          flush=True)

            if args.follow:
                # Live SSE tail: backlog first, then pushed events,
                # until the job finishes (or Ctrl-C).
                try:
                    for event in client.stream_events(args.refs[0]):
                        show_event(event)
                except KeyboardInterrupt:
                    return 130
                return 0
            for event in client.logs(args.refs[0]):
                show_event(event)
            return 0
        # cancel
        if not args.refs:
            print("jobs cancel takes a JOB_ID")
            return 2
        show(client.cancel(args.refs[0]))
        return 0
    except ServeClientError as exc:
        print(f"error: {exc}"
              + (f" [{exc.kind}, HTTP {exc.status}]" if exc.status else ""),
              file=sys.stderr)
        return 1


def cmd_compare(_args: argparse.Namespace) -> int:
    print(run_baseline_comparison().render())
    return 0


def cmd_ablate(_args: argparse.Namespace) -> int:
    print(run_ablation().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FragDroid (DSN 2018) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="available apps").set_defaults(func=cmd_list)

    static = sub.add_parser("static", help="static information extraction")
    static.add_argument("app")
    static.add_argument("--dot", action="store_true")
    static.add_argument("--json", action="store_true")
    static.add_argument("--static-cache", metavar="DIR",
                        help="content-addressed cache of the static "
                             "phase under DIR")
    static.set_defaults(func=cmd_static)

    explore = sub.add_parser("explore", help="run the full pipeline")
    _add_explore_flags(explore)
    explore.set_defaults(func=cmd_explore)

    audit = sub.add_parser("audit", help="sensitive-API audit")
    _add_explore_flags(audit)
    audit.set_defaults(func=cmd_audit)

    target = sub.add_parser(
        "target", help="drive straight to a sensitive API"
    )
    _add_explore_flags(target)
    target.add_argument("api", help='e.g. "phone/getDeviceId"')
    target.set_defaults(func=cmd_target)

    build = sub.add_parser("build", help="write an app to a .apk file")
    build.add_argument("app")
    build.add_argument("-o", "--output", required=True,
                       help="output .apk path")
    build.set_defaults(func=cmd_build)

    export = sub.add_parser("export-corpus",
                            help="write all 15 evaluation apps as .apk")
    export.add_argument("-o", "--output", required=True,
                        help="output directory")
    export.set_defaults(func=cmd_export_corpus)

    trace_summary = sub.add_parser(
        "trace-summary",
        help="per-phase timing of a traced run (JSONL from --trace-jsonl)",
    )
    trace_summary.add_argument("jsonl", help="span JSONL file")
    trace_summary.add_argument("--top", type=int, default=10,
                               help="how many slowest spans to list")
    trace_summary.add_argument("--flame", action="store_true",
                               help="emit collapsed-stack flamegraph "
                                    "lines (name;name <self-time µs>)")
    trace_summary.set_defaults(func=cmd_trace_summary)

    dashboard = sub.add_parser(
        "dashboard",
        help="render the HTML dashboard of a saved run (or run dirs)",
    )
    dashboard.add_argument("directory", nargs="?", default=None,
                           help="an `explore --save` run directory, or "
                                "a directory of them (fleet view)")
    dashboard.add_argument("--journal", metavar="DIR", default=None,
                           help="render the service fleet-health view "
                                "from a job journal instead (the "
                                "`repro serve` --journal directory)")
    dashboard.add_argument("-o", "--output", default="dashboard.html",
                           help="output HTML path (default "
                                "dashboard.html)")
    dashboard.add_argument("--registry", metavar="DIR", default=None,
                           help="run-registry directory: adds the "
                                "run-over-run trend section")
    dashboard.add_argument("--trend", type=int, default=20,
                           help="how many registry records the trend "
                                "section covers (default 20)")
    dashboard.set_defaults(func=cmd_dashboard)

    batch = sub.add_parser("batch",
                           help="explore every .apk in a directory")
    batch.add_argument("directory")
    batch.add_argument("-o", "--output", required=True,
                       help="artifacts directory")
    batch.add_argument("--workers", type=int, default=4)
    batch.set_defaults(func=cmd_batch)

    for name, func, help_text in (
        ("table1", cmd_table1, "regenerate Table I"),
        ("table2", cmd_table2, "regenerate Table II"),
        ("study", cmd_study, "the 217-app usage study"),
    ):
        sweep = sub.add_parser(name, help=help_text)
        _add_sweep_flags(sweep)
        sweep.add_argument("--static-cache", metavar="DIR",
                           help="content-addressed cache of the "
                                "static phase under DIR")
        sweep.set_defaults(func=func)

    cache = sub.add_parser(
        "cache", help="inspect or clear the static-analysis cache"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--dir", metavar="DIR", default=None,
                       help="cache directory (default $FRAGDROID_CACHE_DIR "
                            "or ~/.cache/fragdroid)")
    cache.set_defaults(func=cmd_cache)

    runs = sub.add_parser(
        "runs", help="the longitudinal run registry"
    )
    runs.add_argument("action",
                      choices=("list", "show", "diff", "gc", "pin",
                               "ingest"))
    runs.add_argument("refs", nargs="*",
                      help="run ids / record files (show: ID; diff: "
                           "BASELINE CANDIDATE; pin: ID; ingest: "
                           "bench JSON files)")
    runs.add_argument("--dir", metavar="DIR", default=None,
                      help="registry directory (default "
                           "$FRAGDROID_RUNS_DIR or "
                           "~/.cache/fragdroid/runs)")
    runs.add_argument("--keep", type=int, default=10,
                      help="gc: how many newest records to keep "
                           "(default 10; the pinned baseline always "
                           "survives)")
    runs.add_argument("--tolerance", type=float, default=0.01,
                      help="diff: relative band within which counters "
                           "read as steady (default 0.01)")
    runs.add_argument("--all", action="store_true",
                      help="diff: show steady entries too")
    runs.add_argument("--json", action="store_true",
                      help="diff: emit the structured JSON diff")
    runs.set_defaults(func=cmd_runs)

    profile = sub.add_parser(
        "profile",
        help="top phases by p90 self time from a run record",
    )
    profile.add_argument("record", nargs="?", default=None,
                         help="run id (in the registry) or record JSON "
                              "file; omitted: the latest registry record")
    profile.add_argument("--top", type=int, default=10, metavar="N",
                         help="phases to show (default 10)")
    profile.add_argument("--diff", metavar="BASELINE", default=None,
                         help="also show per-phase p90 deltas against "
                              "this run id or record file")
    profile.add_argument("--dir", metavar="DIR", default=None,
                         help="registry directory (default "
                              "$FRAGDROID_RUNS_DIR or "
                              "~/.cache/fragdroid/runs)")
    profile.set_defaults(func=cmd_profile)

    explain = sub.add_parser(
        "explain",
        help="why every unreached target stayed unreached",
    )
    explain.add_argument("ref", nargs="?", default=None,
                         help="run id with a stored explanation, or a "
                              "saved run directory (`explore --save`)")
    explain.add_argument("--table1", action="store_true",
                         help="run the Table-I sweep now, record it, and "
                              "store + print its explanation")
    explain.add_argument("--target", metavar="NAME", default=None,
                         help="drill into one unreached target (full "
                              "name, simple name, or API name)")
    explain.add_argument("--top", type=int, default=0, metavar="N",
                         help="miss-table rows to show (default 0: all)")
    explain.add_argument("--json", action="store_true",
                         help="emit the explanation artifact JSON")
    explain.add_argument("--dir", metavar="DIR", default=None,
                         help="registry directory (default "
                              "$FRAGDROID_RUNS_DIR or "
                              "~/.cache/fragdroid/runs)")
    _add_sweep_flags(explain)
    explain.set_defaults(func=cmd_explain)

    regress = sub.add_parser(
        "regress",
        help="gate a candidate run against a baseline record",
    )
    regress.add_argument("--baseline", required=True, metavar="REF",
                         help="baseline run id (in the registry) or "
                              "record JSON file")
    regress.add_argument("--candidate", metavar="REF", default=None,
                         help="candidate run id or record file; "
                              "omitted: run the Table-I sweep now and "
                              "record it")
    regress.add_argument("--dir", metavar="DIR", default=None,
                         help="registry directory (default "
                              "$FRAGDROID_RUNS_DIR or "
                              "~/.cache/fragdroid/runs)")
    regress.add_argument("--max-coverage-drop", type=float, default=0.10,
                         help="relative coverage drop allowed "
                              "(default 0.10)")
    regress.add_argument("--max-phase-time-increase", type=float,
                         default=0.25,
                         help="relative increase allowed in a phase's "
                              "share of total self time (default 0.25)")
    regress.add_argument("--coverage-key", metavar="KEY",
                         action="append", default=None,
                         help="gate this coverage key instead of the "
                              "default sweep keys (repeatable; e.g. "
                              "apps_per_second for bench records)")
    regress.add_argument("--max-replay-divergences", type=int, default=0,
                         help="replayed scripts allowed to diverge in a "
                              "replay candidate record (default 0: any "
                              "divergence on an unchanged app fails)")
    regress.add_argument("--ignore-comparability", action="store_true",
                         help="compare despite differing config "
                              "fingerprints / corpus digests")
    regress.add_argument("--json", action="store_true",
                         help="emit the structured JSON report")
    regress.add_argument("--record-out", metavar="FILE", default=None,
                         help="also write the candidate record JSON "
                              "to FILE (CI artifact)")
    _add_sweep_flags(regress)
    regress.set_defaults(func=cmd_regress)

    replay = sub.add_parser(
        "replay",
        help="re-run a recorded replay script on a fresh device",
    )
    replay.add_argument("script",
                        help="a *.replay.json script (written by "
                             "`explore --save DIR --export-replay`)")
    replay.add_argument("--apk", metavar="APP", default=None,
                        help="app to replay against (corpus/demo name "
                             "or .apk path; default: the script's own "
                             "package)")
    replay.add_argument("--json", action="store_true",
                        help="emit the structured JSON outcome")
    replay.add_argument("--record", metavar="DIR", default=None,
                        help="also record the replay outcome in the run "
                             "registry under DIR (feeds `repro regress`)")
    replay.set_defaults(func=cmd_replay)

    fragility = sub.add_parser(
        "fragility",
        help="replay a recorded suite against mutated app versions",
    )
    fragility.add_argument("app", help="corpus package or demo:* name "
                                       "(.apk files cannot be mutated)")
    fragility.add_argument("--seed", type=int, default=0,
                           help="mutation-plan seed (same seed: "
                                "byte-identical table)")
    fragility.add_argument("--max-events", type=int, default=20000,
                           help="exploration event budget for the "
                                "recording run")
    fragility.add_argument("--json", action="store_true",
                           help="emit the structured JSON report")
    fragility.set_defaults(func=cmd_fragility)

    serve = sub.add_parser(
        "serve",
        help="run the exploration fleet as a local HTTP/JSON service",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7340,
                       help="bind port (default 7340; 0 for ephemeral)")
    serve.add_argument("--journal", metavar="DIR", default=None,
                       help="job-journal directory (default "
                            "$FRAGDROID_SERVE_DIR or "
                            "~/.cache/fragdroid/serve); restart resumes "
                            "in-flight jobs from here")
    serve.add_argument("--runs-dir", metavar="DIR", default=None,
                       help="run-registry directory finished jobs land "
                            "in (default $FRAGDROID_RUNS_DIR or "
                            "~/.cache/fragdroid/runs)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="admission bound: pending jobs beyond this "
                            "are rejected with HTTP 429 (default 16)")
    serve.add_argument("--max-apps", type=int, default=500,
                       help="admission bound: apps per job (default 500)")
    serve.add_argument("--max-events-cap", type=int, default=20000,
                       help="admission bound: per-job max_events "
                            "(default 20000)")
    serve.add_argument("--max-time-budget", type=float, default=3600.0,
                       help="admission bound: per-job time budget in "
                            "seconds (default 3600)")
    serve.add_argument("--max-restarts", type=int, default=2,
                       help="worker-death re-admissions per app before "
                            "it is quarantined (default 2)")
    serve.add_argument("--sse-buffer", type=int, default=256,
                       help="per-subscriber event buffer for "
                            "/jobs/<id>/events; a client further "
                            "behind is disconnected (default 256)")
    serve.add_argument("--sse-heartbeat", type=float, default=15.0,
                       help="seconds between SSE heartbeat comments "
                            "on a quiet stream (default 15)")
    _add_sweep_flags(serve)
    serve.set_defaults(func=cmd_serve)

    jobs = sub.add_parser(
        "jobs", help="drive a running `repro serve`"
    )
    jobs.add_argument("action",
                      choices=("submit", "status", "logs", "cancel"))
    jobs.add_argument("refs", nargs="*",
                      help="submit: APP...; status: [JOB_ID]; "
                           "logs/cancel: JOB_ID")
    jobs.add_argument("--url", default=None,
                      help="service URL (default $FRAGDROID_SERVE_URL "
                           "or http://127.0.0.1:7340)")
    jobs.add_argument("--max-events", type=int, default=None,
                      help="submit: per-app event budget")
    jobs.add_argument("--time-budget", type=float, default=None,
                      help="submit: job wall-clock budget in seconds")
    jobs.add_argument("--faults", metavar="PROFILE",
                      choices=sorted(FAULT_PROFILES), default="none",
                      help="submit: fault-injection profile")
    jobs.add_argument("--fault-seed", type=int, default=0,
                      help="submit: fault-stream seed")
    jobs.add_argument("--follow", action="store_true",
                      help="logs: stream the job's events live over "
                           "SSE until it finishes (Ctrl-C to stop)")
    jobs.add_argument("--wait", action="store_true",
                      help="submit: poll until the job is terminal; "
                           "exit 1 unless it is done")
    jobs.add_argument("--wait-timeout", type=float, default=600.0,
                      help="submit --wait: give up after this many "
                           "seconds (default 600)")
    jobs.add_argument("--json", action="store_true",
                      help="emit raw JSON instead of the summary line")
    _add_sweep_flags(jobs)
    jobs.set_defaults(func=cmd_jobs)

    for name, func, help_text in (
        ("compare", cmd_compare, "baseline comparison"),
        ("ablate", cmd_ablate, "mechanism ablations"),
    ):
        sub.add_parser(name, help=help_text).set_defaults(func=func)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
