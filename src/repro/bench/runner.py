"""Experiment runners behind the benchmark harness."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk, digest_many
from repro.baselines import ActivityExplorer, DepthFirstExplorer, Monkey
from repro.bench.parallel import _default_workers, _resolve_backend, explore_many
from repro.core.coverage import CoverageReport, CoverageRow
from repro.core.explorer import ExplorationResult
from repro.core.sensitive_analysis import SensitiveApiReport, build_api_report
from repro.corpus import TABLE1_PLANS, build_app, generate_market
from repro.corpus.synth import LOGIN_SECRET, AppPlan
from repro.corpus.table1_apps import (
    PAPER_MEAN_ACTIVITY_RATE,
    PAPER_MEAN_FRAGMENT_RATE,
    TABLE1_EXPECTED,
)
from repro.errors import PackedApkError
from repro.obs.registry import RunRegistry, capture_run_record
from repro.smali.apktool import Apktool
from repro.static.cache import StaticCache
from repro.static.effective import fragment_subclasses
from repro.types import InvocationSource


# ---------------------------------------------------------------------------
# Table I + Table II
# ---------------------------------------------------------------------------

@dataclass
class Table1Run:
    results: Dict[str, ExplorationResult]
    report: CoverageReport
    api_report: SensitiveApiReport

    def render_table1(self) -> str:
        lines = [self.report.render(), ""]
        lines.append(
            f"mean activity rate: {self.report.mean_activity_rate:.2%} "
            f"(paper: {PAPER_MEAN_ACTIVITY_RATE:.2%})"
        )
        lines.append(
            f"mean fragment rate: {self.report.mean_fragment_rate:.2%} "
            f"(paper: {PAPER_MEAN_FRAGMENT_RATE:.2%})"
        )
        lines.append(
            f"mean fragments-in-visited-activities rate: "
            f"{self.report.mean_fiva_rate:.2%} (paper: >50%)"
        )
        lines.append(
            f"apps with 100% FiVA: {self.report.full_fiva_apps()} "
            f"(paper: 5 of 15)"
        )
        lines.append("")
        lines.append("per-app comparison against the paper's Table I:")
        lines.append(
            f"{'package':34} {'A got':>7} {'A paper':>8} "
            f"{'F got':>7} {'F paper':>8}"
        )
        for package, result in sorted(self.results.items()):
            exp = TABLE1_EXPECTED[package]
            lines.append(
                f"{package:34} "
                f"{len(result.visited_activities):3d}/{result.activity_total:<3d}"
                f" {exp[0]:3d}/{exp[1]:<4d}"
                f"{len(result.visited_fragments):3d}/{result.fragment_total:<3d}"
                f" {exp[2]:3d}/{exp[3]:<4d}"
            )
        return "\n".join(lines)

    def render_table2(self) -> str:
        lines = [self.api_report.render(), ""]
        raw = sum(len(r.api_invocations) for r in self.results.values())
        distinct = len(
            {(i.api, i.component, i.source)
             for r in self.results.values() for i in r.api_invocations}
        )
        lines.append(f"raw invocation records: {raw} "
                     f"(distinct: {distinct}; paper reports 269 invocations)")
        lines.append(
            f"APIs found: {self.api_report.distinct_apis_found} (paper: 46)"
        )
        lines.append(
            f"fragment-associated relations: "
            f"{self.api_report.fragment_associated_share:.1%} (paper: 49%)"
        )
        lines.append(
            f"fragment-only relations (missed by Activity-level tools): "
            f"{self.api_report.fragment_only_share:.1%} (paper: >=9.6%)"
        )
        return "\n".join(lines)


def run_table1(config: Optional[FragDroidConfig] = None,
               max_workers: Optional[int] = None,
               backend: Optional[str] = None) -> Table1Run:
    """Run FragDroid over the 15 evaluation apps.

    The sweep runs through :func:`repro.bench.parallel.explore_many`
    (``backend`` picks its pool: threads by default, processes to
    sidestep the GIL); the evaluation corpus is expected healthy, so a
    captured per-app failure is re-raised here (``SweepOutcome.unwrap``).
    """
    outcomes = explore_many(TABLE1_PLANS, config=config,
                            max_workers=max_workers, backend=backend)
    results: Dict[str, ExplorationResult] = {}
    rows: List[CoverageRow] = []
    for plan in TABLE1_PLANS:
        result = outcomes[plan.package].unwrap()
        results[plan.package] = result
        rows.append(CoverageRow.from_result(result, downloads=plan.downloads))
    return Table1Run(
        results=results,
        report=CoverageReport(rows),
        api_report=build_api_report(results.values()),
    )


# ---------------------------------------------------------------------------
# Usage study (Section I / VII-A)
# ---------------------------------------------------------------------------

@dataclass
class UsageStudyResult:
    total: int
    packed: int
    analyzable: int
    with_fragments: int
    categories: int

    @property
    def share(self) -> float:
        return self.with_fragments / self.analyzable if self.analyzable else 0.0

    def render(self) -> str:
        return (
            f"apps: {self.total} across {self.categories} categories; "
            f"packed (ruled out): {self.packed}; "
            f"using Fragments: {self.with_fragments}/{self.analyzable} "
            f"= {self.share:.1%} (paper: 91%)"
        )


def _classify_market_app(app) -> str:
    """One usage-study datapoint: "packed", "fragments" or "plain"."""
    return _classify_apk(app.build())


def _classify_apk(apk) -> str:
    try:
        decoded = Apktool().decode(apk)
    except PackedApkError:
        return "packed"
    return "fragments" if fragment_subclasses(decoded) else "plain"


def _classify_market_chunk(apps) -> List[str]:
    """Process-pool entry point: classify a chunk of market apps."""
    return [_classify_market_app(app) for app in apps]


def _classify_many(apps: List, max_workers: int, backend: str) -> List[str]:
    """Classify a list of market apps serially or via a worker pool."""
    if max_workers == 1 or len(apps) <= 1:
        return [_classify_market_app(app) for app in apps]
    if backend == "process":
        chunksize = max(1, len(apps) // (max_workers * 4))
        chunks = [apps[i:i + chunksize]
                  for i in range(0, len(apps), chunksize)]
        statuses: List[str] = []
        with ProcessPoolExecutor(max_workers=min(max_workers,
                                                 len(chunks))) as pool:
            for chunk_statuses in pool.map(_classify_market_chunk, chunks):
                statuses.extend(chunk_statuses)
        return statuses
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_classify_market_app, apps))


def run_usage_study(count: int = 217, seed: int = 2018,
                    max_workers: Optional[int] = 1,
                    backend: Optional[str] = None,
                    registry: Optional["RunRegistry"] = None,
                    cache: Optional["StaticCache"] = None,
                    ) -> UsageStudyResult:
    """The Section VII-A market survey: decode ``count`` synthetic
    market apps and tally Fragment adoption.

    Serial by default (``max_workers=1``); pass ``max_workers`` (or
    ``None`` for ``min(apps, cpus)``, honouring ``FRAGDROID_WORKERS``)
    to classify apps concurrently — every app is independent, so the
    tally is identical regardless of worker count or ``backend``
    (``"thread"``/``"process"``, defaulting like ``explore_many``).
    ``registry`` (a :class:`repro.obs.registry.RunRegistry`) persists
    the tallies as a run record the `repro runs` verbs can diff.

    ``cache`` (a :class:`repro.static.cache.StaticCache`) makes the
    sweep incremental: digests are batch-computed once over the corpus
    (:func:`repro.apk.package.digest_many`), known classifications are
    served from one shared note load, and only cache misses are decoded
    and classified — the result tallies are identical either way.
    """
    market = generate_market(count=count, seed=seed)
    backend = _resolve_backend(backend)
    if max_workers is None:
        max_workers = _default_workers(len(market))
    max_workers = max(1, min(max_workers, len(market)))
    if cache is None:
        statuses = _classify_many(market, max_workers, backend)
    else:
        digests = digest_many(app.build() for app in market)
        notes = cache.load_notes("usage-study")
        slots: List[Optional[str]] = [notes.get(d) for d in digests]
        pending = [i for i, status in enumerate(slots) if status is None]
        cache.count_lookups(hits=len(market) - len(pending),
                            misses=len(pending))
        if pending:
            fresh = _classify_many([market[i] for i in pending],
                                   max_workers, backend)
            for index, status in zip(pending, fresh):
                slots[index] = status
            cache.store_notes(
                "usage-study",
                {digests[i]: slots[i] for i in pending},  # type: ignore[misc]
            )
        statuses = [status for status in slots if status is not None]
    packed = statuses.count("packed")
    study = UsageStudyResult(
        total=len(market),
        packed=packed,
        analyzable=len(market) - packed,
        with_fragments=statuses.count("fragments"),
        categories=len({a.category for a in market}),
    )
    if registry is not None:
        registry.record(capture_run_record(
            "usage-study",
            coverage={
                "apps_total": study.total,
                "packed": study.packed,
                "analyzable": study.analyzable,
                "with_fragments": study.with_fragments,
                "categories": study.categories,
                "fragment_share": round(study.share, 6),
            },
            meta={"seed": seed, "count": count, "backend": backend,
                  "workers": max_workers},
        ))
    return study


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------

COMPARISON_PACKAGES = (
    "com.advancedprocessmanager",
    "com.aircrunch.shopalerts",
    "com.inditex.zara",
    "com.cnn.mobile.android.phone",
    "imoblife.toolbox.full",
)


@dataclass
class BaselineComparison:
    rows: List[Dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        header = (
            f"{'package':30} {'tool':16} {'acts':>6} {'frags':>6} "
            f"{'APIs':>5} {'frag-miss':>9} {'misattrib':>9} {'events':>7}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row['package']:30} {row['tool']:16} "
                f"{row['activities']:>6} {row['fragments']:>6} "
                f"{row['apis']:>5} {row['fragment_misses']:>9} "
                f"{row.get('misattributed', '-'):>9} {row['events']:>7}"
            )
        return "\n".join(lines)


def _plan_for(package: str) -> AppPlan:
    for plan in TABLE1_PLANS:
        if plan.package == package:
            return plan
    raise KeyError(package)


def run_baseline_comparison(
    packages: Tuple[str, ...] = COMPARISON_PACKAGES,
) -> BaselineComparison:
    """FragDroid vs Activity-level MBT vs DFS vs Monkey, equal budget."""
    comparison = BaselineComparison()
    for package in packages:
        plan = _plan_for(package)

        frag = FragDroid(Device()).explore(build_apk(build_app(plan)))
        frag_apis = {i.api for i in frag.api_invocations}
        frag_fragment_apis = {
            i.api for i in frag.api_invocations
            if i.source is InvocationSource.FRAGMENT
        }
        budget = max(frag.stats.events, 50)
        comparison.rows.append({
            "package": package, "tool": "FragDroid",
            "activities": len(frag.visited_activities),
            "fragments": len(frag.visited_fragments),
            "apis": len(frag_apis),
            "fragment_misses": 0,
            "events": frag.stats.events,
        })

        base = ActivityExplorer(Device(), max_events=budget).run(
            build_apk(build_app(plan))
        )
        base_apis = base.detected_apis()
        misattributed = len({
            (i.api, i.component)
            for i in base.ground_truth
            if i.source is InvocationSource.FRAGMENT
        })
        comparison.rows.append({
            "package": package, "tool": "Activity-MBT",
            "activities": len(base.visited_activities),
            "fragments": 0,
            "apis": len(base_apis),
            "fragment_misses": len(frag_fragment_apis - base_apis),
            "misattributed": misattributed,
            "events": base.events,
        })

        dfs = DepthFirstExplorer(Device(), max_events=budget).run(
            build_apk(build_app(plan))
        )
        comparison.rows.append({
            "package": package, "tool": "DFS (A3E)",
            "activities": len(dfs.visited_activities),
            "fragments": len(dfs.visited_fragment_classes),
            "apis": "-",
            "fragment_misses": "-",
            "events": dfs.events,
        })

        monkey_device = Device()
        monkey = Monkey(monkey_device, seed=2018).run(
            build_apk(build_app(plan)), event_count=budget
        )
        comparison.rows.append({
            "package": package, "tool": "Monkey",
            "activities": len(monkey.visited_activities),
            "fragments": len(monkey.visited_fragment_classes),
            "apis": len({
                i.api for i in monkey_device.api_monitor.invocations
            }),
            "fragment_misses": "-",
            "events": monkey.events,
        })
    return comparison


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

ABLATION_PACKAGES = (
    "com.advancedprocessmanager",   # reflection-only fragments
    "com.cnn.mobile.android.phone",  # forced-start targets
    "com.weather.Weather",           # strict inputs
)


@dataclass
class AblationResult:
    rows: List[Dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        header = (
            f"{'package':30} {'variant':22} {'acts':>6} {'frags':>6} "
            f"{'events':>7}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row['package']:30} {row['variant']:22} "
                f"{row['activities']:>6} {row['fragments']:>6} "
                f"{row['events']:>7}"
            )
        return "\n".join(lines)


def run_ablation(
    packages: Tuple[str, ...] = ABLATION_PACKAGES,
) -> AblationResult:
    """Disable each FragDroid mechanism in turn."""
    secrets = {f"password_{i:02d}": LOGIN_SECRET for i in range(10)}
    variants = [
        ("full", FragDroidConfig()),
        ("no-reflection", FragDroidConfig(enable_reflection=False)),
        ("no-forced-start", FragDroidConfig(enable_forced_start=False)),
        ("no-click-sweep", FragDroidConfig(enable_click_exploration=False)),
        ("analyst-inputs", FragDroidConfig(input_values=secrets)),
    ]
    ablation = AblationResult()
    for package in packages:
        plan = _plan_for(package)
        for name, config in variants:
            result = FragDroid(Device(), config).explore(
                build_apk(build_app(plan))
            )
            ablation.rows.append({
                "package": package, "variant": name,
                "activities": len(result.visited_activities),
                "fragments": len(result.visited_fragments),
                "events": result.stats.events,
            })
    return ablation
