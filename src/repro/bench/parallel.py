"""Parallel corpus sweeps.

Each app's exploration is fully independent — its own Device, its own
process state — so a market-scale deployment runs apps concurrently
(the paper's A3E comparison point is exactly this cost).  The pool is
thread-based: the emulator is pure Python and each exploration is
short, so threads keep the API simple while still overlapping any
interpreter-released work.

Failure isolation: a market sweep deliberately contains apps that
cannot be processed (packed APKs, build failures — the Section VII-A
rule-outs), so each worker captures its own exception into a
:class:`SweepOutcome` instead of letting one bad app abort the whole
sweep.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro import FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.core.explorer import ExplorationResult
from repro.corpus import TABLE1_PLANS, build_app
from repro.corpus.synth import AppPlan
from repro.faults import classify_fault, make_device
from repro.obs import NULL_TRACER


@dataclass
class SweepOutcome:
    """What one app contributed to a sweep: a result or a captured
    failure (never both)."""

    package: str
    result: Optional[ExplorationResult] = None
    error: Optional[BaseException] = None
    duration: float = 0.0
    # The fault family of a captured failure ("adb-transient",
    # "timeout", "disconnect", "crash", "packed-apk"); None for a
    # success or an unclassified failure.
    fault_kind: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> ExplorationResult:
        """The result, re-raising the captured exception on failure."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


def _default_workers(plan_count: int) -> int:
    return max(1, min(plan_count, os.cpu_count() or 4))


def explore_one(plan: AppPlan,
                config: Optional[FragDroidConfig] = None) -> SweepOutcome:
    """Build, install and explore one app on a fresh device.

    Build and exploration failures alike are captured into the returned
    :class:`SweepOutcome` — a packed APK (``PackedApkError``) reports as
    a failed outcome, it does not raise.
    """
    tracer = config.tracer if config is not None else NULL_TRACER
    fault_plan = config.fault_plan if config is not None else None
    started = perf_counter()
    with tracer.span("sweep.app", app=plan.package) as span:
        try:
            apk = build_apk(build_app(plan))
            device = make_device(fault_plan, scope=plan.package)
            result = FragDroid(device, config).explore(apk)
        except Exception as exc:
            tracer.inc("sweep.failures")
            span.set_attribute("error", repr(exc))
            kind = classify_fault(exc)
            if kind is not None:
                tracer.inc(f"sweep.faults.{kind}")
            return SweepOutcome(package=plan.package, error=exc,
                                duration=perf_counter() - started,
                                fault_kind=kind)
    tracer.inc("sweep.apps")
    return SweepOutcome(package=plan.package, result=result,
                        duration=perf_counter() - started)


def explore_many(
    plans: Sequence[AppPlan] = tuple(TABLE1_PLANS),
    config: Optional[FragDroidConfig] = None,
    max_workers: Optional[int] = None,
) -> Dict[str, SweepOutcome]:
    """Explore a set of apps concurrently; outcomes keyed by package.

    ``max_workers`` defaults to ``min(len(plans), os.cpu_count() or 4)``.
    The sweep always completes: per-app failures are carried inside the
    outcomes (see :class:`SweepOutcome`), never raised from here.
    """
    plans = list(plans)
    if not plans:
        return {}
    if max_workers is None:
        max_workers = _default_workers(len(plans))
    outcomes: Dict[str, SweepOutcome] = {}
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            pool.submit(explore_one, plan, config): plan.package
            for plan in plans
        }
        for future, package in futures.items():
            outcomes[package] = future.result()
    return outcomes


def unwrap_results(
    outcomes: Dict[str, SweepOutcome],
) -> Dict[str, ExplorationResult]:
    """Results keyed by package; re-raises the first captured failure.

    The strict accessor for sweeps expected to be fully healthy (the
    Table I corpus); use :func:`successful_results` to tolerate
    failures instead.
    """
    return {package: outcome.unwrap()
            for package, outcome in outcomes.items()}


def successful_results(
    outcomes: Dict[str, SweepOutcome],
) -> Dict[str, ExplorationResult]:
    """Only the successful results, failures silently skipped."""
    return {package: outcome.result
            for package, outcome in outcomes.items()
            if outcome.ok and outcome.result is not None}


def sweep_rows(outcomes: Dict[str, SweepOutcome]) -> List[Dict]:
    """Per-app fleet rows, the aggregation the run dashboard's fleet
    table renders (``repro.obs.dashboard.render_fleet_table``).

    One dict per outcome, sorted by package, covering successes and
    failures alike — a failed app keeps its duration and fault family
    so the fleet view shows *what* died, not just who's missing.
    """
    rows: List[Dict] = []
    for package in sorted(outcomes):
        outcome = outcomes[package]
        result = outcome.result
        rows.append({
            "package": package,
            "ok": outcome.ok,
            "duration_s": outcome.duration,
            "fault_kind": outcome.fault_kind,
            "activities_visited": (len(result.visited_activities)
                                   if result else 0),
            "activities_sum": result.activity_total if result else 0,
            "fragments_visited": (len(result.visited_fragments)
                                  if result else 0),
            "fragments_sum": result.fragment_total if result else 0,
            "apis": len(result.api_invocations) if result else 0,
            "events": result.stats.events if result else 0,
            "crashes": result.stats.crashes if result else 0,
        })
    return rows


def fault_census(outcomes: Dict[str, SweepOutcome]) -> Dict[str, int]:
    """Failed outcomes tallied by fault family.

    Classified faults count under their kind ("adb-transient",
    "timeout", "disconnect", "crash", "packed-apk"); anything else
    under "other".  Empty when the sweep was fully healthy.
    """
    census: Dict[str, int] = {}
    for outcome in outcomes.values():
        if outcome.ok:
            continue
        kind = outcome.fault_kind or "other"
        census[kind] = census.get(kind, 0) + 1
    return census
