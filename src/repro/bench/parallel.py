"""Parallel corpus sweeps.

Each app's exploration is fully independent — its own Device, its own
process state — so a market-scale deployment runs apps concurrently
(the paper's A3E comparison point is exactly this cost).  Two backends
share one contract:

* ``thread`` (the default) — a ``ThreadPoolExecutor``; the live config
  with all its observers is shared directly, exactly as before.
* ``process`` — a ``ProcessPoolExecutor``; every worker is pure-Python
  CPU-bound (emulated device + static analysis), so threads serialize
  on the GIL while processes actually use the cores.  Plans ship to
  workers in chunks together with a picklable *spec* of the config; the
  live ``Tracer``/``EventLog`` objects cannot cross the process
  boundary, so workers record into their own in-memory observers whose
  spans, counters and events are folded back into the parent's sinks on
  join (``Tracer.absorb`` / ``Metrics.merge`` / ``EventLog.absorb``).
  Captured exceptions cross the boundary as ``(type, message,
  fault_kind)`` triples and are re-hydrated on the parent side so
  ``SweepOutcome.unwrap()`` still re-raises something meaningful.

Both backends produce identical ``sweep_rows``/``fault_census`` for a
fixed seed (fault streams are per-scope seeded, never shared).  A
config carrying non-picklable pieces (custom observers, exotic fault
plans) silently keeps the thread backend.

Environment overrides for ROADMAP-style deployments:

* ``FRAGDROID_WORKERS`` — default worker count;
* ``FRAGDROID_SWEEP_BACKEND`` — default backend (``thread``/``process``).

Failure isolation: a market sweep deliberately contains apps that
cannot be processed (packed APKs, build failures — the Section VII-A
rule-outs), so each worker captures its own exception into a
:class:`SweepOutcome` instead of letting one bad app abort the whole
sweep, and outcomes are collected ``as_completed`` so one slow app
never delays reporting of every later one.

Worker death: a process-backend worker killed outright (OOM, SIGKILL)
breaks the pool — ``BrokenProcessPool`` — and takes its whole chunk's
results with it, plus every chunk still pending in the broken pool.
``explore_many`` marks those apps as failed
:class:`~repro.errors.WorkerDiedError` outcomes (``fault_kind
"worker-died"``, counted under the ``sweep.worker.died`` metric) and
still returns every completed result; the service scheduler
(:mod:`repro.serve.scheduler`) re-admits worker-died apps under a
retry policy instead of accepting the loss.
"""

from __future__ import annotations

import importlib
import os
import pickle
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro import FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.core.explorer import ExplorationResult
from repro.corpus import TABLE1_PLANS, build_app
from repro.corpus.synth import AppPlan
from repro.errors import ReproError, WorkerDiedError
from repro.faults import classify_fault, make_device
from repro.obs import NULL_EVENT_LOG, NULL_TRACER, Event, EventLog, Span, Tracer
from repro.obs.registry import capture_run_record, corpus_digest_of

BACKENDS = ("thread", "process")


class RemoteSweepError(ReproError):
    """A worker-process failure whose concrete type could not be rebuilt."""


@dataclass
class SweepOutcome:
    """What one app contributed to a sweep: a result or a captured
    failure (never both)."""

    package: str
    result: Optional[ExplorationResult] = None
    error: Optional[BaseException] = None
    duration: float = 0.0
    # The fault family of a captured failure ("adb-transient",
    # "timeout", "disconnect", "crash", "packed-apk"); None for a
    # success or an unclassified failure.
    fault_kind: Optional[str] = None
    # Content digest of the built APK (ApkPackage.digest()); None when
    # the failure struck before the build finished.  The sweep's run
    # record derives its corpus digest from these.
    apk_digest: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> ExplorationResult:
        """The result, re-raising the captured exception on failure."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


def _default_workers(plan_count: int) -> int:
    """``min(plans, cpus)``, overridable via ``FRAGDROID_WORKERS``."""
    env = os.environ.get("FRAGDROID_WORKERS", "").strip()
    if env:
        try:
            forced = int(env)
        except ValueError:
            forced = 0
        if forced > 0:
            return max(1, min(plan_count, forced))
    return max(1, min(plan_count, os.cpu_count() or 4))


def _resolve_backend(backend: Optional[str]) -> str:
    if backend is None:
        backend = os.environ.get("FRAGDROID_SWEEP_BACKEND", "").strip() \
            or "thread"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown sweep backend {backend!r}; choose from {BACKENDS}"
        )
    return backend


def explore_one(plan: AppPlan,
                config: Optional[FragDroidConfig] = None) -> SweepOutcome:
    """Build, install and explore one app on a fresh device.

    Build and exploration failures alike are captured into the returned
    :class:`SweepOutcome` — a packed APK (``PackedApkError``) reports as
    a failed outcome, it does not raise.
    """
    tracer = config.tracer if config is not None else NULL_TRACER
    fault_plan = config.fault_plan if config is not None else None
    trace_id = config.trace_id if config is not None else None
    started = perf_counter()
    digest: Optional[str] = None
    # Bound to the submitting job's trace when the config carries one
    # (repro.serve), so a fleet's spans correlate; a fresh trace root
    # otherwise, exactly as before.
    with tracer.trace_span("sweep.app", trace_id, app=plan.package) as span:
        try:
            apk = build_apk(build_app(plan))
            digest = apk.digest()
            device = make_device(fault_plan, scope=plan.package)
            result = FragDroid(device, config).explore(apk)
        except Exception as exc:
            tracer.inc("sweep.failures")
            span.set_attribute("error", repr(exc))
            kind = classify_fault(exc)
            if kind is not None:
                tracer.inc(f"sweep.faults.{kind}")
            return SweepOutcome(package=plan.package, error=exc,
                                duration=perf_counter() - started,
                                fault_kind=kind, apk_digest=digest)
    tracer.inc("sweep.apps")
    return SweepOutcome(package=plan.package, result=result,
                        duration=perf_counter() - started,
                        apk_digest=digest)


# ---------------------------------------------------------------------------
# The process backend: picklable config specs and frozen outcomes
# ---------------------------------------------------------------------------

#: Config fields a worker process can reconstruct its config from.  The
#: live observers are deliberately absent — they are replaced by fresh
#: in-memory ones in the worker and folded back on join.
_SPEC_FIELDS = (
    "enable_reflection", "enable_forced_start", "enable_input_file",
    "enable_click_exploration", "input_values", "input_strategy",
    "queue_order", "max_events", "max_queue_items", "max_restarts_per_item",
    "fault_profile", "fault_seed", "fault_plan", "retry_policy",
    "quarantine_threshold", "trace_id",
)


@dataclass
class _ConfigSpec:
    """Everything a worker needs to rebuild an equivalent config."""

    kwargs: Dict[str, object]
    trace: bool = False
    events: bool = False
    # Whether the parent tracer samples per-span peak memory; workers
    # rebuild their tracer with the same sampling mode.
    memory: bool = False
    # (directory, memory_entries) of the parent's StaticCache; workers
    # open their own handle — the disk tier is the shared medium.
    cache: Optional[Tuple[Optional[str], int]] = None


def _config_spec(config: Optional[FragDroidConfig]) -> Optional[_ConfigSpec]:
    if config is None:
        return None
    spec = _ConfigSpec(
        kwargs={name: getattr(config, name) for name in _SPEC_FIELDS},
        trace=config.tracer.enabled,
        events=config.event_log.enabled,
        memory=bool(getattr(config.tracer, "memory", False)),
    )
    if config.static_cache is not None:
        directory = config.static_cache.directory
        spec.cache = (str(directory) if directory is not None else None,
                      config.static_cache.memory_entries)
    return spec


def _worker_config(spec: Optional[_ConfigSpec]) -> Optional[FragDroidConfig]:
    if spec is None:
        return None
    config = FragDroidConfig(**spec.kwargs)
    if spec.trace:
        config.tracer = Tracer(memory=spec.memory)
    if spec.events:
        config.event_log = EventLog()
    if spec.cache is not None:
        from repro.static.cache import StaticCache

        directory, memory_entries = spec.cache
        config.static_cache = StaticCache(directory=directory,
                                          memory_entries=memory_entries)
    return config


@dataclass
class _FrozenOutcome:
    """A :class:`SweepOutcome` in picklable form, plus the worker's
    observability record for the parent to fold in."""

    package: str
    duration: float
    fault_kind: Optional[str] = None
    apk_digest: Optional[str] = None
    result: Optional[ExplorationResult] = None
    # (module, qualname, message) of the captured exception; exception
    # objects themselves don't reliably round-trip through pickle
    # (multi-argument constructors re-raise TypeError on load).
    error: Optional[Tuple[str, str, str]] = None
    spans: List[Span] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, List[float]] = field(default_factory=dict)


def _freeze_error(exc: BaseException) -> Tuple[str, str, str]:
    return (type(exc).__module__, type(exc).__qualname__, str(exc))


def _thaw_error(frozen: Tuple[str, str, str]) -> BaseException:
    """Re-hydrate a worker exception; falls back to
    :class:`RemoteSweepError` when the type cannot be rebuilt."""
    module, qualname, message = frozen
    try:
        cls = getattr(importlib.import_module(module), qualname)
        if isinstance(cls, type) and issubclass(cls, BaseException):
            return cls(message)
    except Exception:
        pass
    return RemoteSweepError(f"{qualname}: {message}")


def _chaos_kill_check(package: str) -> None:
    """Chaos/test instrumentation: die like an OOM-killed worker.

    ``FRAGDROID_CHAOS_KILL="<package>[:<times>]"`` makes a worker
    process ``os._exit`` the moment it reaches that package — the
    parent sees a ``BrokenProcessPool``, exactly the signature of a
    real SIGKILL.  Without ``:<times>`` every encounter kills; with it,
    only the first ``times`` encounters do, counted across pool
    restarts in the ``FRAGDROID_CHAOS_KILL_STATE`` directory (one
    ``O_EXCL`` marker file per kill, so concurrent workers never
    double-spend the budget).  Unset in production; the worker-death
    recovery tests and the chaos CI lane set it.
    """
    target = os.environ.get("FRAGDROID_CHAOS_KILL", "")
    if not target:
        return
    name, _, times = target.partition(":")
    if name != package:
        return
    if times:
        state = os.environ.get("FRAGDROID_CHAOS_KILL_STATE", "")
        if not state:
            return  # a bounded kill needs a state dir to count in
        import pathlib

        state_dir = pathlib.Path(state)
        state_dir.mkdir(parents=True, exist_ok=True)
        for attempt in range(int(times)):
            marker = state_dir / f"kill.{attempt}"
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL
                                 | os.O_WRONLY))
            except FileExistsError:
                continue
            os._exit(17)
        return  # kill budget spent: survive from here on
    os._exit(17)


def _run_chunk(spec: Optional[_ConfigSpec],
               plans: List[AppPlan]) -> List[_FrozenOutcome]:
    """Worker-process entry point: explore a chunk of plans serially,
    each with a fresh config (and fresh per-app observers)."""
    frozen: List[_FrozenOutcome] = []
    for plan in plans:
        _chaos_kill_check(plan.package)
        config = _worker_config(spec)
        outcome = explore_one(plan, config)
        entry = _FrozenOutcome(
            package=outcome.package,
            duration=outcome.duration,
            fault_kind=outcome.fault_kind,
            apk_digest=outcome.apk_digest,
            result=outcome.result,
            error=(_freeze_error(outcome.error)
                   if outcome.error is not None else None),
        )
        if config is not None and config.tracer.enabled:
            entry.spans = config.tracer.finished_spans()
            entry.counters = config.tracer.metrics.counters()
            entry.histograms = config.tracer.metrics.raw_histograms()
        if config is not None and config.event_log.enabled:
            entry.events = config.event_log.events()
        frozen.append(entry)
    return frozen


def _thaw_outcome(frozen: _FrozenOutcome,
                  config: Optional[FragDroidConfig]) -> SweepOutcome:
    """Rebuild the outcome in the parent, folding the worker's spans,
    counters and events into the parent's observers and sinks."""
    tracer = config.tracer if config is not None else NULL_TRACER
    event_log = config.event_log if config is not None else NULL_EVENT_LOG
    result = frozen.result
    if frozen.counters or frozen.histograms:
        tracer.metrics.merge(frozen.counters, frozen.histograms)
    if frozen.spans and tracer.enabled:
        # Re-home worker spans onto the submitting job's trace when the
        # config names one; worker-local trace ids (remapped) otherwise.
        absorbed = tracer.absorb(
            frozen.spans,
            into_trace=config.trace_id if config is not None else None)
        if result is not None:
            result.spans = absorbed
    if frozen.events and event_log.enabled:
        absorbed_events = event_log.absorb(frozen.events)
        if result is not None:
            result.events = [e for e in absorbed_events
                             if e.app == frozen.package]
    return SweepOutcome(
        package=frozen.package,
        result=result,
        error=_thaw_error(frozen.error) if frozen.error is not None else None,
        duration=frozen.duration,
        fault_kind=frozen.fault_kind,
        apk_digest=frozen.apk_digest,
    )


def _picklable(spec: Optional[_ConfigSpec]) -> bool:
    try:
        pickle.dumps(spec)
        return True
    except Exception:
        return False


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

def explore_many(
    plans: Sequence[AppPlan] = tuple(TABLE1_PLANS),
    config: Optional[FragDroidConfig] = None,
    max_workers: Optional[int] = None,
    backend: Optional[str] = None,
    chunksize: Optional[int] = None,
) -> Dict[str, SweepOutcome]:
    """Explore a set of apps concurrently; outcomes keyed by package.

    ``max_workers`` defaults to ``min(len(plans), os.cpu_count() or 4)``,
    overridable via ``FRAGDROID_WORKERS``.  ``backend`` chooses the pool:
    ``"thread"`` (default, shares the live config) or ``"process"``
    (sidesteps the GIL; see the module docstring for the pickling and
    observer-merge contract); ``None`` reads ``FRAGDROID_SWEEP_BACKEND``
    before falling back to threads.  ``chunksize`` batches plans per
    process-backend task (default ``len(plans) / (4 × workers)``,
    at least 1); the thread backend ignores it.

    The sweep always completes: per-app failures are carried inside the
    outcomes (see :class:`SweepOutcome`), never raised from here.

    When the config carries a ``run_registry``
    (:class:`repro.obs.registry.RunRegistry`), one content-addressed
    run record — coverage rows, fault census, corpus digest, metrics
    and per-phase timing — is persisted as the sweep ends.
    """
    plans = list(plans)
    backend = _resolve_backend(backend)
    if not plans:
        return {}
    if max_workers is None:
        max_workers = _default_workers(len(plans))
    used_process = False
    if backend == "process":
        spec = _config_spec(config)
        if _picklable(spec):
            used_process = True
            outcomes = _explore_many_process(plans, config, spec,
                                             max_workers, chunksize)
        elif config is not None:
            # Non-picklable observers/plans: quietly keep the thread pool.
            config.tracer.inc("sweep.backend.fallback")
    if not used_process:
        outcomes = _explore_many_thread(plans, config, max_workers)
    _record_sweep(config, outcomes,
                  backend="process" if used_process else "thread",
                  workers=max_workers)
    return outcomes


def _record_sweep(config: Optional[FragDroidConfig],
                  outcomes: Dict[str, SweepOutcome],
                  backend: str, workers: int) -> None:
    """Persist the sweep's run record when a registry is configured.

    The execution context (backend, worker count) lands in the
    record's unhashed ``meta``, so a thread run and a process run of
    the same sweep produce the same content-addressed payload."""
    registry = getattr(config, "run_registry", None)
    if config is None or registry is None:
        return
    record = capture_run_record(
        "sweep",
        config=config,
        apps=sweep_rows(outcomes),
        fault_census=fault_census(outcomes),
        corpus_digest=corpus_digest_of(
            {package: outcome.apk_digest
             for package, outcome in outcomes.items()}),
        meta={"backend": backend, "workers": workers},
    )
    registry.record(record)


def _explore_many_thread(
    plans: List[AppPlan],
    config: Optional[FragDroidConfig],
    max_workers: int,
) -> Dict[str, SweepOutcome]:
    outcomes: Dict[str, SweepOutcome] = {}
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            pool.submit(explore_one, plan, config): plan.package
            for plan in plans
        }
        for future in as_completed(futures):
            outcome = future.result()
            outcomes[futures[future]] = outcome
    return outcomes


def _explore_many_process(
    plans: List[AppPlan],
    config: Optional[FragDroidConfig],
    spec: Optional[_ConfigSpec],
    max_workers: int,
    chunksize: Optional[int],
) -> Dict[str, SweepOutcome]:
    if chunksize is None:
        chunksize = max(1, len(plans) // (max_workers * 4))
    chunks = [plans[i:i + chunksize]
              for i in range(0, len(plans), chunksize)]
    tracer = config.tracer if config is not None else NULL_TRACER
    outcomes: Dict[str, SweepOutcome] = {}
    with ProcessPoolExecutor(max_workers=min(max_workers,
                                             len(chunks))) as pool:
        futures = {pool.submit(_run_chunk, spec, chunk): chunk
                   for chunk in chunks}
        for future in as_completed(futures):
            try:
                frozen_chunk = future.result()
            except BrokenProcessPool as exc:
                # A worker died mid-chunk (OOM kill, SIGKILL, hard
                # crash).  The whole chunk's results died with it — and
                # once the pool is broken every still-pending chunk
                # fails the same way.  Mark each app failed instead of
                # aborting the sweep; the service scheduler
                # (repro.serve) re-admits "worker-died" outcomes.
                tracer.inc("sweep.worker.died")
                for plan in futures[future]:
                    outcomes[plan.package] = SweepOutcome(
                        package=plan.package,
                        error=WorkerDiedError(
                            f"worker process died during the chunk "
                            f"containing {plan.package}: {exc}"),
                        fault_kind="worker-died",
                    )
                continue
            for frozen in frozen_chunk:
                outcomes[frozen.package] = _thaw_outcome(frozen, config)
    return outcomes


def unwrap_results(
    outcomes: Dict[str, SweepOutcome],
) -> Dict[str, ExplorationResult]:
    """Results keyed by package; re-raises the first captured failure.

    The strict accessor for sweeps expected to be fully healthy (the
    Table I corpus); use :func:`successful_results` to tolerate
    failures instead.
    """
    return {package: outcome.unwrap()
            for package, outcome in outcomes.items()}


def successful_results(
    outcomes: Dict[str, SweepOutcome],
) -> Dict[str, ExplorationResult]:
    """Only the successful results, failures silently skipped."""
    return {package: outcome.result
            for package, outcome in outcomes.items()
            if outcome.ok and outcome.result is not None}


def sweep_rows(outcomes: Dict[str, SweepOutcome]) -> List[Dict]:
    """Per-app fleet rows, the aggregation the run dashboard's fleet
    table renders (``repro.obs.dashboard.render_fleet_table``).

    One dict per outcome, sorted by package, covering successes and
    failures alike — a failed app keeps its duration and fault family
    so the fleet view shows *what* died, not just who's missing.
    """
    rows: List[Dict] = []
    for package in sorted(outcomes):
        outcome = outcomes[package]
        result = outcome.result
        rows.append({
            "package": package,
            "ok": outcome.ok,
            "duration_s": outcome.duration,
            "fault_kind": outcome.fault_kind,
            "activities_visited": (len(result.visited_activities)
                                   if result else 0),
            "activities_sum": result.activity_total if result else 0,
            "fragments_visited": (len(result.visited_fragments)
                                  if result else 0),
            "fragments_sum": result.fragment_total if result else 0,
            "apis": len(result.api_invocations) if result else 0,
            "events": result.stats.events if result else 0,
            "crashes": result.stats.crashes if result else 0,
        })
    return rows


def fault_census(outcomes: Dict[str, SweepOutcome]) -> Dict[str, int]:
    """Failed outcomes tallied by fault family.

    Classified faults count under their kind ("adb-transient",
    "timeout", "disconnect", "crash", "packed-apk"); anything else
    under "other".  Empty when the sweep was fully healthy.
    """
    census: Dict[str, int] = {}
    for outcome in outcomes.values():
        if outcome.ok:
            continue
        kind = outcome.fault_kind or "other"
        census[kind] = census.get(kind, 0) + 1
    return census
