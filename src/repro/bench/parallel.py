"""Parallel corpus sweeps.

Each app's exploration is fully independent — its own Device, its own
process state — so a market-scale deployment runs apps concurrently
(the paper's A3E comparison point is exactly this cost).  The pool is
thread-based: the emulator is pure Python and each exploration is
short, so threads keep the API simple while still overlapping any
interpreter-released work.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Sequence

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.core.explorer import ExplorationResult
from repro.corpus import TABLE1_PLANS, build_app
from repro.corpus.synth import AppPlan


def explore_one(plan: AppPlan,
                config: Optional[FragDroidConfig] = None) -> ExplorationResult:
    """Build, install and explore one app on a fresh device."""
    device = Device()
    return FragDroid(device, config).explore(build_apk(build_app(plan)))


def explore_many(
    plans: Sequence[AppPlan] = tuple(TABLE1_PLANS),
    config: Optional[FragDroidConfig] = None,
    max_workers: int = 4,
) -> Dict[str, ExplorationResult]:
    """Explore a set of apps concurrently; results keyed by package."""
    results: Dict[str, ExplorationResult] = {}
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            pool.submit(explore_one, plan, config): plan.package
            for plan in plans
        }
        for future, package in futures.items():
            results[package] = future.result()
    return results
