"""Shared experiment runners for the benchmark harness.

Each function regenerates one of the paper's results end-to-end and
returns both the structured data and a rendered text table; the
``benchmarks/`` directory wires them into pytest-benchmark and persists
the rendered artifacts under ``benchmarks/results/``.
"""

from repro.bench.parallel import (
    SweepOutcome,
    explore_many,
    explore_one,
    fault_census,
    successful_results,
    unwrap_results,
)
from repro.bench.runner import (
    AblationResult,
    BaselineComparison,
    UsageStudyResult,
    run_ablation,
    run_baseline_comparison,
    run_table1,
    run_usage_study,
)

__all__ = [
    "AblationResult",
    "BaselineComparison",
    "SweepOutcome",
    "UsageStudyResult",
    "explore_many",
    "explore_one",
    "fault_census",
    "run_ablation",
    "run_baseline_comparison",
    "run_table1",
    "run_usage_study",
    "successful_results",
    "unwrap_results",
]
