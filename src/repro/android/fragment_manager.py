"""FragmentManager and FragmentTransaction semantics.

Implements the API surface of the paper's Figure 3 code snippet:
``getFragmentManager().beginTransaction()`` followed by ``add``/
``replace`` and ``commit``.  Only *managed* fragments pass through here;
unmanaged (directly attached) fragments never register with a manager,
which is what breaks FragDroid's reflective switching for them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import DeviceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.android.activity import ActivityInstance
    from repro.android.fragment import FragmentInstance


class FragmentTransaction:
    """A pending set of fragment operations, applied on commit."""

    def __init__(self, manager: "FragmentManager") -> None:
        self._manager = manager
        self._operations: List[tuple] = []
        self._committed = False
        self._back_stack = False

    def add_to_back_stack(self, name: Optional[str] = None
                          ) -> "FragmentTransaction":
        """``FragmentTransaction.addToBackStack``: the commit becomes
        reversible via the back key."""
        self._back_stack = True
        return self

    def add(self, container_id: str,
            fragment: "FragmentInstance") -> "FragmentTransaction":
        self._operations.append(("add", container_id, fragment))
        return self

    def replace(self, container_id: str,
                fragment: "FragmentInstance") -> "FragmentTransaction":
        self._operations.append(("replace", container_id, fragment))
        return self

    def remove(self, fragment: "FragmentInstance") -> "FragmentTransaction":
        self._operations.append(("remove", fragment.container_id, fragment))
        return self

    def commit(self) -> int:
        if self._committed:
            raise DeviceError("transaction already committed")
        self._committed = True
        snapshot = (self._manager.snapshot_containers()
                    if self._back_stack else None)
        for op, container_id, fragment in self._operations:
            if op == "replace":
                self._manager.detach_all(container_id)
                self._manager.attach(container_id, fragment)
            elif op == "add":
                self._manager.attach(container_id, fragment)
            elif op == "remove":
                self._manager.detach(container_id, fragment)
        if snapshot is not None:
            self._manager.push_back_stack(snapshot)
        return len(self._operations)


class FragmentManager:
    """Per-Activity registry of attached (managed) fragments."""

    def __init__(self, activity: "ActivityInstance") -> None:
        self._activity = activity
        self._containers: Dict[str, List["FragmentInstance"]] = {}
        self._back_stack: List[Dict[str, List["FragmentInstance"]]] = []

    def begin_transaction(self) -> FragmentTransaction:
        return FragmentTransaction(self)

    # -- back stack ---------------------------------------------------------

    def snapshot_containers(self) -> Dict[str, List["FragmentInstance"]]:
        return {cid: list(frags) for cid, frags in self._containers.items()}

    def push_back_stack(self,
                        snapshot: Dict[str, List["FragmentInstance"]]) -> None:
        self._back_stack.append(snapshot)

    @property
    def back_stack_entry_count(self) -> int:
        return len(self._back_stack)

    def pop_back_stack(self) -> bool:
        """Reverse the most recent back-stacked transaction."""
        if not self._back_stack:
            return False
        self._containers = self._back_stack.pop()
        return True

    def attach(self, container_id: str, fragment: "FragmentInstance") -> None:
        self._containers.setdefault(container_id, []).append(fragment)
        fragment.on_create_view()

    def detach(self, container_id: str, fragment: "FragmentInstance") -> None:
        fragments = self._containers.get(container_id, [])
        if fragment in fragments:
            fragments.remove(fragment)

    def detach_all(self, container_id: str) -> None:
        self._containers[container_id] = []

    def fragments(self) -> List["FragmentInstance"]:
        out: List["FragmentInstance"] = []
        for container in sorted(self._containers):
            out.extend(self._containers[container])
        return out

    def in_container(self, container_id: str) -> List["FragmentInstance"]:
        return list(self._containers.get(container_id, ()))

    def find_by_class(self, class_name: str) -> Optional["FragmentInstance"]:
        for fragment in self.fragments():
            if fragment.class_name == class_name:
                return fragment
        return None
