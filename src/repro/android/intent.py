"""Intents: the messages that start Activities.

Supports the two forms Algorithm 1 cares about — explicit
(``new Intent(ctx, Target.class)``) and implicit
(``new Intent("action.string")`` resolved against the manifest) — plus
the *empty* Intents FragDroid uses for forced starts (Section VI-C),
which carry no extras and therefore trip activities that require them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.types import ComponentName


@dataclass
class Intent:
    """An explicit or implicit intent."""

    component: Optional[ComponentName] = None
    action: Optional[str] = None
    extras: Dict[str, str] = field(default_factory=dict)

    @property
    def is_explicit(self) -> bool:
        return self.component is not None

    @property
    def is_empty(self) -> bool:
        """An 'empty Intent' in the paper's sense: no extras, used for
        forcible invocation of unvisited Activities."""
        return not self.extras

    def put_extra(self, key: str, value: str) -> "Intent":
        self.extras[key] = value
        return self

    def __str__(self) -> str:
        target = self.component.flat if self.component else f"action={self.action}"
        return f"Intent({target}, extras={sorted(self.extras)})"
