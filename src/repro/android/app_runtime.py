"""The app process: activity stack plus behaviour execution.

Where a real phone executes DEX bytecode, the emulator executes the
behavioural spec the APK was compiled from (see DESIGN.md).  The
observable semantics — lifecycle order, FragmentTransaction effects,
Intent resolution, dialogs, drawers, crashes, sensitive-API logging —
match what the compiled smali describes, because both are generated from
the same spec.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.apk.appspec import (
    Action,
    AppSpec,
    Chain,
    Crash,
    FinishActivity,
    InvokeApi,
    Noop,
    OpenDrawer,
    ShowDialog,
    ShowFragment,
    ShowPopupMenu,
    StartActivity,
    StartActivityByAction,
    SubmitForm,
    ToggleWidget,
    WidgetSpec,
)
from repro.android.activity import ActivityInstance
from repro.android.fragment import FragmentInstance
from repro.android.intent import Intent
from repro.android.views import RuntimeWidget
from repro.apk.package import ApkPackage
from repro.apk.resources import ResourceTable
from repro.errors import AppCrashError
from repro.types import ComponentName, InvocationSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.android.device import Device

Owner = Union[ActivityInstance, FragmentInstance]


class AppProcess:
    """One running application."""

    def __init__(self, apk: ApkPackage, device: "Device") -> None:
        self.apk = apk
        self.spec: AppSpec = apk.runtime_spec()
        self.package = apk.package
        self.device = device
        self.resources = ResourceTable.from_public_xml(
            apk.package, apk.public_xml
        )
        self.stack: List[ActivityInstance] = []
        # Click handlers: widget identity -> (spec, owning component).
        self._handlers: Dict[int, Tuple[WidgetSpec, Owner]] = {}

    # -- stack ------------------------------------------------------------------

    @property
    def top_activity(self) -> Optional[ActivityInstance]:
        return self.stack[-1] if self.stack else None

    def start_activity(self, activity_name: str, intent: Intent) -> bool:
        """Instantiate and push an Activity; returns True when it stays
        resident (didn't immediately finish or crash)."""
        spec = self.spec.activity(activity_name)
        if spec.crashes_on_launch:
            self.crash(f"{activity_name} crashed in onCreate",
                       self.spec.qualify(activity_name))
            return False
        instance = ActivityInstance(spec, self, intent)
        if not instance.on_create():
            return False
        self.stack.append(instance)
        return True

    def finish_top(self) -> None:
        if self.stack:
            self.stack.pop()

    def crash(self, reason: str, component: str) -> None:
        """Force close: log, clear, and raise to the device layer."""
        self.device.logcat.log(
            "E", "AndroidRuntime",
            f"FATAL EXCEPTION in {self.package}: {reason}",
            self.device.steps,
        )
        self.stack.clear()
        self._handlers.clear()
        raise AppCrashError(self.package, component, reason)

    # -- handlers --------------------------------------------------------------------

    def register_handler(self, widget: RuntimeWidget, spec: WidgetSpec,
                         owner: Owner) -> None:
        self._handlers[id(widget)] = (spec, owner)

    def handler_for(self, widget: RuntimeWidget
                    ) -> Optional[Tuple[WidgetSpec, Owner]]:
        return self._handlers.get(id(widget))

    # -- event dispatch -----------------------------------------------------------------

    def dispatch_click(self, widget: RuntimeWidget) -> None:
        """Run a widget's click handler (if any)."""
        activity = self.top_activity
        # Clicking a drawer item or popup/dialog button closes its layer,
        # whether or not the widget has its own handler.
        if activity is not None and widget.clickable:
            if widget.layer == "drawer":
                activity.drawer_open = False
            elif widget.layer in ("dialog", "popup"):
                activity.dismiss_top_overlay()
        entry = self.handler_for(widget)
        if entry is None:
            return
        spec, owner = entry
        if spec.on_click is None:
            if widget.kind.name in ("CHECK_BOX", "SWITCH"):
                widget.checked = not widget.checked
            return
        self.perform(spec.on_click, owner, widget)

    # -- behaviour execution ---------------------------------------------------------------

    def perform(self, action: Action, owner: Owner,
                widget: Optional[RuntimeWidget] = None) -> None:
        host = self._host_activity(owner)
        if isinstance(action, Noop):
            return
        if isinstance(action, Chain):
            for child in action.actions:
                self.perform(child, owner, widget)
            return
        if isinstance(action, InvokeApi):
            self._record_api(action.api, owner)
            return
        if isinstance(action, StartActivity):
            intent = Intent(
                component=ComponentName(
                    self.package, self.spec.qualify(action.target)
                )
            ).put_extra("origin", self._owner_class(owner))
            self.start_activity(action.target, intent)
            return
        if isinstance(action, StartActivityByAction):
            self._start_by_action(action.action, owner)
            return
        if isinstance(action, ShowFragment):
            if host is None:
                return
            self.attach_fragment(
                host, action.fragment, action.container_id,
                mode=action.mode, via="transaction",
                add_to_back_stack=action.add_to_back_stack,
            )
            return
        if isinstance(action, OpenDrawer):
            if host is not None and host.spec.drawer is not None:
                host.drawer_open = True
            return
        if isinstance(action, ShowDialog):
            if host is not None:
                host.show_dialog(
                    action.message, list(action.buttons),
                    self._owner_class(owner),
                    isinstance(owner, FragmentInstance),
                )
            return
        if isinstance(action, ShowPopupMenu):
            if host is not None:
                host.show_popup(
                    list(action.items), self._owner_class(owner),
                    isinstance(owner, FragmentInstance),
                )
            return
        if isinstance(action, Crash):
            self.crash(action.reason, self._owner_class(owner))
            return
        if isinstance(action, FinishActivity):
            self.finish_top()
            return
        if isinstance(action, ToggleWidget):
            if host is not None:
                for candidate in host.visible_widgets():
                    if candidate.widget_id == action.widget_id:
                        candidate.checked = not candidate.checked
            return
        if isinstance(action, SubmitForm):
            if host is None:
                return
            if self._form_satisfied(host, action):
                self.perform(action.on_success, owner, widget)
            else:
                self.perform(action.on_failure, owner, widget)
            return
        raise TypeError(f"unhandled action: {type(action).__name__}")

    # -- fragment attachment -------------------------------------------------------------

    def attach_fragment(self, host: ActivityInstance, fragment_name: str,
                        container_id: str, mode: str, via: str,
                        add_to_back_stack: bool = False
                        ) -> FragmentInstance:
        spec = self.spec.fragment(fragment_name)
        instance = FragmentInstance(spec, host, container_id, via=via)
        if spec.managed:
            transaction = host.fragment_manager.begin_transaction()
            if mode == "replace":
                transaction.replace(container_id, instance)
            else:
                transaction.add(container_id, instance)
            if add_to_back_stack:
                transaction.add_to_back_stack()
            transaction.commit()
        else:
            # Direct attachment without a FragmentManager (dubsmash mode):
            # the view appears but no manager records the fragment.  Apps
            # replace an already-attached instance of the same class
            # rather than stacking duplicates.
            host.direct_fragments = [
                f for f in host.direct_fragments
                if f.class_name != instance.class_name
            ]
            host.direct_fragments.append(instance)
            instance.on_create_view()
        return instance

    # -- helpers --------------------------------------------------------------------------

    def _host_activity(self, owner: Owner) -> Optional[ActivityInstance]:
        if isinstance(owner, FragmentInstance):
            return owner.host
        return owner

    def _owner_class(self, owner: Owner) -> str:
        return owner.class_name

    def _record_api(self, api: str, owner: Owner) -> None:
        source = (InvocationSource.FRAGMENT
                  if isinstance(owner, FragmentInstance)
                  else InvocationSource.ACTIVITY)
        self.device.api_monitor.record(
            api, ComponentName(self.package, owner.class_name),
            source, self.device.steps,
        )

    def _start_by_action(self, action_string: str, owner: Owner) -> None:
        manifest_targets = [
            decl for decl in self.device.manifest_of(self.package).activities
            if decl.handles_action(action_string)
        ]
        if manifest_targets:
            intent = Intent(action=action_string).put_extra(
                "origin", self._owner_class(owner)
            )
            self.start_activity(manifest_targets[0].name, intent)
            return
        # No in-app handler: resolve across installed apps, as the
        # ActivityManagerService would (cross-app implicit intent).
        from repro.errors import ActivityNotFoundError, SecurityException

        try:
            # Cross-app targets must be exported, same as for the shell.
            self.device.start_activity(
                action=action_string,
                extras={"origin": self._owner_class(owner)},
                from_shell=True,
            )
        except (ActivityNotFoundError, SecurityException):
            self.device.logcat.log(
                "W", "ActivityManager",
                f"no activity handles action {action_string}",
                self.device.steps,
            )

    def _form_satisfied(self, host: ActivityInstance,
                        form: SubmitForm) -> bool:
        from repro.apk.inputs import validate

        visible = {w.widget_id: w for w in host.visible_widgets()}
        for widget_id, expected in form.required.items():
            widget = visible.get(widget_id)
            if widget is None or widget.entered_text != expected:
                return False
        for widget_id, rule in form.rules.items():
            widget = visible.get(widget_id)
            if widget is None or not validate(rule, widget.entered_text):
                return False
        return True
