"""Runtime Fragment instances.

A Fragment instance is created when a FragmentTransaction commits (or,
for unmanaged fragments, when the app attaches the view directly); its
``onCreateView`` builds runtime widgets and fires the fragment's
sensitive-API calls through the monitor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.apk.appspec import FragmentSpec
from repro.android.views import RuntimeWidget, synthetic_id
from repro.types import ComponentName, InvocationSource, WidgetKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.android.activity import ActivityInstance


class FragmentInstance:
    """One attached Fragment."""

    def __init__(self, spec: FragmentSpec, host: "ActivityInstance",
                 container_id: str, via: str) -> None:
        self.spec = spec
        self.host = host
        self.container_id = container_id
        self.via = via  # "transaction" | "direct" | "reflection"
        self.class_name = host.app.spec.qualify(spec.name)
        self.widgets: List[RuntimeWidget] = []
        self._created = False

    @property
    def component(self) -> ComponentName:
        return ComponentName(self.host.app.package, self.class_name)

    @property
    def managed(self) -> bool:
        return self.spec.managed

    def on_create_view(self) -> None:
        """Inflate widgets and run the fragment's onCreateView API calls."""
        if self._created:
            return
        self._created = True
        device = self.host.app.device
        for api in self.spec.api_calls:
            device.api_monitor.record(
                api, self.component, InvocationSource.FRAGMENT, device.steps
            )
        resources = self.host.app.resources
        for widget_spec in self.spec.widgets:
            if self.managed:
                rid = resources.get("id", widget_spec.id)
                widget_id = widget_spec.id
                resource_value = rid.value if rid else None
            else:
                # Programmatic views: IDs generated at runtime, invisible
                # to the resource dependency (the dubsmash failure mode).
                widget_id = synthetic_id(self.class_name, widget_spec.id)
                resource_value = None
            self.widgets.append(
                RuntimeWidget(
                    widget_id=widget_id,
                    kind=widget_spec.kind,
                    text=widget_spec.text,
                    owner_class=self.class_name,
                    owner_is_fragment=True,
                    resource_value=resource_value,
                    clickable=widget_spec.on_click is not None
                    or widget_spec.kind.clickable,
                )
            )
            self.host.app.register_handler(self.widgets[-1], widget_spec,
                                           owner=self)

    def __repr__(self) -> str:
        return f"<Fragment {self.spec.name} in {self.host.spec.name}>"
