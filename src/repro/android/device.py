"""The device: install apps, deliver input events, expose the screen.

The emulator's public surface mirrors what an instrumented phone offers
an automation harness:

* package management (``install`` / ``uninstall`` / ``force_stop``);
* activity management (:meth:`start_activity`, exported checks, crash
  handling) — the ActivityManagerService role;
* input events (``tap``, ``click_widget``, ``enter_text``,
  ``press_back``, ``swipe_from_left``) with a global step counter;
* observation (``ui_dump``, ``current_activity_name``, ``logcat``,
  the sensitive-API monitor).

Ground-truth inspection helpers (``current_fragment_classes``) exist for
the test suite and for computing oracle coverage; the FragDroid explorer
does not use them — it identifies fragments via the resource dependency,
as the paper does.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.android.api_monitor import ApiMonitor
from repro.android.app_runtime import AppProcess
from repro.android.events import EventLog, InputEvent
from repro.android.intent import Intent
from repro.android.logcat import Logcat
from repro.android.views import RuntimeWidget, widget_at
from repro.apk.manifest import Manifest
from repro.apk.package import ApkPackage
from repro.errors import (
    ActivityNotFoundError,
    AppCrashError,
    AppNotInstalledError,
    SecurityException,
    WidgetNotFoundError,
)
from repro.types import ComponentName


class _InstalledApp:
    def __init__(self, apk: ApkPackage) -> None:
        self.apk = apk
        self.manifest = Manifest.from_xml(apk.manifest_xml)


class Device:
    """One emulated Android device."""

    def __init__(self) -> None:
        self._installed: Dict[str, _InstalledApp] = {}
        self._processes: Dict[str, AppProcess] = {}
        self.foreground: Optional[AppProcess] = None
        self.logcat = Logcat()
        self.api_monitor = ApiMonitor()
        self.event_log = EventLog()
        self.steps = 0
        self.crash_count = 0

    def _record_event(self, kind: str, x: int = 0, y: int = 0,
                      target: str = "", text: str = "") -> None:
        self.event_log.record(
            InputEvent(step=self.steps, kind=kind, x=x, y=y,
                       target=target, text=text)
        )

    # -- package management -----------------------------------------------------

    def install(self, apk: ApkPackage) -> None:
        self._installed[apk.package] = _InstalledApp(apk)
        self.logcat.log("I", "PackageManager",
                        f"installed {apk.apk_name}", self.steps)

    def uninstall(self, package: str) -> None:
        self.force_stop(package)
        self._installed.pop(package, None)

    def is_installed(self, package: str) -> bool:
        return package in self._installed

    def installed_packages(self) -> List[str]:
        return sorted(self._installed)

    def manifest_of(self, package: str) -> Manifest:
        return self._app(package).manifest

    def force_stop(self, package: str) -> None:
        process = self._processes.pop(package, None)
        if process is not None and self.foreground is process:
            self.foreground = None
        self.logcat.log("I", "ActivityManager",
                        f"force-stop {package}", self.steps)

    def _app(self, package: str) -> _InstalledApp:
        try:
            return self._installed[package]
        except KeyError:
            raise AppNotInstalledError(package) from None

    def _process(self, package: str) -> AppProcess:
        if package not in self._processes:
            self._processes[package] = AppProcess(
                self._app(package).apk, self
            )
        return self._processes[package]

    # -- activity management ------------------------------------------------------

    def start_activity(
        self,
        component: Optional[ComponentName] = None,
        action: Optional[str] = None,
        extras: Optional[Dict[str, str]] = None,
        from_shell: bool = True,
    ) -> bool:
        """The ActivityManagerService entry point (``am start``).

        Returns True when the target Activity ends up resident in the
        foreground.  Shell starts require the target to be exported.
        """
        self.steps += 1
        if component is not None:
            self._record_event("start", target=component.flat)
        elif action is not None:
            self._record_event("start", target=f"action:{action}")
        if component is None:
            if action is None:
                raise ActivityNotFoundError("neither component nor action given")
            component = self._resolve_action(action)
        app = self._app(component.package)
        decl = app.manifest.activity(component.cls)
        if decl is None:
            raise ActivityNotFoundError(component.flat)
        if from_shell and not decl.exported:
            raise SecurityException(
                f"{component.flat} not exported; shell start denied"
            )
        process = self._process(component.package)
        intent = Intent(component=component, action=action,
                        extras=dict(extras or {}))
        try:
            resident = process.start_activity(decl.name, intent)
        except AppCrashError:
            self._handle_crash(component.package)
            return False
        self.foreground = process
        return resident and process.top_activity is not None

    def _resolve_action(self, action: str) -> ComponentName:
        for package, app in sorted(self._installed.items()):
            for decl in app.manifest.resolve_action(action):
                return ComponentName(package, decl.name)
        raise ActivityNotFoundError(f"no activity handles {action!r}")

    def launch_app(self, package: str) -> bool:
        """Start the launcher Activity (``am start -n ... -a MAIN``)."""
        app = self._app(package)
        launcher = app.manifest.launcher_activity
        if launcher is None:
            raise ActivityNotFoundError(f"{package} has no launcher activity")
        return self.start_activity(
            ComponentName(package, launcher.name), from_shell=True
        )

    def _handle_crash(self, package: str) -> None:
        self.crash_count += 1
        self._processes.pop(package, None)
        if self.foreground is not None and self.foreground.package == package:
            self.foreground = None

    # -- observation -------------------------------------------------------------------

    def ui_dump(self) -> List[RuntimeWidget]:
        """The visible widget tree (empty when no app is foreground)."""
        if self.foreground is None or self.foreground.top_activity is None:
            return []
        return self.foreground.top_activity.visible_widgets()

    def current_activity_name(self) -> Optional[str]:
        if self.foreground is None or self.foreground.top_activity is None:
            return None
        return self.foreground.top_activity.class_name

    def current_fragment_classes(self) -> List[str]:
        """Ground truth for tests/oracles — not used by the explorer."""
        if self.foreground is None or self.foreground.top_activity is None:
            return []
        return sorted(
            fragment.class_name
            for fragment in self.foreground.top_activity.all_fragments()
        )

    def render_screen(self, width: int = 64) -> str:
        """An ASCII sketch of the current screen — the debugging
        'screenshot'.  One row per widget, layer-annotated, proportional
        horizontal placement."""
        widgets = self.ui_dump()
        if not widgets:
            return "[no app in foreground]"
        from repro.android.views import SCREEN_WIDTH

        activity = self.current_activity_name() or "?"
        lines = [f"┌─ {activity} ".ljust(width - 1, "─") + "┐"]
        for widget in sorted(widgets, key=lambda w: (w.bounds.top,
                                                     w.bounds.left)):
            left_pad = int(widget.bounds.left / SCREEN_WIDTH * (width - 10))
            marker = {
                "content": "·", "drawer": "≡", "dialog": "□", "popup": "▤",
            }.get(widget.layer, "?")
            label = f"{marker} [{widget.kind.value}] "
            label += widget.text or widget.widget_id
            if widget.accepts_text and widget.entered_text:
                label += f" ({widget.entered_text!r})"
            if not widget.clickable:
                label += " (inert)"
            body = (" " * left_pad + label)[: width - 4]
            lines.append(f"│ {body.ljust(width - 4)} │")
        lines.append("└" + "─" * (width - 2) + "┘")
        return "\n".join(lines)

    @property
    def app_alive(self) -> bool:
        return (self.foreground is not None
                and self.foreground.top_activity is not None)

    # -- input events ----------------------------------------------------------------------

    def tap(self, x: int, y: int) -> None:
        """Inject a tap.  Blank-space taps dismiss overlays/drawers —
        the paper's Case 3 dialog handling."""
        self.steps += 1
        self._record_event("tap", x=x, y=y)
        if self.foreground is None:
            return
        activity = self.foreground.top_activity
        if activity is None:
            return
        widgets = activity.visible_widgets()
        target = widget_at(widgets, x, y)
        if target is None:
            overlay = activity.top_overlay
            if overlay is not None and not overlay.window.contains(x, y):
                activity.dismiss_top_overlay()
            elif activity.drawer_open:
                activity.drawer_open = False
            return
        if not target.clickable:
            return
        try:
            self.foreground.dispatch_click(target)
        except AppCrashError:
            self._handle_crash(self.foreground.package)

    def click_widget(self, widget_id: str) -> None:
        """Tap the center of a widget found by its ID."""
        for widget in self.ui_dump():
            if widget.widget_id == widget_id:
                x, y = widget.bounds.center
                self.tap(x, y)
                return
        raise WidgetNotFoundError(widget_id)

    def enter_text(self, widget_id: str, text: str) -> None:
        self.steps += 1
        self._record_event("text", target=widget_id, text=text)
        for widget in self.ui_dump():
            if widget.widget_id == widget_id and widget.accepts_text:
                widget.entered_text = text
                return
        raise WidgetNotFoundError(f"{widget_id} (EditText)")

    def press_back(self) -> None:
        """Back: dismiss overlay > close drawer > pop fragment back
        stack > pop activity."""
        self.steps += 1
        self._record_event("back")
        if self.foreground is None:
            return
        activity = self.foreground.top_activity
        if activity is None:
            return
        if activity.dismiss_top_overlay():
            return
        if activity.drawer_open:
            activity.drawer_open = False
            return
        if activity.fragment_manager.pop_back_stack():
            return
        self.foreground.finish_top()
        if self.foreground.top_activity is None:
            self.foreground = None

    def swipe_from_left(self) -> None:
        """An edge swipe: opens the navigation drawer when one exists."""
        self.steps += 1
        self._record_event("swipe")
        if self.foreground is None:
            return
        activity = self.foreground.top_activity
        if activity is not None and activity.spec.drawer is not None:
            activity.drawer_open = True
