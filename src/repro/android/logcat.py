"""Logcat: the device's line-oriented log buffer.

The explorer reads it the way real FragDroid reads ``adb logcat``: to
spot force-closes and to trace what the run did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class LogEntry:
    level: str  # V/D/I/W/E
    tag: str
    message: str
    step: int

    def __str__(self) -> str:
        return f"{self.step:06d} {self.level}/{self.tag}: {self.message}"


class Logcat:
    """An append-only log with tag/level filtering."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []

    def log(self, level: str, tag: str, message: str, step: int = 0) -> None:
        self._entries.append(LogEntry(level, tag, message, step))

    def entries(self, tag: Optional[str] = None,
                level: Optional[str] = None) -> List[LogEntry]:
        out = self._entries
        if tag is not None:
            out = [e for e in out if e.tag == tag]
        if level is not None:
            out = [e for e in out if e.level == level]
        return list(out)

    def crashes(self) -> List[LogEntry]:
        """Force-close records (tag AndroidRuntime, level E)."""
        return [e for e in self._entries
                if e.tag == "AndroidRuntime" and e.level == "E"]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def dump(self) -> str:
        return "\n".join(str(e) for e in self._entries)
