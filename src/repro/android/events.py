"""Structured input-event logging (the ``adb shell getevent`` analogue).

Every input the device receives — taps, text, back presses, swipes,
activity starts — is recorded with its step number and payload.  The
explorer, Monkey, and the recorder all feed it implicitly; tests and
post-mortems read it to reconstruct exactly what a run injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class InputEvent:
    """One injected input event."""

    step: int
    kind: str        # tap | click | text | back | swipe | start
    x: int = 0
    y: int = 0
    target: str = "" # widget id or component
    text: str = ""

    def __str__(self) -> str:
        if self.kind == "tap":
            return f"{self.step:06d} tap ({self.x},{self.y})"
        if self.kind == "text":
            return f"{self.step:06d} text {self.target}={self.text!r}"
        if self.target:
            return f"{self.step:06d} {self.kind} {self.target}"
        return f"{self.step:06d} {self.kind}"


class EventLog:
    """Append-only input-event history."""

    def __init__(self) -> None:
        self._events: List[InputEvent] = []

    def record(self, event: InputEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[InputEvent]:
        return list(self._events)

    def of_kind(self, kind: str) -> List[InputEvent]:
        return [e for e in self._events if e.kind == kind]

    def since(self, step: int) -> List[InputEvent]:
        return [e for e in self._events if e.step >= step]

    def __len__(self) -> int:
        return len(self._events)

    def dump(self) -> str:
        return "\n".join(str(e) for e in self._events)
