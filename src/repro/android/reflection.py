"""Java-reflection fragment switching (paper Section VI-A, Case 2).

FragDroid reflects the FragmentManager of the current Activity,
instantiates the target Fragment class on the VM, fills it into a
FragmentTransaction and commits.  Our runtime exposes the same moves —
with the same two failure modes the paper reports:

* the Fragment's ``newInstance`` needs parameters that reflection cannot
  supply (``com.inditex.zara``): :class:`ReflectionError`;
* the Fragment is loaded directly without a FragmentManager
  (``com.mobilemotion.dubsmash``): there is no transaction to construct,
  so switching (and load confirmation) fails.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ReflectionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.android.device import Device
    from repro.android.fragment import FragmentInstance


def reflective_fragment_switch(
    device: "Device",
    fragment_class: str,
    container_id: Optional[str] = None,
) -> "FragmentInstance":
    """Force the foreground Activity to show ``fragment_class``.

    Mirrors the reflection template of Section VI-B: locate
    ``getFragmentManager``/``getSupportFragmentManager`` on the Activity,
    ``beginTransaction()``, instantiate the Fragment class, ``replace``
    into the container resource-ID, ``commit()``.
    """
    app = device.foreground
    if app is None or app.top_activity is None:
        raise ReflectionError("no foreground activity to reflect on")
    activity = app.top_activity
    simple = fragment_class.rsplit(".", 1)[-1]
    try:
        spec = app.spec.fragment(simple)
    except Exception as exc:
        raise ReflectionError(f"class not found: {fragment_class}") from exc
    if not spec.managed:
        raise ReflectionError(
            f"{fragment_class} is attached without a FragmentManager; "
            "no FragmentTransaction can be constructed"
        )
    if spec.requires_args:
        raise ReflectionError(
            f"{fragment_class}.newInstance requires parameters that "
            "reflection cannot transmit"
        )
    container = container_id or activity.spec.container_id
    if container is None:
        raise ReflectionError(
            f"{activity.class_name} has no fragment container to commit into"
        )
    device.steps += 1
    instance = app.attach_fragment(
        activity, simple, container, mode="replace", via="reflection"
    )
    device.logcat.log(
        "I", "FragDroid",
        f"reflective switch: {activity.spec.name} -> {simple}",
        device.steps,
    )
    return instance
