"""The sensitive-API monitor — the XPrivacy stand-in.

On a real phone the paper hooks XPrivacy's restriction points so every
sensitive-API invocation is recorded together with the class that made
it.  Our runtime calls :meth:`ApiMonitor.record` whenever an app
component executes an ``InvokeApi`` behaviour, capturing the API name,
the invoking component class, and whether that class is an Activity or a
Fragment — the distinction Table II is built on.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.types import ApiInvocation, ComponentName, InvocationSource


class ApiMonitor:
    """Append-only record of hooked API invocations."""

    def __init__(self) -> None:
        self._invocations: List[ApiInvocation] = []

    def record(self, api: str, component: ComponentName,
               source: InvocationSource, step: int) -> None:
        self._invocations.append(ApiInvocation(api, component, source, step))

    @property
    def invocations(self) -> List[ApiInvocation]:
        return list(self._invocations)

    def distinct(self) -> Set[Tuple[str, ComponentName, InvocationSource]]:
        """Unique (api, component, source) triples."""
        return {(i.api, i.component, i.source) for i in self._invocations}

    def apis_seen(self) -> Set[str]:
        return {i.api for i in self._invocations}

    def by_api(self) -> Dict[str, List[ApiInvocation]]:
        out: Dict[str, List[ApiInvocation]] = {}
        for invocation in self._invocations:
            out.setdefault(invocation.api, []).append(invocation)
        return out

    def clear(self) -> None:
        self._invocations.clear()

    def __len__(self) -> int:
        return len(self._invocations)
