"""Runtime view objects and deterministic screen layout.

The emulator lays every visible widget out in a vertical column on a
1080×1920 screen, giving each a concrete bounding box.  FragDroid's
Case 3 handling ("get all coordinates of the controls that can be
clicked … clicking events will be injected from top to bottom, from left
to right") depends on those coordinates being real and ordered.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.types import WidgetKind

SCREEN_WIDTH = 1080
SCREEN_HEIGHT = 1920
ROW_HEIGHT = 120
TOP_MARGIN = 80
DRAWER_WIDTH = 560
DIALOG_MARGIN_X = 140
DIALOG_TOP = 640

def synthetic_id(owner_class: str, hint: str) -> str:
    """An ID for widgets created in code with no layout resource (dialog
    buttons, popup items, NavigationView rows, dubsmash-style
    programmatic views).  These have no entry in the resource table, so
    Algorithm 3 cannot bind them to a component.  The value is
    deterministic per (owner, hint) so identical UI states produce
    identical widget trees across app restarts — as on a real device,
    where the *content* of a rebuilt screen is stable even though
    ``View.generateViewId()`` values are not."""
    return f"anon:{owner_class.rsplit('.', 1)[-1]}:{hint}"


@dataclass(frozen=True)
class Rect:
    left: int
    top: int
    right: int
    bottom: int

    def contains(self, x: int, y: int) -> bool:
        return self.left <= x < self.right and self.top <= y < self.bottom

    @property
    def center(self) -> Tuple[int, int]:
        return ((self.left + self.right) // 2, (self.top + self.bottom) // 2)


@dataclass
class RuntimeWidget:
    """A widget as it exists on screen.

    ``owner`` is the ground-truth owning component class (used by the
    monitor and the test suite); automation tools must not read it —
    they identify ownership through the resource dependency, as the
    paper does.
    """

    widget_id: str
    kind: WidgetKind
    text: str
    owner_class: str
    owner_is_fragment: bool
    resource_value: Optional[int] = None
    bounds: Rect = field(default_factory=lambda: Rect(0, 0, 0, 0))
    clickable: bool = True
    layer: str = "content"  # content | drawer | dialog | popup
    checked: bool = False
    entered_text: str = ""

    @property
    def accepts_text(self) -> bool:
        return self.kind.accepts_text

    def __str__(self) -> str:
        return f"{self.kind.value}[{self.widget_id}]"


def layout_column(widgets: List[RuntimeWidget], left: int, width: int,
                  top: int = TOP_MARGIN) -> None:
    """Assign vertical-stack bounds to a list of widgets, in order."""
    y = top
    for widget in widgets:
        widget.bounds = Rect(left, y, left + width, y + ROW_HEIGHT - 8)
        y += ROW_HEIGHT


def layout_content(widgets: List[RuntimeWidget]) -> None:
    layout_column(widgets, left=0, width=SCREEN_WIDTH)


def layout_drawer(widgets: List[RuntimeWidget]) -> None:
    layout_column(widgets, left=0, width=DRAWER_WIDTH)


def layout_dialog(widgets: List[RuntimeWidget]) -> None:
    layout_column(
        widgets,
        left=DIALOG_MARGIN_X,
        width=SCREEN_WIDTH - 2 * DIALOG_MARGIN_X,
        top=DIALOG_TOP,
    )


def dialog_bounds(n_widgets: int) -> Rect:
    """The modal window's own rectangle; taps outside it are 'blank
    space' and dismiss the overlay (paper Case 3)."""
    height = max(1, n_widgets) * ROW_HEIGHT + 40
    return Rect(DIALOG_MARGIN_X - 20, DIALOG_TOP - 20,
                SCREEN_WIDTH - DIALOG_MARGIN_X + 20, DIALOG_TOP + height)


def widget_at(widgets: List[RuntimeWidget], x: int, y: int) -> Optional[RuntimeWidget]:
    """Topmost widget containing the point (later layers drawn on top)."""
    for widget in reversed(widgets):
        if widget.bounds.contains(x, y):
            return widget
    return None
