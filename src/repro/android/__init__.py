"""Android UI runtime emulator.

This is the substitute for the paper's customized Android phone: it
installs :class:`~repro.apk.package.ApkPackage` apps, runs Activity and
Fragment lifecycles with real FragmentManager/FragmentTransaction
semantics, resolves Intents against the manifest, lays widgets out with
deterministic coordinates, models navigation drawers, dialogs, popup
menus and force-closes, and hooks every sensitive-API invocation
(the XPrivacy role).

Automation code interacts with the device only through launch / click /
type / swipe / back and the widget-tree dump — the same observation
channel an instrumented phone gives FragDroid.
"""

from repro.android.api_monitor import ApiMonitor
from repro.android.device import Device
from repro.android.intent import Intent
from repro.android.logcat import Logcat, LogEntry
from repro.android.reflection import reflective_fragment_switch
from repro.android.views import Rect, RuntimeWidget

__all__ = [
    "ApiMonitor",
    "Device",
    "Intent",
    "LogEntry",
    "Logcat",
    "Rect",
    "RuntimeWidget",
    "reflective_fragment_switch",
]
