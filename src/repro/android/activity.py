"""Runtime Activity instances: lifecycle, view tree, overlays, drawer.

An ActivityInstance owns its content widgets, a FragmentManager for
managed fragments, a list of *directly attached* (unmanaged) fragments,
modal overlays (dialogs and popup menus) and the navigation-drawer
state.  :meth:`visible_widgets` is the single source of truth for what
is on screen, with the modality rules the paper's Case 3 relies on:
dialogs/popups eclipse everything; an open drawer eclipses the content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.apk.appspec import ActivitySpec, WidgetSpec
from repro.android.fragment import FragmentInstance
from repro.android.fragment_manager import FragmentManager
from repro.android.intent import Intent
from repro.android.views import (
    RuntimeWidget,
    dialog_bounds,
    layout_content,
    layout_dialog,
    layout_drawer,
    Rect,
    synthetic_id,
)
from repro.types import ComponentName, InvocationSource, WidgetKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.android.app_runtime import AppProcess


@dataclass
class Overlay:
    """A modal dialog or popup menu."""

    kind: str  # "dialog" | "popup"
    message: str
    widgets: List[RuntimeWidget] = field(default_factory=list)
    window: Rect = field(default_factory=lambda: dialog_bounds(1))


class ActivityInstance:
    """One live Activity on the stack."""

    def __init__(self, spec: ActivitySpec, app: "AppProcess",
                 intent: Intent) -> None:
        self.spec = spec
        self.app = app
        self.intent = intent
        self.class_name = app.spec.qualify(spec.name)
        self.fragment_manager = FragmentManager(self)
        self.direct_fragments: List[FragmentInstance] = []
        self.overlays: List[Overlay] = []
        self.drawer_open = False
        self.finished = False
        self.content_widgets: List[RuntimeWidget] = []
        self.drawer_widgets: List[RuntimeWidget] = []

    @property
    def component(self) -> ComponentName:
        return ComponentName(self.app.package, self.class_name)

    # -- lifecycle ----------------------------------------------------------

    def on_create(self) -> bool:
        """Run onCreate.  Returns False when the Activity finishes
        immediately (missing Intent extras under a forced start)."""
        if self.spec.requires_intent_extras and self.intent.is_empty:
            self.app.device.logcat.log(
                "W", "ActivityManager",
                f"{self.class_name} finished in onCreate: missing extras",
                self.app.device.steps,
            )
            self.finished = True
            return False
        device = self.app.device
        for api in self.spec.api_calls:
            device.api_monitor.record(
                api, self.component, InvocationSource.ACTIVITY, device.steps
            )
        self._build_content_widgets()
        if self.spec.initial_fragment:
            self.app.attach_fragment(
                self, self.spec.initial_fragment,
                self.spec.container_id or "fragment_container",
                mode="replace", via="transaction",
            )
        for container, fragment_name in self.spec.panes:
            self.app.attach_fragment(
                self, fragment_name, container,
                mode="add", via="transaction",
            )
        return True

    def _build_content_widgets(self) -> None:
        resources = self.app.resources
        drawer = self.spec.drawer
        drawer_item_ids = {w.id for w in drawer.items} if drawer else set()
        for widget_spec in self.spec.all_widgets():
            rid = resources.get("id", widget_spec.id)
            is_drawer_item = widget_spec.id in drawer_item_ids
            nav_view_row = (is_drawer_item and drawer is not None
                            and drawer.navigation_view)
            widget = RuntimeWidget(
                # NavigationView renders menu rows internally: they carry
                # runtime IDs, not the layout resource IDs.
                widget_id=synthetic_id(self.class_name, widget_spec.id)
                if nav_view_row else widget_spec.id,
                kind=widget_spec.kind,
                text=widget_spec.text,
                owner_class=self.class_name,
                owner_is_fragment=False,
                resource_value=None if nav_view_row
                else (rid.value if rid else None),
                clickable=not nav_view_row
                and (widget_spec.on_click is not None
                     or widget_spec.kind.clickable),
            )
            if is_drawer_item:
                widget.layer = "drawer"
                self.drawer_widgets.append(widget)
            else:
                self.content_widgets.append(widget)
            if not nav_view_row:
                self.app.register_handler(widget, widget_spec, owner=self)

    # -- fragments ------------------------------------------------------------

    def all_fragments(self) -> List[FragmentInstance]:
        return self.fragment_manager.fragments() + list(self.direct_fragments)

    # -- overlays ----------------------------------------------------------------

    def show_dialog(self, message: str, buttons: List[WidgetSpec],
                    shown_by_class: str, shown_by_fragment: bool) -> Overlay:
        overlay = Overlay(kind="dialog", message=message)
        self._populate_overlay(overlay, buttons, shown_by_class,
                               shown_by_fragment)
        self.overlays.append(overlay)
        return overlay

    def show_popup(self, items: List[WidgetSpec], shown_by_class: str,
                   shown_by_fragment: bool) -> Overlay:
        overlay = Overlay(kind="popup", message="")
        self._populate_overlay(overlay, items, shown_by_class,
                               shown_by_fragment)
        self.overlays.append(overlay)
        return overlay

    def _populate_overlay(self, overlay: Overlay, specs: List[WidgetSpec],
                          owner_class: str, owner_is_fragment: bool) -> None:
        if overlay.kind == "dialog":
            # Every AlertDialog shows its message; a button-less builder
            # still gets the default OK button.
            message_row = RuntimeWidget(
                widget_id=synthetic_id(owner_class, "dialog_message"),
                kind=WidgetKind.TEXT_VIEW,
                text=overlay.message,
                owner_class=owner_class,
                owner_is_fragment=owner_is_fragment,
                clickable=False,
                layer="dialog",
            )
            overlay.widgets.append(message_row)
            if not specs:
                specs = [WidgetSpec(id="dialog_ok", text="OK")]
        for widget_spec in specs:
            widget = RuntimeWidget(
                widget_id=synthetic_id(owner_class, widget_spec.id),
                kind=widget_spec.kind,
                text=widget_spec.text or widget_spec.id,
                owner_class=owner_class,
                owner_is_fragment=owner_is_fragment,
                resource_value=None,
                clickable=True,
                layer=overlay.kind,
            )
            overlay.widgets.append(widget)
            self.app.register_handler(widget, widget_spec, owner=self)
        overlay.window = dialog_bounds(len(overlay.widgets))
        layout_dialog(overlay.widgets)

    def dismiss_top_overlay(self) -> bool:
        if self.overlays:
            self.overlays.pop()
            return True
        return False

    @property
    def top_overlay(self) -> Optional[Overlay]:
        return self.overlays[-1] if self.overlays else None

    # -- screen ----------------------------------------------------------------------

    def visible_widgets(self) -> List[RuntimeWidget]:
        """What is on screen right now, layout refreshed."""
        overlay = self.top_overlay
        if overlay is not None:
            layout_dialog(overlay.widgets)
            return list(overlay.widgets)
        if self.drawer_open:
            layout_drawer(self.drawer_widgets)
            return list(self.drawer_widgets)
        widgets = list(self.content_widgets)
        for fragment in self.all_fragments():
            widgets.extend(fragment.widgets)
        layout_content(widgets)
        return widgets

    def __repr__(self) -> str:
        return f"<Activity {self.spec.name}>"
