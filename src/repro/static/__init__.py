"""Static Information Extraction (paper Sections IV and V).

Everything here consumes only decoded APK artifacts (manifest XML, smali
text, layout XML) — never the behavioural app spec — mirroring the
black-box setting of the paper's static phase.

The extractor is re-exported lazily: it depends on the smali decoder,
which in turn sits below the APK compiler that needs this package's
sensitive-API catalog, so an eager import here would close a cycle.
"""

from repro.static.aftm import AFTM, EdgeKind, Node, NodeKind, Transition
from repro.static.sensitive import (
    SENSITIVE_API_CATALOG,
    SensitiveApi,
    api_for_method,
    method_for_api,
)

__all__ = [
    "AFTM",
    "EdgeKind",
    "Node",
    "NodeKind",
    "SENSITIVE_API_CATALOG",
    "SensitiveApi",
    "StaticCache",
    "StaticInfo",
    "Transition",
    "api_for_method",
    "default_cache_dir",
    "extract_static_info",
    "method_for_api",
]

_LAZY = {
    "StaticInfo": "repro.static.extractor",
    "extract_static_info": "repro.static.extractor",
    "StaticCache": "repro.static.cache",
    "default_cache_dir": "repro.static.cache",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(
        f"module 'repro.static' has no attribute {name!r}"
    )
