"""The Activity & Fragment Transition Model (paper Section IV).

AFTM is the tuple ⟨A, F, E⟩: working Activities, working Fragments, and
the event-driven transitions among them, merged into three basic edge
kinds:

* **E1**: ``A → A`` — between Activities (outer);
* **E2**: ``A → F_i`` — an Activity to one of its own Fragments (inner);
* **E3**: ``F → F_i`` — between Fragments of the same Activity (inner).

The other four of the seven raw transition types are normalised onto
these (Section IV-A): ``F → A_i`` is dropped (it passes through the host
Activity), ``F → A_o`` and ``F → F_o`` are re-rooted at the host Activity,
and ``A → F_o`` splits into E1 + E2.  :meth:`AFTM.add_raw_transition`
implements exactly that merge.

The model is *evolutionary*: the dynamic phase keeps calling
``add_transition``/``mark_visited`` and the explorer re-seeds its UI queue
whenever one of those calls reports a change.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError


class NodeKind(str, enum.Enum):
    """String-valued so nodes sort stably inside ordered dataclasses."""

    ACTIVITY = "activity"
    FRAGMENT = "fragment"


class EdgeKind(str, enum.Enum):
    E1 = "A->A"
    E2 = "A->F"
    E3 = "F->F"


@dataclass(frozen=True, order=True)
class Node:
    """A working Activity or Fragment, identified by its class name."""

    kind: NodeKind
    name: str  # fully-qualified class name

    @property
    def simple_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def __str__(self) -> str:
        prefix = "A" if self.kind is NodeKind.ACTIVITY else "F"
        return f"{prefix}:{self.simple_name}"


def activity_node(name: str) -> Node:
    return Node(NodeKind.ACTIVITY, name)


def fragment_node(name: str) -> Node:
    return Node(NodeKind.FRAGMENT, name)


@dataclass(frozen=True, order=True)
class Transition:
    """One edge of the AFTM.

    ``host`` is the Activity that owns an inner edge (the container for
    E2/E3); it is ``None`` for E1 edges.  ``trigger`` records how the
    transition is exercised: a widget resource-ID for explicit clicks,
    ``"reflection"`` for forced fragment switches, ``"forced-start"`` for
    empty-Intent activity launches, or ``"static"`` when only the static
    phase knows the edge so far.
    """

    src: Node
    dst: Node
    kind: EdgeKind
    host: Optional[str] = None
    trigger: str = "static"

    def __post_init__(self) -> None:
        expected = _classify(self.src, self.dst)
        if expected is not self.kind:
            raise ReproError(
                f"transition {self.src} -> {self.dst} cannot be {self.kind}"
            )
        if self.kind is not EdgeKind.E1 and self.host is None:
            raise ReproError(f"inner edge {self.src} -> {self.dst} needs a host")


def _classify(src: Node, dst: Node) -> EdgeKind:
    if src.kind is NodeKind.ACTIVITY and dst.kind is NodeKind.ACTIVITY:
        return EdgeKind.E1
    if src.kind is NodeKind.ACTIVITY and dst.kind is NodeKind.FRAGMENT:
        return EdgeKind.E2
    if src.kind is NodeKind.FRAGMENT and dst.kind is NodeKind.FRAGMENT:
        return EdgeKind.E3
    raise ReproError(
        f"raw transition {src} -> {dst} must be normalised before insertion"
    )


class AFTM:
    """A mutable finite-state model of one app's UI structure."""

    def __init__(self, package: str, entry: Optional[Node] = None) -> None:
        self.package = package
        self._nodes: Set[Node] = set()
        self._edges: Set[Transition] = set()
        self._out: Dict[Node, List[Transition]] = {}
        self._visited: Set[Node] = set()
        self.entry: Optional[Node] = None
        if entry is not None:
            self.set_entry(entry)

    # -- construction --------------------------------------------------------

    def set_entry(self, node: Node) -> None:
        if node.kind is not NodeKind.ACTIVITY:
            raise ReproError("the entry node A0 must be an Activity")
        self.add_node(node)
        self.entry = node

    def add_node(self, node: Node) -> bool:
        """Returns True when the node is new (triggers queue updates)."""
        if node in self._nodes:
            return False
        self._nodes.add(node)
        self._out.setdefault(node, [])
        return True

    def add_transition(
        self,
        src: Node,
        dst: Node,
        host: Optional[str] = None,
        trigger: str = "static",
    ) -> bool:
        """Insert one of the three basic edges; returns True if new.

        Existing edges are never duplicated even with different triggers —
        but a dynamic trigger *upgrades* a static one, because the paper
        prefers explicit click paths over reflection when both exist
        (Section VI-A, Case 2).
        """
        kind = _classify(src, dst)
        if kind is not EdgeKind.E1 and host is None:
            host = src.name if src.kind is NodeKind.ACTIVITY else None
            if host is None:
                raise ReproError(
                    f"host activity required for inner edge {src} -> {dst}"
                )
        transition = Transition(src, dst, kind, host=host, trigger=trigger)
        self.add_node(src)
        self.add_node(dst)
        existing = self._find_edge(src, dst, host)
        if existing is not None:
            if existing.trigger in ("static", "reflection") and trigger not in (
                "static",
                "reflection",
            ):
                self._remove_edge(existing)
            else:
                return False
        self._edges.add(transition)
        self._out[src].append(transition)
        return True

    def add_raw_transition(
        self,
        src: Node,
        dst: Node,
        src_host: Optional[str] = None,
        dst_host: Optional[str] = None,
        trigger: str = "static",
    ) -> bool:
        """Insert any of the seven raw transition types, applying the
        Section IV-A merge rules.  Returns True if anything changed."""
        changed = False
        if src.kind is NodeKind.FRAGMENT:
            if dst.kind is NodeKind.ACTIVITY:
                if src_host == dst.name:
                    # F -> A_i: implicit through the host; not an edge.
                    return False
                # F -> A_o re-roots at the host activity (A -> A).
                if src_host is None:
                    raise ReproError(f"F->A edge from {src} needs src_host")
                return self.add_transition(
                    activity_node(src_host), dst, trigger=trigger
                )
            # F -> F
            if src_host is not None and dst_host is not None and src_host != dst_host:
                # F -> F_o becomes A -> A_o plus A_o -> F_i.
                changed |= self.add_transition(
                    activity_node(src_host), activity_node(dst_host),
                    trigger=trigger,
                )
                changed |= self.add_transition(
                    activity_node(dst_host), dst, host=dst_host, trigger=trigger
                )
                return changed
            return self.add_transition(src, dst, host=src_host or dst_host,
                                       trigger=trigger)
        # src is an Activity
        if dst.kind is NodeKind.FRAGMENT:
            if dst_host is not None and dst_host != src.name:
                # A -> F_o splits into A -> A_o and A_o -> F_i.
                changed |= self.add_transition(
                    src, activity_node(dst_host), trigger=trigger
                )
                changed |= self.add_transition(
                    activity_node(dst_host), dst, host=dst_host, trigger=trigger
                )
                return changed
            return self.add_transition(src, dst, host=src.name, trigger=trigger)
        return self.add_transition(src, dst, trigger=trigger)

    def _find_edge(self, src: Node, dst: Node,
                   host: Optional[str]) -> Optional[Transition]:
        for edge in self._out.get(src, ()):
            if edge.dst == dst and edge.host == host:
                return edge
        return None

    def _remove_edge(self, edge: Transition) -> None:
        self._edges.discard(edge)
        self._out[edge.src].remove(edge)

    # -- queries ---------------------------------------------------------------

    @property
    def activities(self) -> Set[Node]:
        return {n for n in self._nodes if n.kind is NodeKind.ACTIVITY}

    @property
    def fragments(self) -> Set[Node]:
        return {n for n in self._nodes if n.kind is NodeKind.FRAGMENT}

    @property
    def nodes(self) -> Set[Node]:
        return set(self._nodes)

    @property
    def edges(self) -> Set[Transition]:
        return set(self._edges)

    # The ``nodes``/``edges``/``visited`` properties return defensive set
    # copies — right for callers that mutate the model while looping, but
    # an O(n) allocation per access in hot loops.  The ``iter_*`` views
    # and counts below read the internal sets directly; callers must not
    # mutate the model while consuming them.

    def iter_nodes(self) -> Iterator[Node]:
        """Non-copying view of the node set (unordered)."""
        return iter(self._nodes)

    def iter_edges(self) -> Iterator[Transition]:
        """Non-copying view of the edge set (unordered)."""
        return iter(self._edges)

    def iter_visited(self) -> Iterator[Node]:
        """Non-copying view of the visited set (unordered)."""
        return iter(self._visited)

    def is_visited(self, node: Node) -> bool:
        """Membership probe that skips the ``visited`` copy."""
        return node in self._visited

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    @property
    def visited_count(self) -> int:
        return len(self._visited)

    def edges_of_kind(self, kind: EdgeKind) -> List[Transition]:
        return sorted(e for e in self._edges if e.kind is kind)

    def successors(self, node: Node) -> List[Transition]:
        return list(self._out.get(node, ()))

    def predecessors(self, node: Node) -> List[Transition]:
        return sorted(e for e in self._edges if e.dst == node)

    def node(self, name: str) -> Optional[Node]:
        for candidate in self._nodes:
            if candidate.name == name or candidate.simple_name == name:
                return candidate
        return None

    def host_of(self, fragment: Node) -> Optional[str]:
        """The host Activity of a fragment node, if any edge records it."""
        for edge in self.predecessors(fragment):
            if edge.host is not None:
                return edge.host
        return None

    def isolated_nodes(self) -> Set[Node]:
        """Nodes linked by no edge at all (to be filtered as non-working)."""
        linked: Set[Node] = set()
        for edge in self._edges:
            linked.add(edge.src)
            linked.add(edge.dst)
        isolated = self._nodes - linked
        if self.entry is not None:
            isolated.discard(self.entry)
        return isolated

    def prune_isolated(self) -> Set[Node]:
        """Remove and return isolated nodes (Section IV-B.2)."""
        isolated = self.isolated_nodes()
        for node in isolated:
            self._nodes.discard(node)
            self._out.pop(node, None)
            self._visited.discard(node)
        return isolated

    # -- traversal ---------------------------------------------------------------

    def bfs_order(self, start: Optional[Node] = None) -> List[Node]:
        """Breadth-first node order from the entry (the queue-seeding
        traversal of Section III)."""
        origin = start or self.entry
        if origin is None or origin not in self._nodes:
            return []
        order: List[Node] = [origin]
        seen: Set[Node] = {origin}
        frontier = [origin]
        while frontier:
            next_frontier: List[Node] = []
            for node in frontier:
                for edge in sorted(self._out.get(node, ()),
                                   key=lambda e: e.dst):
                    if edge.dst not in seen:
                        seen.add(edge.dst)
                        order.append(edge.dst)
                        next_frontier.append(edge.dst)
            frontier = next_frontier
        return order

    def path_to(self, target: Node) -> Optional[List[Transition]]:
        """Shortest transition path from the entry to ``target``."""
        if self.entry is None:
            return None
        if target == self.entry:
            return []
        parents: Dict[Node, Transition] = {}
        seen: Set[Node] = {self.entry}
        frontier = [self.entry]
        while frontier:
            next_frontier: List[Node] = []
            for node in frontier:
                for edge in sorted(self._out.get(node, ()),
                                   key=lambda e: e.dst):
                    if edge.dst in seen:
                        continue
                    seen.add(edge.dst)
                    parents[edge.dst] = edge
                    if edge.dst == target:
                        return self._unwind(parents, target)
                    next_frontier.append(edge.dst)
            frontier = next_frontier
        return None

    @staticmethod
    def _unwind(parents: Dict[Node, Transition],
                target: Node) -> List[Transition]:
        path: List[Transition] = []
        node = target
        while node in parents:
            edge = parents[node]
            path.append(edge)
            node = edge.src
        path.reverse()
        return path

    def reachable_from_entry(self) -> Set[Node]:
        return set(self.bfs_order())

    # -- visit bookkeeping ---------------------------------------------------------

    def mark_visited(self, node: Node) -> bool:
        """Record a dynamic visit; returns True on first visit."""
        self.add_node(node)
        if node in self._visited:
            return False
        self._visited.add(node)
        return True

    @property
    def visited(self) -> Set[Node]:
        return set(self._visited)

    def unvisited(self) -> Set[Node]:
        return self._nodes - self._visited

    def unvisited_activities(self) -> List[Node]:
        return sorted(n for n in self.unvisited()
                      if n.kind is NodeKind.ACTIVITY)

    def is_complete(self) -> bool:
        """Termination condition: every node visited (Section VI-C)."""
        return not self.unvisited()

    # -- presentation ---------------------------------------------------------------

    def summary(self) -> str:
        return (
            f"AFTM[{self.package}] "
            f"|A|={len(self.activities)} |F|={len(self.fragments)} "
            f"E1={len(self.edges_of_kind(EdgeKind.E1))} "
            f"E2={len(self.edges_of_kind(EdgeKind.E2))} "
            f"E3={len(self.edges_of_kind(EdgeKind.E3))} "
            f"visited={len(self._visited)}/{len(self._nodes)}"
        )

    def to_dot(self) -> str:
        """Graphviz rendering, for documentation and the quickstart."""
        lines = [f'digraph "{self.package}" {{']
        for node in sorted(self._nodes):
            shape = "box" if node.kind is NodeKind.ACTIVITY else "ellipse"
            style = ', style=filled, fillcolor="#d0e0ff"' \
                if node in self._visited else ""
            lines.append(
                f'    "{node.simple_name}" [shape={shape}{style}];'
            )
        for edge in sorted(self._edges):
            label = edge.kind.name
            lines.append(
                f'    "{edge.src.simple_name}" -> "{edge.dst.simple_name}"'
                f' [label="{label}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(sorted(self._nodes))
