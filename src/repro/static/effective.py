"""Effective Activities and Fragments (paper Section IV-B.2).

* Activities come from the manifest (which already excludes intermediate
  classes); isolated ones — linked by no edge — are pruned later, once
  the transition edges are known.
* Fragments are found by scanning every decoded class's ``.super`` chain:
  direct subclasses of ``android.app.Fragment`` /
  ``android.support.v4.app.Fragment`` first, then derived classes of those
  subclasses, iterated to a fixed point.  A fragment is *effective* only
  if some effective Activity (or another effective Fragment) contains a
  statement of it.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.apk.appspec import FRAGMENT_BASE, SUPPORT_FRAGMENT_BASE
from repro.smali.apktool import DecodedApk

FRAGMENT_BASES = (FRAGMENT_BASE, SUPPORT_FRAGMENT_BASE)


def declared_activities(decoded: DecodedApk) -> List[str]:
    """Activity class names from the manifest, in declaration order."""
    return [decl.name for decl in decoded.manifest.activities]


def super_chain(decoded: DecodedApk, class_name: str) -> List[str]:
    """The superclass chain of ``class_name``, ending at the first class
    not present in the APK (framework classes terminate the walk)."""
    chain: List[str] = []
    current = class_name
    seen: Set[str] = set()
    while decoded.has_class(current) and current not in seen:
        seen.add(current)
        parent = decoded.class_by_name(current).super_name
        chain.append(parent)
        current = parent
    return chain


def fragment_subclasses(decoded: DecodedApk) -> List[str]:
    """All classes whose inheritance chain reaches a Fragment base.

    Implements the two-pass scan of Section IV-B.2: collect direct
    subclasses of the Fragment classes, then iterate to pick up derived
    classes of those subclasses.
    """
    fragments: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for cls in decoded.classes:
            if cls.name in fragments or cls.is_inner:
                continue
            if cls.super_name in FRAGMENT_BASES or cls.super_name in fragments:
                fragments.add(cls.name)
                changed = True
    return sorted(fragments)


def referencing_classes(decoded: DecodedApk,
                        target: str) -> List[str]:
    """Outer classes (including via their inner classes) that contain a
    statement of ``target``.

    Served from the decoded APK's reverse-reference index: one pass over
    the class list answers every target, instead of rescanning all
    classes per query inside the effective-fragment fixed point.
    """
    return decoded.referencing_owners(target)


def effective_fragments(decoded: DecodedApk,
                        activities: List[str]) -> List[str]:
    """Filter fragment subclasses down to the effective set.

    A fragment is effective when a statement of it appears in an
    effective Activity, in another effective Fragment, or in one of their
    inner (listener) classes.  Fragments that only serve as superclasses
    of other fragments ("intermediate" bases) drop out here unless they
    are themselves instantiated.
    """
    candidates = fragment_subclasses(decoded)
    activity_set = set(activities)
    effective: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for fragment in candidates:
            if fragment in effective:
                continue
            for referrer in referencing_classes(decoded, fragment):
                is_instantiation = decoded.instantiates(referrer, fragment)
                if not is_instantiation:
                    continue
                if referrer in activity_set or referrer in effective:
                    effective.add(fragment)
                    changed = True
                    break
    return sorted(effective)


def _has_instantiation(decoded: DecodedApk, referrer: str,
                       fragment: str) -> bool:
    """True when ``referrer`` (or an inner class of it) actually creates
    the fragment — ``new F()``, ``F.newInstance()`` or ``instanceof`` —
    rather than merely extending it.  Answered from the decoded APK's
    per-unit instantiation index."""
    return decoded.instantiates(referrer, fragment)


def fragment_hosts(decoded: DecodedApk, activities: List[str],
                   fragments: List[str]) -> Dict[str, List[str]]:
    """For each effective fragment, the Activities that instantiate it
    (directly or through their inner classes or hosted fragments)."""
    hosts: Dict[str, List[str]] = {fragment: [] for fragment in fragments}
    for fragment in fragments:
        for activity in activities:
            if _has_instantiation(decoded, activity, fragment):
                hosts[fragment].append(activity)
    # Fragments instantiated only from other fragments inherit those
    # fragments' hosts (the transaction still targets the host activity).
    changed = True
    while changed:
        changed = False
        for fragment in fragments:
            if hosts[fragment]:
                continue
            for other in fragments:
                if other == fragment or not hosts[other]:
                    continue
                if _has_instantiation(decoded, other, fragment):
                    hosts[fragment] = list(hosts[other])
                    changed = True
                    break
    return hosts
