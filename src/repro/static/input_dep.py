"""Input dependency (paper Section V-C).

FragDroid "introduces a new input interface which is a file containing
resource-IDs of all input widgets (like EditText, CheckBox, and so on)".
Analysts fill correct values in advance; the driver uses those values
with preference during tests.  We reproduce both halves: the generated
input-file template (all input widgets discovered statically) and the
analyst-filled value store consulted by the UI driver.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.smali.apktool import DecodedApk
from repro.types import WidgetKind

INPUT_WIDGET_KINDS = (WidgetKind.EDIT_TEXT, WidgetKind.CHECK_BOX,
                      WidgetKind.SPINNER, WidgetKind.SWITCH)

# The fallback the paper criticises: a random-ish string such as "abc"
# makes strict apps (TheWeatherChannel's place search) report an error.
DEFAULT_TEXT = "abc"


@dataclass
class InputDependency:
    """The analyst-facing input file: widget resource-IDs → values."""

    package: str
    values: Dict[str, str] = field(default_factory=dict)
    known_widgets: List[str] = field(default_factory=list)

    def provide(self, widget_id: str, value: str) -> None:
        """Record an analyst-supplied correct value."""
        self.values[widget_id] = value

    def value_for(self, widget_id: str) -> str:
        """Preferred value for an input widget (analyst value or the
        default filler)."""
        return self.values.get(widget_id, DEFAULT_TEXT)

    def has_value(self, widget_id: str) -> bool:
        return widget_id in self.values

    # -- file round trip (the JSON interface of Section III) -----------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "package": self.package,
                "input_widgets": self.known_widgets,
                "values": self.values,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "InputDependency":
        data = json.loads(text)
        dep = cls(package=data["package"])
        dep.known_widgets = list(data.get("input_widgets", []))
        dep.values = dict(data.get("values", {}))
        return dep


def extract_input_dependency(decoded: DecodedApk) -> InputDependency:
    """Build the input-file template from the layouts: every widget whose
    kind accepts input is listed for the analyst to fill."""
    dep = InputDependency(package=decoded.package)
    seen = set()
    for layout in decoded.layouts.values():
        for element in layout.elements:
            if element.kind in INPUT_WIDGET_KINDS and element.widget_id not in seen:
                seen.add(element.widget_id)
                dep.known_widgets.append(element.widget_id)
    dep.known_widgets.sort()
    return dep
