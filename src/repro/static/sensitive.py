"""The sensitive-API catalog (Table II / XPrivacy function list).

The paper selects "common sensitive operation functions defined by
XPrivacy"; its Table II lists 46 APIs across 13 categories.  Each catalog
entry binds the paper's ``category/name`` identifier to the concrete
framework method whose invocation the API monitor hooks (the XPrivacy
equivalent) and whose smali ``invoke-*`` the static scanner recognises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.smali.model import MethodRef


@dataclass(frozen=True)
class SensitiveApi:
    """One hooked API: Table II identifier plus its framework method."""

    name: str  # e.g. "phone/getDeviceId"
    method: MethodRef

    @property
    def category(self) -> str:
        return self.name.split("/", 1)[0]


def _api(name: str, cls: str, method: str,
         params: Tuple[str, ...] = (), ret: str = "void") -> SensitiveApi:
    return SensitiveApi(name, MethodRef(cls, method, params, ret))


# The 46 rows of Table II, in table order.
SENSITIVE_API_CATALOG: Tuple[SensitiveApi, ...] = (
    # Browser
    _api("browser/Downloads", "android.provider.Downloads", "query",
         ("java.lang.String",), "android.database.Cursor"),
    # Identification
    _api("identification//proc", "java.io.File", "readProc",
         ("java.lang.String",), "java.lang.String"),
    _api("identification/getString", "android.provider.Settings$Secure",
         "getString", ("java.lang.String",), "java.lang.String"),
    _api("identification/SERIAL", "android.os.Build", "getSerial",
         (), "java.lang.String"),
    # Internet
    _api("internet/connect", "java.net.Socket", "connect",
         ("java.lang.String",)),
    _api("internet/Connectivity.getActiveNetworkInfo",
         "android.net.ConnectivityManager", "getActiveNetworkInfo",
         (), "android.net.NetworkInfo"),
    _api("internet/Connectivity.getNetworkInfo",
         "android.net.ConnectivityManager", "getNetworkInfo",
         ("int",), "android.net.NetworkInfo"),
    _api("internet/inet", "libcore.io.Posix", "inet",
         (), "java.lang.Object"),
    _api("internet/InetAddress.getAllByName", "java.net.InetAddress",
         "getAllByName", ("java.lang.String",), "java.net.InetAddress[]"),
    _api("internet/InetAddress.getByAddress", "java.net.InetAddress",
         "getByAddress", ("byte[]",), "java.net.InetAddress"),
    _api("internet/InetAddress.getByName", "java.net.InetAddress",
         "getByName", ("java.lang.String",), "java.net.InetAddress"),
    _api("internet/IpPrefix.getAddress", "android.net.IpPrefix",
         "getAddress", (), "java.net.InetAddress"),
    _api("internet/LinkProperties.getLinkAddresses",
         "android.net.LinkProperties", "getLinkAddresses",
         (), "java.util.List"),
    _api("internet/NetworkInfo.getDetailedState", "android.net.NetworkInfo",
         "getDetailedState", (), "android.net.NetworkInfo$DetailedState"),
    _api("internet/NetworkInfo.isConnected", "android.net.NetworkInfo",
         "isConnected", (), "boolean"),
    _api("internet/NetworkInfo.isConnectedOrConnecting",
         "android.net.NetworkInfo", "isConnectedOrConnecting",
         (), "boolean"),
    _api("internet/NetworkInterface.getNetworkInterfaces",
         "java.net.NetworkInterface", "getNetworkInterfaces",
         (), "java.util.Enumeration"),
    _api("internet/WiFi.getConnectionInfo", "android.net.wifi.WifiManager",
         "getConnectionInfo", (), "android.net.wifi.WifiInfo"),
    # IPC
    _api("ipc/Binder", "android.os.Binder", "transact",
         ("int",), "boolean"),
    # Location
    _api("location/getAllProviders", "android.location.LocationManager",
         "getAllProviders", (), "java.util.List"),
    _api("location/getProviders", "android.location.LocationManager",
         "getProviders", ("boolean",), "java.util.List"),
    _api("location/isProviderEnabled", "android.location.LocationManager",
         "isProviderEnabled", ("java.lang.String",), "boolean"),
    _api("location/requestLocationUpdates",
         "android.location.LocationManager", "requestLocationUpdates",
         ("java.lang.String",)),
    # Media
    _api("media/Camera.setPreviewTexture", "android.hardware.Camera",
         "setPreviewTexture", ("android.graphics.SurfaceTexture",)),
    _api("media/Camera.startPreview", "android.hardware.Camera",
         "startPreview", ()),
    # Messages
    _api("messages/MmsProvider", "android.provider.Telephony$Mms", "query",
         ("java.lang.String",), "android.database.Cursor"),
    # Network
    _api("network/NetworkInterface.getInetAddresses",
         "java.net.NetworkInterface", "getInetAddresses",
         (), "java.util.Enumeration"),
    _api("network/WiFi.getConfiguredNetworks", "android.net.wifi.WifiManager",
         "getConfiguredNetworks", (), "java.util.List"),
    # Table II lists WiFi.getConnectionInfo under both "internet" and
    # "network"; XPrivacy hooks it at two restriction points.  We bind the
    # network-category row to the two-arg overload so the two catalog
    # entries stay distinguishable at the invoke level.
    _api("network/WiFi.getConnectionInfo", "android.net.wifi.WifiManager",
         "getConnectionInfo", ("int",), "android.net.wifi.WifiInfo"),
    # Phone
    _api("phone/Configuration.MCC", "android.content.res.Configuration",
         "getMcc", (), "int"),
    _api("phone/Configuration.MNC", "android.content.res.Configuration",
         "getMnc", (), "int"),
    _api("phone/getDeviceId", "android.telephony.TelephonyManager",
         "getDeviceId", (), "java.lang.String"),
    _api("phone/getNetworkCountryIso", "android.telephony.TelephonyManager",
         "getNetworkCountryIso", (), "java.lang.String"),
    _api("phone/getNetworkOperatorName", "android.telephony.TelephonyManager",
         "getNetworkOperatorName", (), "java.lang.String"),
    # Shell
    _api("shell/loadLibrary", "java.lang.System", "loadLibrary",
         ("java.lang.String",)),
    # Storage
    _api("storage/getExternalStorageState", "android.os.Environment",
         "getExternalStorageState", (), "java.lang.String"),
    _api("storage/open", "libcore.io.IoBridge", "open",
         ("java.lang.String", "int"), "java.io.FileDescriptor"),
    _api("storage/sdcard", "android.os.Environment",
         "getExternalStorageDirectory", (), "java.io.File"),
    # System
    _api("system/getInstalledApplications", "android.content.pm.PackageManager",
         "getInstalledApplications", ("int",), "java.util.List"),
    _api("system/getRunningAppProcesses", "android.app.ActivityManager",
         "getRunningAppProcesses", (), "java.util.List"),
    _api("system/queryIntentActivities", "android.content.pm.PackageManager",
         "queryIntentActivities", ("android.content.Intent", "int"),
         "java.util.List"),
    _api("system/queryIntentServices", "android.content.pm.PackageManager",
         "queryIntentServices", ("android.content.Intent", "int"),
         "java.util.List"),
    # View
    _api("view/getUserAgentString", "android.webkit.WebSettings",
         "getUserAgentString", (), "java.lang.String"),
    _api("view/initUserAgentString", "android.webkit.WebSettings",
         "initUserAgentString", ("java.lang.String",)),
    _api("view/loadUrl", "android.webkit.WebView", "loadUrl",
         ("java.lang.String",)),
    _api("view/setUserAgentString", "android.webkit.WebSettings",
         "setUserAgentString", ("java.lang.String",)),
)

assert len(SENSITIVE_API_CATALOG) == 46, "Table II lists exactly 46 APIs"

_BY_NAME: Dict[str, SensitiveApi] = {a.name: a for a in SENSITIVE_API_CATALOG}
_BY_REF: Dict[MethodRef, SensitiveApi] = {
    a.method: a for a in SENSITIVE_API_CATALOG
}
_BY_METHOD: Dict[str, SensitiveApi] = {
    a.method.descriptor(): a for a in SENSITIVE_API_CATALOG
}

CATEGORIES: Tuple[str, ...] = tuple(
    dict.fromkeys(a.category for a in SENSITIVE_API_CATALOG)
)


def method_for_api(name: str) -> MethodRef:
    """The framework method hooked for a Table II API identifier."""
    try:
        return _BY_NAME[name].method
    except KeyError:
        raise KeyError(f"unknown sensitive API: {name!r}") from None


def api_for_method(ref: MethodRef) -> Optional[str]:
    """Reverse lookup: is this invoke target a hooked sensitive API?

    Keyed on the (frozen, hashable) ``MethodRef`` itself so the scanner's
    per-invoke probe never materialises a descriptor string; the
    descriptor-keyed map remains as a fallback for refs built from
    non-canonical type spellings.
    """
    api = _BY_REF.get(ref)
    if api is None:
        api = _BY_METHOD.get(ref.descriptor())
    return api.name if api else None


def is_sensitive_api(name: str) -> bool:
    return name in _BY_NAME
