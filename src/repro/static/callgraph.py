"""Method-level call graph over decoded smali.

Definition 1 situates the AFTM inside "the call graph of the app"; this
module builds that graph explicitly: nodes are declared methods, edges
are ``invoke-*`` instructions.  Two analyses ride on it:

* :func:`reachable_methods` — which declared methods are reachable from
  a component's lifecycle roots (onCreate/onCreateView/onClick);
* :func:`statically_reachable_apis` — which sensitive APIs each
  component can possibly call, an over-approximation the dynamic phase
  refines (statics can't tell which branches execute; dynamics can't
  see unvisited code — the cross-check bench quantifies the gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.smali.apktool import DecodedApk
from repro.smali.model import MethodRef
from repro.static.sensitive import api_for_method

LIFECYCLE_ROOTS = ("onCreate", "onCreateView", "onClick", "onResume",
                   "<init>", "newInstance")


@dataclass(frozen=True)
class MethodNode:
    """A declared method, identified by class and name."""

    cls: str
    name: str

    def __str__(self) -> str:
        return f"{self.cls}->{self.name}"


class CallGraph:
    """The app's method-level call graph."""

    def __init__(self) -> None:
        self._nodes: Set[MethodNode] = set()
        self._edges: Dict[MethodNode, Set[MethodNode]] = {}
        # invokes whose target is not declared in the app (framework /
        # library calls), kept for API matching.
        self._external: Dict[MethodNode, List[MethodRef]] = {}

    @property
    def nodes(self) -> Set[MethodNode]:
        return set(self._nodes)

    def callees(self, node: MethodNode) -> Set[MethodNode]:
        return set(self._edges.get(node, ()))

    def external_calls(self, node: MethodNode) -> List[MethodRef]:
        return list(self._external.get(node, ()))

    def add_node(self, node: MethodNode) -> None:
        self._nodes.add(node)
        self._edges.setdefault(node, set())
        self._external.setdefault(node, [])

    def add_edge(self, src: MethodNode, dst: MethodNode) -> None:
        self.add_node(src)
        self.add_node(dst)
        self._edges[src].add(dst)

    def add_external(self, src: MethodNode, ref: MethodRef) -> None:
        self.add_node(src)
        self._external[src].append(ref)

    def __len__(self) -> int:
        return len(self._nodes)


def build_call_graph(decoded: DecodedApk) -> CallGraph:
    """One pass over every declared method's invokes."""
    graph = CallGraph()
    declared: Set[Tuple[str, str]] = {
        (cls.name, method.name)
        for cls in decoded.classes
        for method in cls.methods
    }
    for cls in decoded.classes:
        for method in cls.methods:
            src = MethodNode(cls.name, method.name)
            graph.add_node(src)
            for ref in method.invokes():
                if (ref.cls, ref.name) in declared:
                    graph.add_edge(src, MethodNode(ref.cls, ref.name))
                else:
                    graph.add_external(src, ref)
    return graph


def component_roots(decoded: DecodedApk, component: str) -> List[MethodNode]:
    """The lifecycle/entry methods of a component, including its inner
    (listener) classes."""
    roots: List[MethodNode] = []
    classes = []
    if decoded.has_class(component):
        classes.append(decoded.class_by_name(component))
    classes.extend(decoded.inner_classes_of(component))
    for cls in classes:
        for method in cls.methods:
            if method.name in LIFECYCLE_ROOTS:
                roots.append(MethodNode(cls.name, method.name))
    return roots


def reachable_methods(graph: CallGraph,
                      roots: List[MethodNode]) -> Set[MethodNode]:
    """BFS closure over declared-method edges."""
    seen: Set[MethodNode] = set()
    frontier = [root for root in roots if root in graph.nodes]
    seen.update(frontier)
    while frontier:
        next_frontier: List[MethodNode] = []
        for node in frontier:
            for callee in graph.callees(node):
                if callee not in seen:
                    seen.add(callee)
                    next_frontier.append(callee)
        frontier = next_frontier
    return seen


def statically_reachable_apis(decoded: DecodedApk,
                              components: List[str]) -> Dict[str, Set[str]]:
    """Per component: the sensitive APIs reachable from its roots.

    Over-approximate by construction — every branch is assumed taken,
    every popup item assumed clicked.  The dynamic phase reports the
    subset that actually fires; the difference is exactly the coverage
    story of Section VII.
    """
    graph = build_call_graph(decoded)
    out: Dict[str, Set[str]] = {}
    for component in components:
        apis: Set[str] = set()
        closure = reachable_methods(graph, component_roots(decoded, component))
        for node in closure:
            for ref in graph.external_calls(node):
                api = api_for_method(ref)
                if api is not None:
                    apis.add(api)
        out[component] = apis
    return out
