"""Resource dependency (paper Algorithm 3).

Matches widget resource-IDs from layout files against the IDs referenced
in component code, producing the AFRM model M = (A, F, RID): for every
widget, the Activity *or* Fragment it belongs to.  The dynamic UI driver
uses this to decide, from the IDs visible on screen, which Activity and
which Fragment the current UI state is (Section V-B: "the listener of the
tab belongs to an Activity, but the list below is implemented in a
Fragment").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.smali.apktool import DecodedApk
from repro.smali.model import SmaliClass


@dataclass(frozen=True)
class ResourceBinding:
    """One row of the AFRM model: a widget and its owning component."""

    widget_id: str
    resource_value: int
    activity: Optional[str]  # exactly one of activity/fragment is set
    fragment: Optional[str]


@dataclass
class ResourceDependency:
    """The complete AFRM model for one app."""

    bindings: List[ResourceBinding] = field(default_factory=list)
    _by_widget: Dict[str, ResourceBinding] = field(default_factory=dict)

    def add(self, binding: ResourceBinding) -> None:
        self.bindings.append(binding)
        self._by_widget.setdefault(binding.widget_id, binding)

    def owner_of(self, widget_id: str) -> Tuple[Optional[str], Optional[str]]:
        """``(activity, fragment)`` owning a widget; ``(None, None)`` for
        widgets created at runtime without a stable resource-ID."""
        binding = self._by_widget.get(widget_id)
        if binding is None:
            return (None, None)
        return (binding.activity, binding.fragment)

    def widgets_of_fragment(self, fragment: str) -> List[str]:
        return [b.widget_id for b in self.bindings if b.fragment == fragment]

    def widgets_of_activity(self, activity: str) -> List[str]:
        return [b.widget_id for b in self.bindings if b.activity == activity]

    def identify_fragments(self, widget_ids: List[str]) -> Set[str]:
        """The Fragments whose widgets appear in the given on-screen IDs —
        the driver's Fragment-identification primitive."""
        found: Set[str] = set()
        for widget_id in widget_ids:
            _, fragment = self.owner_of(widget_id)
            if fragment is not None:
                found.add(fragment)
        return found


def _ids_referenced_by(decoded: DecodedApk, class_name: str) -> Set[int]:
    """All ``const`` operands in a class (plus inners) that are id-type
    resources — ``getAID`` / ``getFID`` of Algorithm 3."""
    values: Set[int] = set()
    classes: List[SmaliClass] = []
    if decoded.has_class(class_name):
        classes.append(decoded.class_by_name(class_name))
    classes.extend(decoded.inner_classes_of(class_name))
    for cls in classes:
        for method in cls.methods:
            for instruction in method.instructions:
                if instruction.opcode == "const":
                    value = instruction.args[-1]
                    if isinstance(value, int):
                        values.add(value)
    return values


def _layouts_referenced_by(decoded: DecodedApk, class_name: str) -> Set[str]:
    """Layout names a component inflates (``setContentView``/``inflate``
    consts that are layout-type resources)."""
    names: Set[str] = set()
    for value in _ids_referenced_by(decoded, class_name):
        try:
            rtype, name = decoded.resources.reverse(value)
        except Exception:
            continue
        if rtype == "layout":
            names.add(name)
    return names


def extract_resource_dependency(
    decoded: DecodedApk,
    activities: List[str],
    fragments: List[str],
) -> ResourceDependency:
    """Algorithm 3, with the same precedence: try Activities first, then
    Fragments; non-interactive widgets never declared in code are ruled
    out by the ``l ∈ a`` layout check."""
    model = ResourceDependency()
    activity_layouts = {a: _layouts_referenced_by(decoded, a) for a in activities}
    fragment_layouts = {f: _layouts_referenced_by(decoded, f) for f in fragments}
    activity_ids = {a: _ids_referenced_by(decoded, a) for a in activities}
    fragment_ids = {f: _ids_referenced_by(decoded, f) for f in fragments}

    for layout_name, layout in sorted(decoded.layouts.items()):
        for widget_id in layout.widget_ids():
            rid = decoded.resources.get("id", widget_id)
            if rid is None:
                continue
            is_find = False
            for activity in activities:
                if (rid.value in activity_ids[activity]
                        and layout_name in activity_layouts[activity]):
                    model.add(ResourceBinding(widget_id, rid.value,
                                              activity, None))
                    is_find = True
                    break
            if is_find:
                continue
            for fragment in fragments:
                if (rid.value in fragment_ids[fragment]
                        and layout_name in fragment_layouts[fragment]):
                    model.add(ResourceBinding(widget_id, rid.value,
                                              None, fragment))
                    is_find = True
                    break
            if is_find:
                continue
            # Layout-membership fallback: a widget that no code declares
            # still belongs to the component that inflates its layout —
            # the "repeatedly appears in both layout and resource files"
            # reading of Section V-B.  Without this, fragments composed
            # purely of passive widgets would be unidentifiable.
            for activity in activities:
                if layout_name in activity_layouts[activity]:
                    model.add(ResourceBinding(widget_id, rid.value,
                                              activity, None))
                    is_find = True
                    break
            if is_find:
                continue
            for fragment in fragments:
                if layout_name in fragment_layouts[fragment]:
                    model.add(ResourceBinding(widget_id, rid.value,
                                              None, fragment))
                    break
    return model
