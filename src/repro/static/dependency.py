"""Activity & Fragment dependency (paper Algorithm 2).

For every Activity, walk the classes it uses — including from its inner
classes like ``ExampleActivity$1`` — and test each used class's
inheritance chain for ``android.app.Fragment`` or
``android.support.v4.app.Fragment``.  The result R = (A, F) lists which
Fragments each Activity depends on; the UI driver consults it in Case 1
to enqueue reflection switches for every dependent Fragment.
"""

from __future__ import annotations

from typing import Dict, List

from repro.smali.apktool import DecodedApk
from repro.static.effective import FRAGMENT_BASES, super_chain


def activity_fragment_dependency(
    decoded: DecodedApk, activities: List[str]
) -> Dict[str, List[str]]:
    """Algorithm 2: map each Activity to the Fragment classes it uses."""
    dependency: Dict[str, List[str]] = {}
    for activity in activities:
        dependent: List[str] = []
        all_classes = []
        if decoded.has_class(activity):
            all_classes.append(decoded.class_by_name(activity))
        all_classes.extend(decoded.inner_classes_of(activity))
        for cls in all_classes:
            for used in cls.referenced_classes():
                if used in dependent:
                    continue
                chain = super_chain(decoded, used)
                terminal = chain[-1] if chain else None
                in_chain = any(base in chain for base in FRAGMENT_BASES)
                direct = used not in dependent and _is_fragment_base_direct(
                    decoded, used
                )
                if in_chain or direct or terminal in FRAGMENT_BASES:
                    dependent.append(used)
        dependency[activity] = sorted(dependent)
    return dependency


def _is_fragment_base_direct(decoded: DecodedApk, class_name: str) -> bool:
    if not decoded.has_class(class_name):
        return False
    return decoded.class_by_name(class_name).super_name in FRAGMENT_BASES


def uses_fragment_manager(decoded: DecodedApk, activity: str) -> bool:
    """Does the Activity (or its inner classes) call
    ``getFragmentManager()`` / ``getSupportFragmentManager()``?

    Case 1 of Section VI-A uses this to decide whether reflection-based
    fragment switches should be enqueued for a newly reached Activity.
    """
    classes = []
    if decoded.has_class(activity):
        classes.append(decoded.class_by_name(activity))
    classes.extend(decoded.inner_classes_of(activity))
    for cls in classes:
        for method in cls.methods:
            for ref in method.invokes():
                if ref.name in ("getFragmentManager",
                                "getSupportFragmentManager"):
                    return True
    return False


def support_library_activity(decoded: DecodedApk, activity: str) -> bool:
    """True when the Activity derives from the support library — the
    reflection template then targets ``getSupportFragmentManager``."""
    chain = super_chain(decoded, activity)
    return any("support" in base for base in chain)
