"""Transition-edge extraction (paper Algorithm 1).

Works on the decompiled Java units (``A0.java`` / ``F0.java``, outer class
merged with its inner listener classes), exactly as the paper describes:

* ``new Intent(ctx, A1.class)`` / ``setClass(..., A1.class)`` → ``A0 → A1``;
* ``new Intent("action")`` / ``setAction("action")`` → resolve the action
  in AndroidManifest.xml and add the edge to the declaring Activity;
* ``new F1()`` / ``F1.newInstance()`` / ``instanceof F1`` → ``A0 → F1``
  when F1 belongs to A0, or ``F0 → F1`` when both belong to one Activity.

Statically invisible navigation — targets routed through
``Class.forName`` on runtime-built strings — produces none of these line
shapes, so those edges are (correctly) missing until the dynamic phase
discovers them.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.smali.apktool import DecodedApk
from repro.smali.javagen import JavaDecompiler
from repro.static.aftm import AFTM, Node, activity_node, fragment_node

# The context argument may itself be a call chain (`getActivity()` from
# fragment code), so it is matched loosely; the target class is the part
# Algorithm 1 cares about.
_RE_INTENT_CLASS = re.compile(
    r"new\s+(?:[\w.]+\.)?Intent\(\s*[^,]+,\s*([\w.$]+)\.class\s*\)"
)
_RE_SET_CLASS = re.compile(
    r"\.setClass\(\s*[^,]+,\s*([\w.$]+)\.class\s*\)"
)
_RE_INTENT_ACTION = re.compile(r'new\s+(?:[\w.]+\.)?Intent\(\s*"([^"]+)"\s*\)')
_RE_SET_ACTION = re.compile(r'\.setAction\(\s*"([^"]+)"\s*\)')
_RE_NEW_FRAGMENT = re.compile(r"new\s+([\w.$]+)\(\s*\)")
_RE_NEW_INSTANCE = re.compile(r"([\w.$]+)\.newInstance\(")
_RE_INSTANCEOF = re.compile(r"instanceof\s+([\w.$]+)")


# A line can only match one of the patterns above if it contains one of
# these substrings: every pattern embeds a literal "new" (``new Intent``,
# ``new F1()``, ``.newInstance``), ".set" (``.setClass``/``.setAction``)
# or "instanceof".  Substring scans are C-speed; the regexes are not.
_PREFILTER = ("new", ".set", "instanceof")


def decompiled_unit(decoded: DecodedApk, decompiler: JavaDecompiler,
                    class_name: str) -> str:
    """The ``.java`` file for a top-level class: itself plus inner classes.

    Memoized per decoded APK (``JavaDecompiler`` is stateless, so the
    text depends only on the class list): activities and fragments that
    share inner classes — and repeated Algorithm 1/2/3 passes over the
    same component — never re-decompile.  The memo is invalidated when
    the class list changes size, mirroring the ``_ClassIndex`` policy.
    """
    size = len(decoded.classes)
    cache = decoded.__dict__.get("_unit_cache")
    if cache is None or cache[0] != size:
        cache = (size, {})
        decoded.__dict__["_unit_cache"] = cache
    units = cache[1]
    unit = units.get(class_name)
    if unit is None:
        outer = decoded.class_by_name(class_name)
        inners = decoded.inner_classes_of(class_name)
        unit = decompiler.decompile_unit(outer, inners)
        units[class_name] = unit
    return unit


def build_aftm(
    decoded: DecodedApk,
    activities: List[str],
    fragments: List[str],
    hosts: Dict[str, List[str]],
) -> AFTM:
    """Run Algorithm 1 over every Activity and Fragment unit."""
    aftm = AFTM(decoded.package)
    launcher = decoded.manifest.launcher_activity
    if launcher is not None and launcher.name in activities:
        aftm.set_entry(activity_node(launcher.name))
    decompiler = JavaDecompiler()
    activity_set = set(activities)
    fragment_set = set(fragments)

    for activity in activities:
        if not decoded.has_class(activity):
            continue
        unit = decompiled_unit(decoded, decompiler, activity)
        _edges_from_activity(
            aftm, decoded, activity, unit, activity_set, fragment_set
        )
    for fragment in fragments:
        if not decoded.has_class(fragment):
            continue
        unit = decompiled_unit(decoded, decompiler, fragment)
        _edges_from_fragment(
            aftm, decoded, fragment, unit, fragment_set, activity_set, hosts
        )
    # Isolated nodes are not "working" components (Section IV-B.2).
    aftm.prune_isolated()
    return aftm


# -- function GetEdgeAtoA_or_AtoF -------------------------------------------------

def _edges_from_activity(
    aftm: AFTM,
    decoded: DecodedApk,
    activity: str,
    unit: str,
    activities: Set[str],
    fragments: Set[str],
) -> None:
    package = decoded.package
    for line in unit.splitlines():
        if not _may_match(line):
            continue
        has_intentish = "Intent" in line or ".set" in line
        if has_intentish:
            for match in _iter_matches((_RE_INTENT_CLASS, _RE_SET_CLASS), line):
                target = _qualify(match, package)
                if target in activities and target != activity:
                    aftm.add_transition(
                        activity_node(activity), activity_node(target)
                    )
            for match in _iter_matches((_RE_INTENT_ACTION, _RE_SET_ACTION), line):
                for decl in decoded.manifest.resolve_action(match):
                    if decl.name in activities and decl.name != activity:
                        aftm.add_transition(
                            activity_node(activity), activity_node(decl.name)
                        )
        for match in _fragment_statements(line, package, fragments):
            aftm.add_transition(
                activity_node(activity), fragment_node(match),
                host=activity,
            )


# -- function GetEdgeFtoF ----------------------------------------------------------

def _edges_from_fragment(
    aftm: AFTM,
    decoded: DecodedApk,
    fragment: str,
    unit: str,
    fragments: Set[str],
    activities: Set[str],
    hosts: Dict[str, List[str]],
) -> None:
    src_hosts = set(hosts.get(fragment, ()))
    package = _package_of(fragment)

    def _add_host_edges(target: str) -> None:
        # The Section IV-A merge: F -> A_o becomes A_host -> A_o.
        if target in activities:
            for host in sorted(src_hosts):
                if host != target:
                    aftm.add_transition(
                        activity_node(host), activity_node(target)
                    )

    # One split, two passes: intent edges first, then fragment edges —
    # preserving the historical per-pass match (and edge append) order.
    lines = unit.splitlines()
    for line in lines:
        if "Intent" not in line and ".set" not in line:
            continue
        for match in _iter_matches((_RE_INTENT_CLASS, _RE_SET_CLASS), line):
            _add_host_edges(_qualify(match, package))
        for match in _iter_matches((_RE_INTENT_ACTION, _RE_SET_ACTION), line):
            for decl in decoded.manifest.resolve_action(match):
                _add_host_edges(decl.name)
    for line in lines:
        for target in _fragment_statements(line, _package_of(fragment), fragments):
            if target == fragment:
                continue
            shared = src_hosts & set(hosts.get(target, ()))
            # The paper requires F0, F1 ∈ one Activity.  When the target's
            # host set is empty it is hosted *through* F0, so F0's host
            # carries over.
            if not hosts.get(target) and src_hosts:
                shared = src_hosts
            for host in sorted(shared):
                aftm.add_transition(
                    fragment_node(fragment), fragment_node(target), host=host
                )


# -- helpers -------------------------------------------------------------------------

def _may_match(line: str) -> bool:
    """Cheap substring prefilter: False means no pattern can match."""
    return "new" in line or ".set" in line or "instanceof" in line


def _iter_matches(patterns: Tuple[re.Pattern, ...], line: str) -> Iterable[str]:
    for pattern in patterns:
        for match in pattern.finditer(line):
            yield match.group(1)


def _fragment_statements(line: str, package: str,
                         fragments: Set[str]) -> Iterable[str]:
    if "new" not in line and "instanceof" not in line:
        return
    for match in _RE_NEW_FRAGMENT.finditer(line):
        name = _qualify(match.group(1), package)
        if name in fragments:
            yield name
    for match in _RE_NEW_INSTANCE.finditer(line):
        name = _qualify(match.group(1), package)
        if name in fragments:
            yield name
    for match in _RE_INSTANCEOF.finditer(line):
        name = _qualify(match.group(1), package)
        if name in fragments:
            yield name


def _qualify(name: str, package: str) -> str:
    return name if "." in name else f"{package}.{name}"


def _package_of(class_name: str) -> str:
    return class_name.rsplit(".", 1)[0]
