"""Content-addressed cache for the static phase.

``extract_static_info`` is a pure function of the APK's text artifacts:
decode → Algorithms 1–3 → dependency files, nothing else.  At market
scale (the 217-app usage study, repeated evaluation sweeps) the same
package bytes are re-analyzed over and over, so the sweep pays the full
decode + analysis cost every run.  This module memoizes the whole phase
behind :meth:`~repro.apk.package.ApkPackage.digest` — a SHA-256 of the
canonical serialized artifacts — with two tiers:

* an **in-memory LRU** of serialized models (bounded, per-process), and
* an optional **on-disk JSON store** (one ``<digest>.json`` per entry,
  default ``~/.cache/fragdroid``, override via config/CLI
  ``--static-cache`` or ``FRAGDROID_CACHE_DIR``) shared across
  processes and runs.

A hit skips decode and Algorithms 1–3 entirely and rebuilds a fresh
:class:`~repro.static.extractor.StaticInfo` from the serialized form —
fresh, because the dynamic phase mutates ``info.aftm`` in place, so
cached state must never be shared between runs.  Rehydrated models
carry ``decoded=None`` (the existing deserialization contract); packed
APKs are never cached (they fail before producing a model).  Stored
entries strip analyst input values, which are re-applied per lookup, so
one cache serves runs with different input files.

Writes are atomic (temp file + ``os.replace``), so concurrent sweep
workers sharing one directory never observe torn entries; a corrupted
or truncated entry reads as a miss.  Hit/miss/store tallies persist
best-effort in ``<dir>/stats.json`` for ``repro cache stats``.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.static.aftm import AFTM, Node, NodeKind
from repro.static.extractor import StaticInfo
from repro.static.input_dep import InputDependency
from repro.static.resource_dep import ResourceBinding, ResourceDependency

#: Bump whenever the serialized shape below changes; entries written by
#: other schema versions read as misses instead of mis-deserializing.
CACHE_SCHEMA = 1

_STATS_FILE = "stats.json"


def default_cache_dir() -> pathlib.Path:
    """``$FRAGDROID_CACHE_DIR`` or ``~/.cache/fragdroid``."""
    env = os.environ.get("FRAGDROID_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "fragdroid"


# ---------------------------------------------------------------------------
# StaticInfo <-> plain dict
# ---------------------------------------------------------------------------

def _node_to_list(node: Node) -> List[str]:
    return [node.kind.value, node.name]


def _node_from_list(data: List[str]) -> Node:
    return Node(NodeKind(data[0]), data[1])


def _aftm_to_dict(aftm: AFTM) -> Dict:
    return {
        "package": aftm.package,
        "entry": _node_to_list(aftm.entry) if aftm.entry else None,
        "nodes": [_node_to_list(n) for n in sorted(aftm.iter_nodes())],
        "edges": [
            [_node_to_list(e.src), _node_to_list(e.dst), e.host, e.trigger]
            for e in sorted(aftm.iter_edges())
        ],
        "visited": [_node_to_list(n) for n in sorted(aftm.iter_visited())],
    }


def _aftm_from_dict(data: Dict) -> AFTM:
    aftm = AFTM(data["package"])
    if data.get("entry"):
        aftm.set_entry(_node_from_list(data["entry"]))
    for node in data.get("nodes", ()):
        aftm.add_node(_node_from_list(node))
    for src, dst, host, trigger in data.get("edges", ()):
        aftm.add_transition(_node_from_list(src), _node_from_list(dst),
                            host=host, trigger=trigger)
    for node in data.get("visited", ()):
        aftm.mark_visited(_node_from_list(node))
    return aftm


def static_info_to_dict(info: StaticInfo) -> Dict:
    """Serialize everything but ``decoded`` and the analyst values.

    Input values are a per-run overlay (``input_dep.provide``), not a
    property of the APK bytes, so the stored template keeps only the
    discovered widgets; lookups re-apply the caller's values.
    """
    return {
        "package": info.package,
        "aftm": _aftm_to_dict(info.aftm),
        "activities": list(info.activities),
        "fragments": list(info.fragments),
        "fragment_hosts": {k: list(v)
                           for k, v in info.fragment_hosts.items()},
        "dependency": {k: list(v) for k, v in info.dependency.items()},
        "resource_dep": [
            [b.widget_id, b.resource_value, b.activity, b.fragment]
            for b in info.resource_dep.bindings
        ],
        "input_widgets": list(info.input_dep.known_widgets),
        "uses_manager": dict(info.uses_manager),
        "support_library": dict(info.support_library),
        "static_api_map": {k: list(v)
                           for k, v in info.static_api_map.items()},
        "view_components_json": info.view_components_json,
    }


def static_info_from_dict(data: Dict) -> StaticInfo:
    """Rebuild a fresh, independently mutable model; ``decoded`` stays
    ``None`` exactly like any deserialized :class:`StaticInfo`."""
    resource_dep = ResourceDependency()
    for widget_id, value, activity, fragment in data.get("resource_dep", ()):
        resource_dep.add(ResourceBinding(widget_id, value, activity,
                                         fragment))
    input_dep = InputDependency(package=data["package"])
    input_dep.known_widgets = list(data.get("input_widgets", ()))
    return StaticInfo(
        package=data["package"],
        aftm=_aftm_from_dict(data["aftm"]),
        activities=list(data.get("activities", ())),
        fragments=list(data.get("fragments", ())),
        fragment_hosts={k: list(v)
                        for k, v in data.get("fragment_hosts", {}).items()},
        dependency={k: list(v)
                    for k, v in data.get("dependency", {}).items()},
        resource_dep=resource_dep,
        input_dep=input_dep,
        uses_manager=dict(data.get("uses_manager", {})),
        support_library=dict(data.get("support_library", {})),
        static_api_map={k: list(v)
                        for k, v in data.get("static_api_map", {}).items()},
        view_components_json=data.get("view_components_json", "[]"),
        decoded=None,
    )


# ---------------------------------------------------------------------------
# The two-tier store
# ---------------------------------------------------------------------------

class StaticCache:
    """In-memory LRU over serialized models, plus an optional disk tier.

    Thread-safe; one instance can serve a whole thread-pool sweep.  For
    a process-pool sweep each worker opens its own instance on the same
    directory — the disk tier is the shared medium and every write is
    atomic.
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 memory_entries: int = 64) -> None:
        if memory_entries < 1:
            raise ValueError(
                f"memory_entries must be >= 1, got {memory_entries!r}"
            )
        self.directory = (pathlib.Path(directory)
                          if directory is not None else None)
        self.memory_entries = memory_entries
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Dict]" = OrderedDict()
        self._notes: Dict[str, Dict[str, str]] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- lookup / store ----------------------------------------------------

    def lookup(self, digest: str) -> Optional[StaticInfo]:
        """The rehydrated model for a digest, or ``None`` on a miss."""
        data = self._memory_get(digest)
        if data is None and self.directory is not None:
            data = self._disk_get(digest)
            if data is not None:
                self._memory_put(digest, data)
        if data is None:
            with self._lock:
                self.misses += 1
            self._bump_disk_stats("misses")
            return None
        with self._lock:
            self.hits += 1
        self._bump_disk_stats("hits")
        return static_info_from_dict(data)

    def store(self, digest: str, info: StaticInfo) -> None:
        """Serialize a freshly extracted model under its digest."""
        data = static_info_to_dict(info)
        self._memory_put(digest, data)
        if self.directory is not None:
            self._disk_put(digest, data)
        with self._lock:
            self.stores += 1
        self._bump_disk_stats("stores")

    # -- digest-keyed notes ------------------------------------------------

    def load_notes(self, kind: str) -> Dict[str, str]:
        """All notes of one kind, keyed by APK digest.

        Notes are small derived facts (e.g. the usage study's
        packed/fragments/plain classification) that are cheaper than a
        full :class:`StaticInfo` but just as content-addressed.  One
        batch load serves a whole sweep: callers look digests up in the
        returned dict and tally the outcome via :meth:`count_lookups`.
        """
        with self._lock:
            memory = dict(self._notes.get(kind, {}))
        if self.directory is None:
            return memory
        try:
            payload = json.loads(
                (self.directory / f"notes-{kind}.json").read_text(
                    encoding="utf-8")
            )
            if payload.get("schema") != CACHE_SCHEMA:
                return memory
            disk = payload.get("notes", {})
            if not isinstance(disk, dict):
                return memory
            merged = {str(k): str(v) for k, v in disk.items()}
            merged.update(memory)
            return merged
        except (OSError, ValueError, AttributeError):
            return memory

    def store_notes(self, kind: str, notes: Dict[str, str]) -> None:
        """Merge freshly computed notes into the store (one write)."""
        if not notes:
            return
        with self._lock:
            self._notes.setdefault(kind, {}).update(notes)
            self.stores += len(notes)
        self._bump_disk_stats("stores", len(notes))
        if self.directory is None:
            return
        merged = self.load_notes(kind)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = json.dumps(
                {"schema": CACHE_SCHEMA, "kind": kind, "notes": merged},
                sort_keys=True,
            )
            self._atomic_write(self.directory / f"notes-{kind}.json", payload)
        except OSError:
            pass  # a read-only or full disk degrades to memory-only

    def count_lookups(self, hits: int = 0, misses: int = 0) -> None:
        """Tally batched lookups (note-style lookups bypass lookup())."""
        with self._lock:
            self.hits += hits
            self.misses += misses
        if hits:
            self._bump_disk_stats("hits", hits)
        if misses:
            self._bump_disk_stats("misses", misses)

    # -- memory tier -------------------------------------------------------

    def _memory_get(self, digest: str) -> Optional[Dict]:
        with self._lock:
            data = self._memory.get(digest)
            if data is not None:
                self._memory.move_to_end(digest)
            return data

    def _memory_put(self, digest: str, data: Dict) -> None:
        with self._lock:
            self._memory[digest] = data
            self._memory.move_to_end(digest)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)

    # -- disk tier ---------------------------------------------------------

    def _entry_path(self, digest: str) -> pathlib.Path:
        return self.directory / f"{digest}.json"

    def _disk_get(self, digest: str) -> Optional[Dict]:
        try:
            payload = json.loads(
                self._entry_path(digest).read_text(encoding="utf-8")
            )
            if payload.get("schema") != CACHE_SCHEMA:
                return None
            data = payload["static_info"]
            # Round-trip the hydration now: a structurally corrupt entry
            # must read as a miss, not explode mid-sweep.
            static_info_from_dict(data)
            return data
        except (OSError, ValueError, KeyError, TypeError, IndexError):
            return None

    def _disk_put(self, digest: str, data: Dict) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = json.dumps(
                {"schema": CACHE_SCHEMA, "digest": digest,
                 "package": data["package"], "static_info": data},
                sort_keys=True,
            )
            self._atomic_write(self._entry_path(digest), payload)
        except OSError:
            pass  # a read-only or full disk degrades to memory-only

    def _atomic_write(self, path: pathlib.Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- stats / maintenance ----------------------------------------------

    def _bump_disk_stats(self, key: str, count: int = 1) -> None:
        """Best-effort persistent tallies for ``repro cache stats``."""
        if self.directory is None:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / _STATS_FILE
            try:
                stats = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                stats = {}
            stats[key] = int(stats.get(key, 0)) + count
            self._atomic_write(path, json.dumps(stats, sort_keys=True))
        except OSError:
            pass

    def stats(self) -> Dict[str, object]:
        """Hits/misses/stores plus entry counts and disk footprint."""
        with self._lock:
            lookups = self.hits + self.misses
            stats: Dict[str, object] = {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "memory_entries": len(self._memory),
            }
        stats["directory"] = (str(self.directory)
                              if self.directory is not None else None)
        stats["disk_entries"] = 0
        stats["disk_bytes"] = 0
        if self.directory is not None and self.directory.is_dir():
            entries = 0
            size = 0
            for path in self.directory.glob("*.json"):
                if path.name == _STATS_FILE:
                    continue
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
            stats["disk_entries"] = entries
            stats["disk_bytes"] = size
            persisted = self.persistent_stats(self.directory)
            for key in ("hits", "misses", "stores"):
                stats[f"lifetime_{key}"] = persisted.get(key, 0)
            lifetime_lookups = (persisted.get("hits", 0)
                                + persisted.get("misses", 0))
            stats["lifetime_hit_rate"] = (
                persisted.get("hits", 0) / lifetime_lookups
                if lifetime_lookups else 0.0
            )
        return stats

    @staticmethod
    def persistent_stats(directory: os.PathLike) -> Dict[str, int]:
        """The tallies accumulated in a directory across processes."""
        try:
            raw = json.loads(
                (pathlib.Path(directory) / _STATS_FILE).read_text(
                    encoding="utf-8")
            )
            return {k: int(v) for k, v in raw.items()}
        except (OSError, ValueError, TypeError):
            return {}

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns entries removed."""
        with self._lock:
            removed = len(self._memory)
            self._memory.clear()
            self._notes.clear()
        if self.directory is not None and self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    continue
                if path.name != _STATS_FILE:
                    removed += 1
        return removed
