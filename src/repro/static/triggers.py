"""Static trigger bindings: which widget statically fires which edge.

The AFTM (Algorithm 1) records *that* ``A0 -> A1`` exists, but its
static edges all carry ``trigger="static"`` — the widget that fires the
transition is only learned dynamically.  The attribution engine
(``repro.obs.attribution``) needs that widget *statically*: when a
target was never reached, the first question is "which control would
have taken us there, and what happened to it?".

This pass recovers the binding from the decompiled units the same way
Algorithm 1 recovers edges.  A unit contains lines such as::

    this.findViewById(2130771971).setOnClickListener(new com.app.MainActivity$1(this));

pairing a view (resolved to its resource name through the reverse
resource table) with a listener inner class, and the listener's
``onClick`` body contains the navigation statement
(``new Intent(this$0, A1.class)``, ``F1.newInstance()``, ``new F1()``)
naming the edge's destination.  Joining the two yields
``(source component, destination) -> widget``.

Listeners that are *never* paired with a ``findViewById`` — popup-menu
items, drawer adapters, dialog buttons wired through framework
callbacks — surface as **unbound** bindings (``widget=None``).  That
absence is itself evidence: the trigger exists but lives somewhere the
Case-3 click sweep dismisses rather than operates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.apk.resources import ResourceError
from repro.smali.apktool import DecodedApk
from repro.smali.javagen import JavaDecompiler
from repro.static.edges import (
    _RE_INTENT_CLASS,
    _RE_NEW_FRAGMENT,
    _RE_NEW_INSTANCE,
    _RE_SET_CLASS,
    decompiled_unit,
)

# ``this.findViewById(2130771971).setOnClickListener(new com.app.A$1(this))``
_RE_LISTENER_BINDING = re.compile(
    r"findViewById\((\d+)\)\.setOnClickListener\(new\s+([\w.$]+)\("
)
# Any listener construction, bound or not (popup items, adapters, ...).
_RE_LISTENER_NEW = re.compile(r"new\s+([\w.$]+\$\d+)\(")


@dataclass(frozen=True)
class TriggerBinding:
    """One statically recovered trigger: a widget (or an unbound
    listener) on ``source`` whose handler navigates to ``targets``."""

    source: str                 # component whose unit declares the listener
    widget: Optional[str]       # resource name; None = unbound listener
    listener: str               # listener class (inner-class name)
    targets: Tuple[str, ...]    # destination components named in the handler

    @property
    def bound(self) -> bool:
        return self.widget is not None


class TriggerMap:
    """All of one app's trigger bindings, queryable per edge."""

    def __init__(self, bindings: List[TriggerBinding]) -> None:
        # Unbound listeners (widget None) sort after bound widgets.
        self.bindings = sorted(
            bindings,
            key=lambda b: (b.source, b.widget is None, b.widget or "",
                           b.listener))
        self._by_edge: Dict[Tuple[str, str], List[TriggerBinding]] = {}
        for binding in self.bindings:
            for target in binding.targets:
                self._by_edge.setdefault(
                    (binding.source, target), []).append(binding)

    def bindings_for(self, source: str, target: str) -> List[TriggerBinding]:
        return list(self._by_edge.get((source, target), ()))

    def widget_for(self, source: str, target: str) -> Optional[str]:
        """The first bound widget that fires ``source -> target``."""
        for binding in self.bindings_for(source, target):
            if binding.widget is not None:
                return binding.widget
        return None

    def unbound_for(self, source: str, target: str) -> Optional[TriggerBinding]:
        """An unbound listener for the edge, if the only trigger hides
        behind a framework callback (popup item, adapter row)."""
        for binding in self.bindings_for(source, target):
            if binding.widget is None:
                return binding
        return None


def extract_trigger_map(decoded: DecodedApk,
                        activities: List[str],
                        fragments: List[str]) -> TriggerMap:
    """Scan every component unit for listener bindings (see module doc).

    Deterministic: components are scanned in sorted order and bindings
    sort by ``(source, widget, listener)``.
    """
    activity_set = set(activities)
    fragment_set = set(fragments)
    decompiler = JavaDecompiler()
    bindings: List[TriggerBinding] = []
    for component in sorted(activity_set | fragment_set):
        bindings.extend(_component_bindings(
            decoded, decompiler, component, activity_set, fragment_set))
    return TriggerMap(bindings)


def _component_bindings(decoded: DecodedApk, decompiler: JavaDecompiler,
                        component: str, activity_set: Set[str],
                        fragment_set: Set[str]) -> List[TriggerBinding]:
    if not decoded.has_class(component):
        return []
    unit = decompiled_unit(decoded, decompiler, component)
    return _scan_unit(decoded, component, unit, activity_set, fragment_set)


class LazyTriggerMap:
    """A :class:`TriggerMap` that scans one source's unit on first
    query instead of the whole app up front.

    The attribution classifier only ever asks about the blocking edge
    of each witness path — a handful of sources per app — so eager
    extraction over every component is mostly wasted work on the
    benchmark-pinned path.  Per-source results are identical to the
    eager map's (same scanner, same inputs)."""

    def __init__(self, decoded: DecodedApk, activities: List[str],
                 fragments: List[str]) -> None:
        self._decoded = decoded
        self._decompiler = JavaDecompiler()
        self._activity_set = set(activities)
        self._fragment_set = set(fragments)
        self._by_source: Dict[str, TriggerMap] = {}

    def _source_map(self, source: str) -> TriggerMap:
        cached = self._by_source.get(source)
        if cached is None:
            cached = TriggerMap(_component_bindings(
                self._decoded, self._decompiler, source,
                self._activity_set, self._fragment_set))
            self._by_source[source] = cached
        return cached

    def bindings_for(self, source: str, target: str) -> List[TriggerBinding]:
        return self._source_map(source).bindings_for(source, target)

    def widget_for(self, source: str, target: str) -> Optional[str]:
        return self._source_map(source).widget_for(source, target)

    def unbound_for(self, source: str,
                    target: str) -> Optional[TriggerBinding]:
        return self._source_map(source).unbound_for(source, target)


def trigger_map_of(info) -> Optional[TriggerMap]:
    """The trigger map of a :class:`~repro.static.extractor.StaticInfo`,
    or ``None`` when the decoded APK is gone (cache hits deserialize
    with ``decoded=None``; attribution then degrades gracefully).

    Memoized on the info object — explaining the same result twice
    (regress then explain, the serve endpoint, a diff) extracts once.
    """
    decoded = getattr(info, "decoded", None)
    if decoded is None:
        return None
    key = (len(info.activities), len(info.fragments))
    cached = info.__dict__.get("_trigger_map_cache")
    if cached is not None and cached[0] == key:
        return cached[1]
    trigger_map = LazyTriggerMap(decoded, list(info.activities),
                                 list(info.fragments))
    info.__dict__["_trigger_map_cache"] = (key, trigger_map)
    return trigger_map


# -- unit scanning -----------------------------------------------------------

def _scan_unit(decoded: DecodedApk, component: str, unit: str,
               activities: Set[str], fragments: Set[str],
               ) -> List[TriggerBinding]:
    package = component.rsplit(".", 1)[0]
    sections = _class_sections(unit)
    # Pass 1: explicit findViewById -> listener pairings.
    bound_listeners: Set[str] = set()
    bindings: List[TriggerBinding] = []
    for match in _RE_LISTENER_BINDING.finditer(unit):
        resid, listener = int(match.group(1)), match.group(2)
        bound_listeners.add(listener)
        widget = _widget_name(decoded, resid)
        targets = _targets_in(
            sections.get(_section_key(listener), ""),
            package, activities, fragments, component)
        if targets:
            bindings.append(TriggerBinding(
                source=component, widget=widget,
                listener=listener, targets=targets))
    # Pass 2: listeners constructed but never bound to a view — their
    # navigation targets are reachable only through framework callbacks
    # the click sweep does not drive (popup items, adapter rows).
    seen_unbound: Set[str] = set()
    for match in _RE_LISTENER_NEW.finditer(unit):
        listener = match.group(1)
        if listener in bound_listeners or listener in seen_unbound:
            continue
        seen_unbound.add(listener)
        targets = _targets_in(
            sections.get(_section_key(listener), ""),
            package, activities, fragments, component)
        if targets:
            bindings.append(TriggerBinding(
                source=component, widget=None,
                listener=listener, targets=targets))
    # Pass 3: listener classes that are never even *constructed* in the
    # unit — popup-menu items and adapter rows instantiated inside the
    # framework.  The inner-class section exists (and navigates), but no
    # ``new`` names it.
    simple = component.rsplit(".", 1)[-1]
    for key, section in sections.items():
        if not key.startswith(f"{simple}_"):
            continue
        suffix = key[len(simple) + 1:]
        if not suffix.isdigit():
            continue
        listener = f"{component}${suffix}"
        if listener in bound_listeners or listener in seen_unbound:
            continue
        targets = _targets_in(section, package, activities, fragments,
                              component)
        if targets:
            seen_unbound.add(listener)
            bindings.append(TriggerBinding(
                source=component, widget=None,
                listener=listener, targets=targets))
    return bindings


def _class_sections(unit: str) -> Dict[str, str]:
    """Split a decompiled unit into per-class text sections, keyed by
    the rendered simple class name (``$`` rendered as ``_``)."""
    sections: Dict[str, str] = {}
    name: Optional[str] = None
    lines: List[str] = []
    for line in unit.splitlines():
        if line.startswith("public class "):
            if name is not None:
                sections[name] = "\n".join(lines)
            name = line.split()[2]
            lines = []
        else:
            lines.append(line)
    if name is not None:
        sections[name] = "\n".join(lines)
    return sections


def _section_key(listener: str) -> str:
    return listener.rsplit(".", 1)[-1].replace("$", "_")


def _widget_name(decoded: DecodedApk, resid: int) -> str:
    try:
        rtype, name = decoded.resources.reverse(resid)
    except ResourceError:
        return f"0x{resid:08x}"
    return name


def _targets_in(section: str, package: str, activities: Set[str],
                fragments: Set[str], component: str) -> Tuple[str, ...]:
    targets: List[str] = []
    for line in section.splitlines():
        if "new" not in line and ".set" not in line:
            continue
        for pattern in (_RE_INTENT_CLASS, _RE_SET_CLASS,
                        _RE_NEW_INSTANCE, _RE_NEW_FRAGMENT):
            for match in pattern.finditer(line):
                name = match.group(1)
                qualified = name if "." in name else f"{package}.{name}"
                if qualified == component:
                    continue
                if qualified in activities or qualified in fragments:
                    if qualified not in targets:
                        targets.append(qualified)
    return tuple(sorted(targets))
