"""The Static Information Extraction phase (paper Section III, left half).

Given an APK, produce everything the evolutionary phase needs:

* the initial AFTM (Algorithm 1 over effective components),
* the Activity & Fragment dependency (Algorithm 2),
* the resource dependency / AFRM (Algorithm 3),
* the input-dependency file template (Section V-C),
* the view-components JSON ("a JSON file that records all view
  components and the locations they appear", Section III),
* per-Activity FragmentManager usage and support-library flags (consumed
  by Case 1 and by the reflection template),
* a static sensitive-API scan (which component code contains which
  hooked invokes) used for cross-checking the dynamic results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.static.cache import StaticCache

from repro.apk.package import ApkPackage
from repro.obs import NULL_TRACER, Tracer
from repro.smali.apktool import Apktool, DecodedApk
from repro.static.aftm import AFTM
from repro.static.dependency import (
    activity_fragment_dependency,
    support_library_activity,
    uses_fragment_manager,
)
from repro.static.edges import build_aftm
from repro.static.effective import (
    declared_activities,
    effective_fragments,
    fragment_hosts,
    fragment_subclasses,
)
from repro.static.input_dep import InputDependency, extract_input_dependency
from repro.static.resource_dep import ResourceDependency, extract_resource_dependency
from repro.static.sensitive import api_for_method


@dataclass
class StaticInfo:
    """Everything the static phase hands to the dynamic phase."""

    package: str
    aftm: AFTM
    activities: List[str]
    fragments: List[str]
    fragment_hosts: Dict[str, List[str]]
    dependency: Dict[str, List[str]]  # Algorithm 2: activity -> fragments
    resource_dep: ResourceDependency
    input_dep: InputDependency
    uses_manager: Dict[str, bool]
    support_library: Dict[str, bool]
    static_api_map: Dict[str, List[str]]  # component class -> api names
    view_components_json: str
    # The decoded APK is carried for downstream static passes (call
    # graph, lint); absent when the model was deserialized from JSON.
    decoded: Optional[DecodedApk] = field(repr=False, default=None)

    @property
    def activity_count(self) -> int:
        return len(self.activities)

    @property
    def fragment_count(self) -> int:
        return len(self.fragments)


def extract_static_info(apk: ApkPackage,
                        input_values: Optional[Dict[str, str]] = None,
                        tracer: Optional[Tracer] = None,
                        cache: Optional["StaticCache"] = None) -> StaticInfo:
    """Run the full static pipeline on one APK.

    ``input_values`` plays the analyst's role for the input-dependency
    file: widget resource-IDs mapped to correct values, filled in advance
    (Section V-C).  ``tracer`` records one span per phase (decode,
    Algorithms 1–3, input dependency, sensitive scan).

    ``cache`` memoizes the whole phase by the APK's content digest
    (``repro.static.cache``): a hit skips decode and Algorithms 1–3 and
    returns a fresh model with ``decoded=None``; packed APKs are never
    cached.  ``static.cache.{hit,miss,store}`` counters land on the
    tracer.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    digest = None
    if cache is not None and not apk.packed:
        digest = apk.digest()
        with tracer.span("static.cache.lookup", app=apk.package):
            info = cache.lookup(digest)
        if info is not None:
            tracer.inc("static.cache.hit")
            if input_values:
                for widget_id, value in input_values.items():
                    info.input_dep.provide(widget_id, value)
            return info
        tracer.inc("static.cache.miss")
    with tracer.span("static.extract", app=apk.package) as root:
        with tracer.span("static.decode", app=apk.package):
            decoded = Apktool().decode(apk)

        # Algorithm 1: effective components and the initial AFTM.
        with tracer.span("static.algorithm1.aftm", app=apk.package) as span:
            activities = declared_activities(decoded)
            fragments = effective_fragments(decoded, activities)
            hosts = fragment_hosts(decoded, activities, fragments)
            aftm = build_aftm(decoded, activities, fragments, hosts)
            span.set_attribute("activities", len(aftm.activities))
            span.set_attribute("fragments", len(aftm.fragments))

        # Effective = working: only components surviving the isolation prune.
        effective_activity_names = sorted(n.name for n in aftm.activities)
        effective_fragment_names = sorted(n.name for n in aftm.fragments)

        # Algorithm 2: the Activity & Fragment dependency.
        with tracer.span("static.algorithm2.dependency", app=apk.package):
            dependency = activity_fragment_dependency(
                decoded, effective_activity_names
            )

        # Algorithm 3: the resource dependency / AFRM.
        with tracer.span("static.algorithm3.resource_dep", app=apk.package):
            resource_dep = extract_resource_dependency(
                decoded, effective_activity_names, effective_fragment_names
            )

        with tracer.span("static.input_dep", app=apk.package):
            input_dep = extract_input_dependency(decoded)
            if input_values:
                for widget_id, value in input_values.items():
                    input_dep.provide(widget_id, value)

        uses_manager = {
            activity: uses_fragment_manager(decoded, activity)
            for activity in effective_activity_names
        }
        support = {
            activity: support_library_activity(decoded, activity)
            for activity in effective_activity_names
        }
        with tracer.span("static.sensitive_scan", app=apk.package):
            static_api_map = _scan_sensitive_invokes(decoded)
        root.set_attribute("activities", len(effective_activity_names))
        root.set_attribute("fragments", len(effective_fragment_names))
        info = StaticInfo(
            package=apk.package,
            aftm=aftm,
            activities=effective_activity_names,
            fragments=effective_fragment_names,
            fragment_hosts=hosts,
            dependency=dependency,
            resource_dep=resource_dep,
            input_dep=input_dep,
            uses_manager=uses_manager,
            support_library=support,
            static_api_map=static_api_map,
            view_components_json=_view_components_json(decoded),
            decoded=decoded,
        )
    if cache is not None and digest is not None:
        # Serialized immediately, so later in-place AFTM mutation by the
        # dynamic phase never leaks into the stored entry; analyst
        # values are stripped by the serializer and re-applied per hit.
        cache.store(digest, info)
        tracer.inc("static.cache.store")
    return info


def _scan_sensitive_invokes(decoded: DecodedApk) -> Dict[str, List[str]]:
    """Which component code (outer class) contains which hooked invokes."""
    api_map: Dict[str, List[str]] = {}
    for cls in decoded.classes:
        owner = cls.outer_name or cls.name
        for method in cls.methods:
            for ref in method.invokes():
                api = api_for_method(ref)
                if api is None:
                    continue
                api_map.setdefault(owner, [])
                if api not in api_map[owner]:
                    api_map[owner].append(api)
    return {owner: sorted(apis) for owner, apis in sorted(api_map.items())}


def _view_components_json(decoded: DecodedApk) -> str:
    """The Section III JSON: every view component and where it appears."""
    records = []
    for layout_name, layout in sorted(decoded.layouts.items()):
        for element in layout.elements:
            rid = decoded.resources.get("id", element.widget_id)
            records.append(
                {
                    "widget": element.widget_id,
                    "kind": element.kind.name,
                    "layout": layout_name,
                    "resource_id": rid.hex if rid else None,
                    "clickable": element.clickable,
                }
            )
    return json.dumps(records, indent=2, sort_keys=True)
