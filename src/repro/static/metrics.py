"""AFTM graph metrics.

The AFTM "could be treated as a map for dynamic analysis" (Section IV);
these metrics quantify that map: size, edge-kind mix, connectivity, and
how much of it the dynamic phase actually walked.  Built on networkx so
downstream users can export the graph for their own analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import networkx as nx

from repro.static.aftm import AFTM, EdgeKind, NodeKind


def to_networkx(aftm: AFTM) -> "nx.DiGraph":
    """Export the AFTM as a networkx digraph (nodes keyed by class
    name, with ``kind``/``visited`` attributes; edges carry ``kind``,
    ``host`` and ``trigger``)."""
    graph = nx.DiGraph(package=aftm.package)
    visited = {n.name for n in aftm.iter_visited()}
    for node in aftm.iter_nodes():
        graph.add_node(node.name, kind=node.kind.value,
                       visited=node.name in visited)
    for edge in aftm.iter_edges():
        graph.add_edge(edge.src.name, edge.dst.name,
                       kind=edge.kind.name, host=edge.host,
                       trigger=edge.trigger)
    return graph


@dataclass(frozen=True)
class AftmMetrics:
    """Summary statistics of one model."""

    activities: int
    fragments: int
    e1: int
    e2: int
    e3: int
    reachable_ratio: float     # nodes reachable from A0 / all nodes
    visited_ratio: float       # visited nodes / all nodes
    diameter: int              # longest shortest path among reachable nodes
    max_out_degree: int
    dynamic_edge_ratio: float  # edges with a concrete click trigger

    @property
    def edges(self) -> int:
        return self.e1 + self.e2 + self.e3

    def as_dict(self) -> Dict[str, float]:
        return {
            "activities": self.activities,
            "fragments": self.fragments,
            "e1": self.e1, "e2": self.e2, "e3": self.e3,
            "reachable_ratio": self.reachable_ratio,
            "visited_ratio": self.visited_ratio,
            "diameter": self.diameter,
            "max_out_degree": self.max_out_degree,
            "dynamic_edge_ratio": self.dynamic_edge_ratio,
        }


def compute_metrics(aftm: AFTM) -> AftmMetrics:
    graph = to_networkx(aftm)
    total = len(aftm)
    reachable = aftm.reachable_from_entry()
    diameter = 0
    if aftm.entry is not None and reachable:
        lengths = nx.single_source_shortest_path_length(
            graph, aftm.entry.name
        )
        diameter = max(lengths.values(), default=0)
    edge_count = aftm.edge_count
    dynamic = sum(
        1 for e in aftm.iter_edges()
        if e.trigger not in ("static", "reflection", "forced-start")
    )
    return AftmMetrics(
        activities=len(aftm.activities),
        fragments=len(aftm.fragments),
        e1=len(aftm.edges_of_kind(EdgeKind.E1)),
        e2=len(aftm.edges_of_kind(EdgeKind.E2)),
        e3=len(aftm.edges_of_kind(EdgeKind.E3)),
        reachable_ratio=len(reachable) / total if total else 0.0,
        visited_ratio=aftm.visited_count / total if total else 0.0,
        diameter=diameter,
        max_out_degree=max(
            (len(aftm.successors(n)) for n in aftm.iter_nodes()), default=0
        ),
        dynamic_edge_ratio=dynamic / edge_count if edge_count else 0.0,
    )
