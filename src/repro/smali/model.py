"""Dalvik class model: the in-memory form of smali code.

A deliberately small but real subset of the dalvik instruction set — the
instructions our APK compiler emits and the static analyzer interprets:
constants, object construction, and the four ``invoke-*`` flavours.
Class names are stored in Java dotted form and converted to/from JVM
descriptors (``Lcom/foo/Bar;``) at the text boundary.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.errors import SmaliError

# The opcodes the toolchain understands.
OPCODES = frozenset(
    {
        "const-string",
        "const-class",
        "const",
        "const/4",
        "new-instance",
        "invoke-direct",
        "invoke-virtual",
        "invoke-static",
        "invoke-super",
        "invoke-interface",
        "move-result-object",
        "move-result",
        "check-cast",
        "instance-of",
        "iget-object",
        "iput-object",
        "return-void",
        "return-object",
        "nop",
        # Control flow: conditional/unconditional branches and their
        # label pseudo-instruction (printed as ``:name``).
        "if-eqz",
        "if-nez",
        "goto",
        "label",
    }
)

INVOKE_OPCODES = frozenset(
    {"invoke-direct", "invoke-virtual", "invoke-static", "invoke-super",
     "invoke-interface"}
)

_PRIMITIVES = {
    "void": "V",
    "boolean": "Z",
    "byte": "B",
    "short": "S",
    "char": "C",
    "int": "I",
    "long": "J",
    "float": "F",
    "double": "D",
}
_PRIMITIVES_REV = {v: k for k, v in _PRIMITIVES.items()}


@lru_cache(maxsize=None)
def jvm_type(java: str) -> str:
    """``com.foo.Bar`` → ``Lcom/foo/Bar;`` (primitives map to letters)."""
    if java.endswith("[]"):
        return "[" + jvm_type(java[:-2])
    if java in _PRIMITIVES:
        return _PRIMITIVES[java]
    return "L" + java.replace(".", "/") + ";"


@lru_cache(maxsize=None)
def java_name(descriptor: str) -> str:
    """``Lcom/foo/Bar;`` → ``com.foo.Bar``.

    Cached: the same handful of type descriptors recur across every
    class in a corpus, and ``lru_cache`` never caches the SmaliError
    raised for malformed descriptors.
    """
    if descriptor.startswith("["):
        return java_name(descriptor[1:]) + "[]"
    if descriptor in _PRIMITIVES_REV:
        return _PRIMITIVES_REV[descriptor]
    if descriptor.startswith("L") and descriptor.endswith(";"):
        return sys.intern(descriptor[1:-1].replace("/", "."))
    raise SmaliError(f"bad type descriptor: {descriptor!r}")


@dataclass(frozen=True)
class MethodRef:
    """A method reference ``Lcls;->name(params)ret`` (java dotted names)."""

    cls: str
    name: str
    params: Tuple[str, ...] = ()
    ret: str = "void"

    def descriptor(self) -> str:
        # Memoized per instance: refs are frozen, so the rendered text can
        # never go stale, and the printer asks for it on every emit.
        cached = self.__dict__.get("_descriptor")
        if cached is None:
            params = "".join(jvm_type(p) for p in self.params)
            cached = f"{jvm_type(self.cls)}->{self.name}({params}){jvm_type(self.ret)}"
            object.__setattr__(self, "_descriptor", cached)
        return cached

    @classmethod
    def parse(cls, text: str) -> "MethodRef":
        # Interning table: the same textual ref appears across thousands of
        # classes in a corpus, so parse each spelling once and share the
        # frozen instance.  Errors are never cached — a malformed ref
        # raises the same SmaliError every time.
        if cls is MethodRef:
            cached = _PARSED_REFS.get(text)
            if cached is not None:
                return cached
        try:
            owner, rest = text.split("->", 1)
            name, rest = rest.split("(", 1)
            params_str, ret = rest.split(")", 1)
        except ValueError:
            raise SmaliError(f"bad method reference: {text!r}") from None
        ref = cls(
            cls=java_name(owner),
            name=sys.intern(name),
            params=tuple(java_name(d) for d in _split_descriptors(params_str)),
            ret=java_name(ret),
        )
        if cls is MethodRef:
            _PARSED_REFS[text] = ref
        return ref

    def __str__(self) -> str:
        return self.descriptor()


# MethodRef.parse interning table (text spelling → shared parsed ref).
_PARSED_REFS: Dict[str, "MethodRef"] = {}


def _split_descriptors(text: str) -> List[str]:
    out: List[str] = []
    index = 0
    while index < len(text):
        start = index
        while text[index] == "[":
            index += 1
        if text[index] == "L":
            index = text.index(";", index) + 1
        else:
            index += 1
        out.append(text[start:index])
    return out


@dataclass(frozen=True)
class Instruction:
    """One dalvik instruction.

    ``args`` holds operands in a normalized form:

    * registers as ``"v0"``/``"p1"`` strings,
    * string literals as-is (the printer adds quotes),
    * class operands as java dotted names,
    * integer literals as ``int``,
    * a single :class:`MethodRef` for invokes.
    """

    opcode: str
    args: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise SmaliError(f"unknown opcode: {self.opcode!r}")

    @property
    def is_invoke(self) -> bool:
        return self.opcode in INVOKE_OPCODES

    @property
    def method(self) -> MethodRef:
        if not self.is_invoke:
            raise SmaliError(f"{self.opcode} has no method reference")
        ref = self.args[-1]
        assert isinstance(ref, MethodRef)
        return ref

    @property
    def registers(self) -> Tuple[str, ...]:
        """Register operands (for invokes: the argument register list)."""
        return tuple(a for a in self.args if isinstance(a, str) and _is_reg(a))


def _is_reg(token: str) -> bool:
    return (
        len(token) >= 2
        and token[0] in "vp"
        and token[1:].isdigit()
    )


@dataclass
class SmaliField:
    name: str
    type: str  # java dotted
    static: bool = False


@dataclass
class SmaliMethod:
    """A method body. ``params`` excludes the implicit ``this``."""

    name: str
    params: List[str] = field(default_factory=list)
    ret: str = "void"
    static: bool = False
    registers: int = 8
    instructions: List[Instruction] = field(default_factory=list)

    def emit(self, opcode: str, *args: object) -> Instruction:
        # Intern emitted instructions: the compiler emits the same
        # (opcode, operands) shapes across every app in a corpus, and
        # Instruction is frozen, so sharing one object is safe and lets
        # the printer memoize rendered text per instance.
        key = (opcode, args)
        try:
            instruction = _EMITTED.get(key)
        except TypeError:  # unhashable operand — build a one-off
            instruction = Instruction(opcode, args)
        else:
            if instruction is None:
                instruction = Instruction(opcode, args)
                _EMITTED[key] = instruction
        self.instructions.append(instruction)
        return instruction

    def invokes(self) -> List[MethodRef]:
        return [i.method for i in self.instructions if i.is_invoke]


# SmaliMethod.emit interning table ((opcode, args) → shared instruction).
_EMITTED: Dict[Tuple[str, Tuple[object, ...]], Instruction] = {}


@dataclass
class SmaliClass:
    """One class as decoded from (or compiled to) a ``.smali`` file."""

    name: str  # java dotted
    super_name: str = "java.lang.Object"
    interfaces: List[str] = field(default_factory=list)
    fields: List[SmaliField] = field(default_factory=list)
    methods: List[SmaliMethod] = field(default_factory=list)
    source: Optional[str] = None

    @property
    def simple_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    @property
    def file_name(self) -> str:
        """The path apktool would write, e.g. ``com/foo/Bar.smali``."""
        return self.name.replace(".", "/") + ".smali"

    @property
    def is_inner(self) -> bool:
        return "$" in self.simple_name

    @property
    def outer_name(self) -> Optional[str]:
        """The enclosing class for inner classes (``Foo$1`` → ``Foo``)."""
        if not self.is_inner:
            return None
        package, _, simple = self.name.rpartition(".")
        outer = simple.split("$", 1)[0]
        return f"{package}.{outer}" if package else outer

    def method(self, name: str) -> Optional[SmaliMethod]:
        for method in self.methods:
            if method.name == name:
                return method
        return None

    def add_method(self, method: SmaliMethod) -> SmaliMethod:
        self.methods.append(method)
        return method

    def referenced_classes(self) -> List[str]:
        """Every class this class mentions (supers, news, invoke targets,
        const-class operands, field types) — the ``getUsedClass`` of
        Algorithm 2."""
        seen: List[str] = []

        def _add(name: str) -> None:
            if name not in seen and name != self.name:
                seen.append(name)

        _add(self.super_name)
        for iface in self.interfaces:
            _add(iface)
        for fld in self.fields:
            _add(fld.type)
        for method in self.methods:
            for instruction in method.instructions:
                if instruction.opcode in ("new-instance", "const-class",
                                          "check-cast", "instance-of"):
                    operand = instruction.args[-1]
                    if isinstance(operand, str):
                        _add(operand)
                elif instruction.is_invoke:
                    _add(instruction.method.cls)
        return seen
