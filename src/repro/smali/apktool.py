"""Apktool equivalent: decode an :class:`ApkPackage` into analyzable form.

Mirrors the paper's first static step (Section IV-B.1): "We use Apktool to
decompile the target APK file to get the smali code and its
AndroidManifest.xml file."  Decoding parses the package's *text* artifacts
— it does not shortcut through any in-memory structures — and fails on
packed/encrypted apps exactly like the real tool does on packers (the apps
the paper had to rule out before selecting its 15 targets).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.apk.layout import Layout
from repro.apk.manifest import Manifest
from repro.apk.package import ApkPackage
from repro.apk.resources import ResourceTable
from repro.errors import PackedApkError
from repro.smali.assemble import parse_class
from repro.smali.model import SmaliClass


class _ClassIndex:
    """Name lookup structures for one ``classes`` list snapshot.

    Algorithms 1–3 call ``class_by_name``/``has_class``/
    ``inner_classes_of`` for every component, inner class and resource
    reference; linear scans made the static phase O(components ×
    classes).  The index keeps one name→occurrences dict (O(1) exact
    lookup, first occurrence wins exactly like the old scan) and one
    sorted name list (O(log n) prefix ranges for ``Name$...``
    companions, yielded back in original list order)."""

    __slots__ = ("size", "by_name", "sorted_names")

    def __init__(self, classes: List[SmaliClass]) -> None:
        self.size = len(classes)
        by_name: Dict[str, List[Tuple[int, SmaliClass]]] = {}
        for position, cls in enumerate(classes):
            by_name.setdefault(cls.name, []).append((position, cls))
        self.by_name = by_name
        self.sorted_names = sorted(by_name)

    def prefix_matches(self, prefix: str) -> List[SmaliClass]:
        names = self.sorted_names
        start = bisect_left(names, prefix)
        matches: List[Tuple[int, SmaliClass]] = []
        for index in range(start, len(names)):
            if not names[index].startswith(prefix):
                break
            matches.extend(self.by_name[names[index]])
        matches.sort(key=lambda entry: entry[0])
        return [cls for _, cls in matches]


@dataclass
class DecodedApk:
    """The output directory of an ``apktool d`` run, as structured data."""

    package: str
    manifest: Manifest
    classes: List[SmaliClass] = field(default_factory=list)
    layouts: Dict[str, Layout] = field(default_factory=dict)
    resources: ResourceTable = None  # type: ignore[assignment]

    def _index(self) -> _ClassIndex:
        # Lazily built and rebuilt whenever ``classes`` grows or shrinks
        # (tests extend the list in place); stored outside the dataclass
        # fields so equality and repr are untouched.
        index = self.__dict__.get("_class_index")
        if index is None or index.size != len(self.classes):
            index = _ClassIndex(self.classes)
            self.__dict__["_class_index"] = index
        return index

    def class_by_name(self, name: str) -> SmaliClass:
        entries = self._index().by_name.get(name)
        if not entries:
            raise KeyError(f"no class {name!r} in decoded {self.package}")
        return entries[0][1]

    def has_class(self, name: str) -> bool:
        return name in self._index().by_name

    def inner_classes_of(self, name: str) -> List[SmaliClass]:
        """All ``Name$...`` companions of a class (Algorithm 2's
        ``getInnerClass``)."""
        return self._index().prefix_matches(name + "$")


class Apktool:
    """Stateless decoder with the same responsibilities as Apktool."""

    def decode(self, apk: ApkPackage) -> DecodedApk:
        """Decode a package; raises :class:`PackedApkError` on packers."""
        if apk.packed:
            raise PackedApkError(
                f"{apk.package}: DEX is packed/encrypted; cannot decode"
            )
        manifest = Manifest.from_xml(apk.manifest_xml)
        classes = [parse_class(text) for _, text in sorted(apk.smali_files.items())]
        layouts: Dict[str, Layout] = {}
        for path, text in sorted(apk.layout_files.items()):
            name = path.rsplit("/", 1)[-1].removesuffix(".xml")
            layouts[name] = Layout.from_xml(name, text)
        resources = ResourceTable.from_public_xml(apk.package, apk.public_xml)
        return DecodedApk(
            package=apk.package,
            manifest=manifest,
            classes=classes,
            layouts=layouts,
            resources=resources,
        )
