"""Apktool equivalent: decode an :class:`ApkPackage` into analyzable form.

Mirrors the paper's first static step (Section IV-B.1): "We use Apktool to
decompile the target APK file to get the smali code and its
AndroidManifest.xml file."  Decoding parses the package's *text* artifacts
— it does not shortcut through any in-memory structures — and fails on
packed/encrypted apps exactly like the real tool does on packers (the apps
the paper had to rule out before selecting its 15 targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.apk.layout import Layout
from repro.apk.manifest import Manifest
from repro.apk.package import ApkPackage
from repro.apk.resources import ResourceTable
from repro.errors import PackedApkError
from repro.smali.assemble import parse_class
from repro.smali.model import SmaliClass


@dataclass
class DecodedApk:
    """The output directory of an ``apktool d`` run, as structured data."""

    package: str
    manifest: Manifest
    classes: List[SmaliClass] = field(default_factory=list)
    layouts: Dict[str, Layout] = field(default_factory=dict)
    resources: ResourceTable = None  # type: ignore[assignment]

    def class_by_name(self, name: str) -> SmaliClass:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"no class {name!r} in decoded {self.package}")

    def has_class(self, name: str) -> bool:
        return any(cls.name == name for cls in self.classes)

    def inner_classes_of(self, name: str) -> List[SmaliClass]:
        """All ``Name$...`` companions of a class (Algorithm 2's
        ``getInnerClass``)."""
        prefix = name + "$"
        return [cls for cls in self.classes if cls.name.startswith(prefix)]


class Apktool:
    """Stateless decoder with the same responsibilities as Apktool."""

    def decode(self, apk: ApkPackage) -> DecodedApk:
        """Decode a package; raises :class:`PackedApkError` on packers."""
        if apk.packed:
            raise PackedApkError(
                f"{apk.package}: DEX is packed/encrypted; cannot decode"
            )
        manifest = Manifest.from_xml(apk.manifest_xml)
        classes = [parse_class(text) for _, text in sorted(apk.smali_files.items())]
        layouts: Dict[str, Layout] = {}
        for path, text in sorted(apk.layout_files.items()):
            name = path.rsplit("/", 1)[-1].removesuffix(".xml")
            layouts[name] = Layout.from_xml(name, text)
        resources = ResourceTable.from_public_xml(apk.package, apk.public_xml)
        return DecodedApk(
            package=apk.package,
            manifest=manifest,
            classes=classes,
            layouts=layouts,
            resources=resources,
        )
