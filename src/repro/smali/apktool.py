"""Apktool equivalent: decode an :class:`ApkPackage` into analyzable form.

Mirrors the paper's first static step (Section IV-B.1): "We use Apktool to
decompile the target APK file to get the smali code and its
AndroidManifest.xml file."  Decoding parses the package's *text* artifacts
— it does not shortcut through any in-memory structures — and fails on
packed/encrypted apps exactly like the real tool does on packers (the apps
the paper had to rule out before selecting its 15 targets).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.apk.layout import Layout
from repro.apk.manifest import Manifest
from repro.apk.package import ApkPackage
from repro.apk.resources import ResourceTable
from repro.errors import PackedApkError
from repro.smali.assemble import parse_class
from repro.smali.model import INVOKE_OPCODES, SmaliClass


class _ClassIndex:
    """Name lookup structures for one ``classes`` list snapshot.

    Algorithms 1–3 call ``class_by_name``/``has_class``/
    ``inner_classes_of`` for every component, inner class and resource
    reference; linear scans made the static phase O(components ×
    classes).  The index keeps one name→occurrences dict (O(1) exact
    lookup, first occurrence wins exactly like the old scan) and one
    sorted name list (O(log n) prefix ranges for ``Name$...``
    companions, yielded back in original list order)."""

    __slots__ = ("size", "by_name", "sorted_names")

    def __init__(self, classes: List[SmaliClass]) -> None:
        self.size = len(classes)
        by_name: Dict[str, List[Tuple[int, SmaliClass]]] = {}
        for position, cls in enumerate(classes):
            by_name.setdefault(cls.name, []).append((position, cls))
        self.by_name = by_name
        self.sorted_names = sorted(by_name)

    def prefix_matches(self, prefix: str) -> List[SmaliClass]:
        names = self.sorted_names
        start = bisect_left(names, prefix)
        matches: List[Tuple[int, SmaliClass]] = []
        for index in range(start, len(names)):
            if not names[index].startswith(prefix):
                break
            matches.extend(self.by_name[names[index]])
        matches.sort(key=lambda entry: entry[0])
        return [cls for _, cls in matches]


def _instantiated_in(cls: SmaliClass) -> set:
    """Operands this class creates or type-tests: ``new-instance`` /
    ``instance-of`` operands plus receivers of ``newInstance()`` calls."""
    instantiated: set = set()
    for method in cls.methods:
        for instruction in method.instructions:
            opcode = instruction.opcode
            if opcode in ("new-instance", "instance-of"):
                instantiated.add(instruction.args[-1])
            elif opcode in INVOKE_OPCODES:
                ref = instruction.method
                if ref.name == "newInstance":
                    instantiated.add(ref.cls)
    return instantiated


class _ReferenceIndex:
    """Reverse-reference and instantiation structures for one ``classes``
    list snapshot.

    Section IV-B.2's effective-fragment fixed point asks, per fragment
    per round, "who references this class?" and "does that referrer
    actually instantiate it?".  Answering by rescanning every class made
    the loop O(rounds × fragments × classes).  This index walks the
    class list once: ``owners_by_target`` maps each referenced class to
    its referring outer classes (original list order, first-seen dedup,
    self-references excluded — exactly what the per-target scan
    produced), and ``instantiated_by_id`` records, per class object, the
    operands of ``new-instance``/``instance-of`` plus the receivers of
    ``newInstance()`` calls."""

    __slots__ = ("size", "owners_by_target", "instantiated_by_id",
                 "unit_instantiations")

    def __init__(self, classes: List[SmaliClass]) -> None:
        self.size = len(classes)
        owners_by_target: Dict[str, List[str]] = {}
        instantiated_by_id: Dict[int, set] = {}
        for cls in classes:
            owner = cls.outer_name or cls.name
            for target in cls.referenced_classes():
                bucket = owners_by_target.get(target)
                if bucket is None:
                    owners_by_target[target] = bucket = []
                if owner != target and owner not in bucket:
                    bucket.append(owner)
            instantiated_by_id[id(cls)] = _instantiated_in(cls)
        self.owners_by_target = owners_by_target
        self.instantiated_by_id = instantiated_by_id
        # Per-referrer union of the class itself plus its inner classes,
        # filled lazily by DecodedApk.instantiates.
        self.unit_instantiations: Dict[str, set] = {}


@dataclass
class DecodedApk:
    """The output directory of an ``apktool d`` run, as structured data."""

    package: str
    manifest: Manifest
    classes: List[SmaliClass] = field(default_factory=list)
    layouts: Dict[str, Layout] = field(default_factory=dict)
    resources: ResourceTable = None  # type: ignore[assignment]

    def _index(self) -> _ClassIndex:
        # Lazily built and rebuilt whenever ``classes`` grows or shrinks
        # (tests extend the list in place); stored outside the dataclass
        # fields so equality and repr are untouched.
        index = self.__dict__.get("_class_index")
        if index is None or index.size != len(self.classes):
            index = _ClassIndex(self.classes)
            self.__dict__["_class_index"] = index
        return index

    def class_by_name(self, name: str) -> SmaliClass:
        entries = self._index().by_name.get(name)
        if not entries:
            raise KeyError(f"no class {name!r} in decoded {self.package}")
        return entries[0][1]

    def has_class(self, name: str) -> bool:
        return name in self._index().by_name

    def inner_classes_of(self, name: str) -> List[SmaliClass]:
        """All ``Name$...`` companions of a class (Algorithm 2's
        ``getInnerClass``)."""
        return self._index().prefix_matches(name + "$")

    def _ref_index(self) -> _ReferenceIndex:
        index = self.__dict__.get("_reference_index")
        if index is None or index.size != len(self.classes):
            index = _ReferenceIndex(self.classes)
            self.__dict__["_reference_index"] = index
        return index

    def referencing_owners(self, target: str) -> List[str]:
        """Outer classes (including via their inner classes) containing a
        statement of ``target`` — first-seen order, self excluded."""
        return list(self._ref_index().owners_by_target.get(target, ()))

    def instantiates(self, referrer: str, target: str) -> bool:
        """True when ``referrer`` (or one of its inner classes) creates
        ``target``: ``new T()``, ``T.newInstance()`` or ``instanceof``."""
        index = self._ref_index()
        unit = index.unit_instantiations.get(referrer)
        if unit is None:
            members = (
                [self.class_by_name(referrer)] if self.has_class(referrer)
                else []
            )
            members.extend(self.inner_classes_of(referrer))
            unit = set()
            for cls in members:
                known = index.instantiated_by_id.get(id(cls))
                unit |= known if known is not None else _instantiated_in(cls)
            index.unit_instantiations[referrer] = unit
        return target in unit


class Apktool:
    """Stateless decoder with the same responsibilities as Apktool."""

    def decode(self, apk: ApkPackage) -> DecodedApk:
        """Decode a package; raises :class:`PackedApkError` on packers."""
        if apk.packed:
            raise PackedApkError(
                f"{apk.package}: DEX is packed/encrypted; cannot decode"
            )
        manifest = Manifest.from_xml(apk.manifest_xml)
        classes = [parse_class(text) for _, text in sorted(apk.smali_files.items())]
        layouts: Dict[str, Layout] = {}
        for path, text in sorted(apk.layout_files.items()):
            name = path.rsplit("/", 1)[-1].removesuffix(".xml")
            layouts[name] = Layout.from_xml(name, text)
        resources = ResourceTable.from_public_xml(apk.package, apk.public_xml)
        return DecodedApk(
            package=apk.package,
            manifest=manifest,
            classes=classes,
            layouts=layouts,
            resources=resources,
        )
