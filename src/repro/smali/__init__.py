"""Smali toolchain: dalvik class model, assembler, Apktool and jd-core
equivalents.

The paper's static phase is built on two external tools — Apktool (APK →
smali + manifest) and jd-core (smali → Java).  This subpackage rebuilds
both against our APK package model, emitting the same artifact shapes the
paper's Algorithms 1–3 consume.
"""

from repro.smali.assemble import parse_class, print_class
from repro.smali.apktool import Apktool, DecodedApk
from repro.smali.javagen import JavaDecompiler
from repro.smali.model import (
    Instruction,
    MethodRef,
    SmaliClass,
    SmaliField,
    SmaliMethod,
    jvm_type,
    java_name,
)

__all__ = [
    "Apktool",
    "DecodedApk",
    "Instruction",
    "JavaDecompiler",
    "MethodRef",
    "SmaliClass",
    "SmaliField",
    "SmaliMethod",
    "java_name",
    "jvm_type",
    "parse_class",
    "print_class",
]
