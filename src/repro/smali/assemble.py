"""Smali text assembler/disassembler.

``print_class`` renders a :class:`~repro.smali.model.SmaliClass` in the
baksmali text format; ``parse_class`` reads it back.  The static pipeline
operates on the *text* (as the paper's does on Apktool output), so the
round trip is load-bearing, and is covered by property-based tests.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SmaliError
from repro.smali.model import (
    Instruction,
    MethodRef,
    SmaliClass,
    SmaliField,
    SmaliMethod,
    java_name,
    jvm_type,
)


def print_class(cls: SmaliClass) -> str:
    """Render a class to smali text."""
    lines: List[str] = [f".class public {jvm_type(cls.name)}"]
    lines.append(f".super {jvm_type(cls.super_name)}")
    if cls.source:
        lines.append(f'.source "{cls.source}"')
    for iface in cls.interfaces:
        lines.append(f".implements {jvm_type(iface)}")
    for fld in cls.fields:
        prefix = ".field public static" if fld.static else ".field public"
        lines.append(f"{prefix} {fld.name}:{jvm_type(fld.type)}")
    for method in cls.methods:
        lines.append("")
        lines.extend(_print_method(method))
    return "\n".join(lines) + "\n"


def _print_method(method: SmaliMethod) -> List[str]:
    params = "".join(jvm_type(p) for p in method.params)
    flags = "public static" if method.static else "public"
    lines = [
        f".method {flags} {method.name}({params}){jvm_type(method.ret)}",
        f"    .registers {method.registers}",
    ]
    for instruction in method.instructions:
        lines.append("    " + _print_instruction(instruction))
    lines.append(".end method")
    return lines


def _print_instruction(instruction: Instruction) -> str:
    op = instruction.opcode
    args = instruction.args
    if op in ("return-void", "nop"):
        return op
    if op == "label":
        (name,) = args
        return f":{name}"
    if op == "goto":
        (name,) = args
        return f"goto :{name}"
    if op in ("if-eqz", "if-nez"):
        reg, name = args
        return f"{op} {reg}, :{name}"
    if op == "const-string":
        reg, literal = args
        escaped = str(literal).replace("\\", "\\\\").replace('"', '\\"')
        return f'{op} {reg}, "{escaped}"'
    if op in ("const-class", "new-instance", "check-cast"):
        reg, cls_name = args
        return f"{op} {reg}, {jvm_type(str(cls_name))}"
    if op == "instance-of":
        dest, src, cls_name = args
        return f"{op} {dest}, {src}, {jvm_type(str(cls_name))}"
    if op in ("const", "const/4"):
        reg, value = args
        return f"{op} {reg}, {int(value):#x}"
    if op in ("move-result-object", "move-result", "return-object"):
        (reg,) = args
        return f"{op} {reg}"
    if op in ("iget-object", "iput-object"):
        reg, obj, ref = args
        return f"{op} {reg}, {obj}, {ref}"
    if instruction.is_invoke:
        *regs, ref = args
        assert isinstance(ref, MethodRef)
        reg_list = ", ".join(str(r) for r in regs)
        return f"{op} {{{reg_list}}}, {ref.descriptor()}"
    raise SmaliError(f"cannot print opcode {op!r}")


def parse_class(text: str) -> SmaliClass:
    """Parse smali text produced by :func:`print_class`."""
    cls: SmaliClass = SmaliClass(name="__pending__")
    method: SmaliMethod = SmaliMethod(name="__none__")
    in_method = False
    seen_class = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith(".class"):
            cls.name = java_name(line.split()[-1])
            seen_class = True
        elif line.startswith(".super"):
            cls.super_name = java_name(line.split()[-1])
        elif line.startswith(".source"):
            cls.source = line.split('"')[1]
        elif line.startswith(".implements"):
            cls.interfaces.append(java_name(line.split()[-1]))
        elif line.startswith(".field"):
            static = " static " in line + " "
            decl = line.split()[-1]
            name, _, descriptor = decl.partition(":")
            cls.fields.append(
                SmaliField(name=name, type=java_name(descriptor), static=static)
            )
        elif line.startswith(".method"):
            method = _parse_method_header(line)
            in_method = True
        elif line.startswith(".registers"):
            method.registers = int(line.split()[-1])
        elif line.startswith(".end method"):
            cls.methods.append(method)
            in_method = False
        elif in_method:
            method.instructions.append(_parse_instruction(line))
    if not seen_class:
        raise SmaliError("no .class directive found")
    return cls


def _parse_method_header(line: str) -> SmaliMethod:
    # ".method public [static] name(params)ret"
    static = " static " in line
    signature = line.split()[-1]
    name, rest = signature.split("(", 1)
    params_str, ret = rest.split(")", 1)
    params = [java_name(d) for d in _split_descriptors(params_str)]
    return SmaliMethod(name=name, params=params, ret=java_name(ret), static=static)


def _split_descriptors(text: str) -> List[str]:
    out: List[str] = []
    index = 0
    while index < len(text):
        start = index
        while text[index] == "[":
            index += 1
        if text[index] == "L":
            index = text.index(";", index) + 1
        else:
            index += 1
        out.append(text[start:index])
    return out


def _parse_instruction(line: str) -> Instruction:
    if line.startswith(":"):
        return Instruction("label", (line[1:],))
    opcode, _, rest = line.partition(" ")
    rest = rest.strip()
    if opcode in ("return-void", "nop"):
        return Instruction(opcode)
    if opcode == "goto":
        return Instruction(opcode, (rest.lstrip(":"),))
    if opcode in ("if-eqz", "if-nez"):
        reg, label = _split_args(rest, 2)
        return Instruction(opcode, (reg, label.lstrip(":")))
    if opcode == "const-string":
        reg, literal = rest.split(", ", 1)
        value = literal.strip()[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        return Instruction(opcode, (reg, value))
    if opcode in ("const-class", "new-instance", "check-cast"):
        reg, descriptor = _split_args(rest, 2)
        return Instruction(opcode, (reg, java_name(descriptor)))
    if opcode == "instance-of":
        dest, src, descriptor = _split_args(rest, 3)
        return Instruction(opcode, (dest, src, java_name(descriptor)))
    if opcode in ("const", "const/4"):
        reg, value = _split_args(rest, 2)
        return Instruction(opcode, (reg, int(value, 16)))
    if opcode in ("move-result-object", "move-result", "return-object"):
        return Instruction(opcode, (rest,))
    if opcode in ("iget-object", "iput-object"):
        reg, obj, ref = _split_args(rest, 3)
        return Instruction(opcode, (reg, obj, ref))
    if opcode.startswith("invoke-"):
        regs_part, _, ref_part = rest.partition("}, ")
        regs_part = regs_part.lstrip("{")
        regs: Tuple[str, ...] = tuple(
            r.strip() for r in regs_part.split(",") if r.strip()
        )
        ref = MethodRef.parse(ref_part.strip())
        return Instruction(opcode, regs + (ref,))
    raise SmaliError(f"cannot parse instruction: {line!r}")


def _split_args(rest: str, count: int) -> List[str]:
    parts = [p.strip() for p in rest.split(",")]
    if len(parts) != count:
        raise SmaliError(f"expected {count} operands in {rest!r}")
    return parts
