"""Smali text assembler/disassembler.

``print_class`` renders a :class:`~repro.smali.model.SmaliClass` in the
baksmali text format; ``parse_class`` reads it back.  The static pipeline
operates on the *text* (as the paper's does on Apktool output), so the
round trip is load-bearing, and is covered by property-based tests.

Both directions are driven by dispatch tables keyed on the leading
directive/opcode token: the parser classifies each line once (directive,
comment, or instruction) and jumps straight to its handler instead of
probing a ``startswith`` chain per line.  Lines whose leading token is
not an exact directive fall back to the historical prefix-matching
chain, so edge-case semantics (and error messages) are byte-identical
to the pre-dispatch implementation.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from repro.errors import SmaliError
from repro.smali.model import (
    Instruction,
    MethodRef,
    SmaliClass,
    SmaliField,
    SmaliMethod,
    java_name,
    jvm_type,
)

# ---------------------------------------------------------------------------
# Printing


def print_class(cls: SmaliClass) -> str:
    """Render a class to smali text."""
    lines: List[str] = [f".class public {jvm_type(cls.name)}"]
    lines.append(f".super {jvm_type(cls.super_name)}")
    if cls.source:
        lines.append(f'.source "{cls.source}"')
    for iface in cls.interfaces:
        lines.append(f".implements {jvm_type(iface)}")
    for fld in cls.fields:
        prefix = ".field public static" if fld.static else ".field public"
        lines.append(f"{prefix} {fld.name}:{jvm_type(fld.type)}")
    for method in cls.methods:
        lines.append("")
        lines.extend(_print_method(method))
    return "\n".join(lines) + "\n"


def _print_method(method: SmaliMethod) -> List[str]:
    params = "".join(jvm_type(p) for p in method.params)
    flags = "public static" if method.static else "public"
    lines = [
        f".method {flags} {method.name}({params}){jvm_type(method.ret)}",
        f"    .registers {method.registers}",
    ]
    append = lines.append
    for instruction in method.instructions:
        # Interned instructions are shared across methods and apps, so
        # the rendered text is memoized per instance.
        text = instruction.__dict__.get("_printed")
        if text is None:
            text = _print_instruction(instruction)
        append("    " + text)
    lines.append(".end method")
    return lines


def _print_instruction(instruction: Instruction) -> str:
    cached = instruction.__dict__.get("_printed")
    if cached is not None:
        return cached
    printer = _INSTRUCTION_PRINTERS.get(instruction.opcode)
    if printer is None:
        raise SmaliError(f"cannot print opcode {instruction.opcode!r}")
    text = printer(instruction.opcode, instruction.args)
    object.__setattr__(instruction, "_printed", text)
    return text


def _print_bare(op: str, args: Tuple[object, ...]) -> str:
    return op


def _print_label(op: str, args: Tuple[object, ...]) -> str:
    (name,) = args
    return f":{name}"


def _print_goto(op: str, args: Tuple[object, ...]) -> str:
    (name,) = args
    return f"goto :{name}"


def _print_branch(op: str, args: Tuple[object, ...]) -> str:
    reg, name = args
    return f"{op} {reg}, :{name}"


def _print_const_string(op: str, args: Tuple[object, ...]) -> str:
    reg, literal = args
    escaped = str(literal).replace("\\", "\\\\").replace('"', '\\"')
    return f'{op} {reg}, "{escaped}"'


def _print_reg_class(op: str, args: Tuple[object, ...]) -> str:
    reg, cls_name = args
    return f"{op} {reg}, {jvm_type(str(cls_name))}"


def _print_instance_of(op: str, args: Tuple[object, ...]) -> str:
    dest, src, cls_name = args
    return f"{op} {dest}, {src}, {jvm_type(str(cls_name))}"


def _print_const(op: str, args: Tuple[object, ...]) -> str:
    reg, value = args
    return f"{op} {reg}, {int(value):#x}"


def _print_unary(op: str, args: Tuple[object, ...]) -> str:
    (reg,) = args
    return f"{op} {reg}"


def _print_field_access(op: str, args: Tuple[object, ...]) -> str:
    reg, obj, ref = args
    return f"{op} {reg}, {obj}, {ref}"


def _print_invoke(op: str, args: Tuple[object, ...]) -> str:
    *regs, ref = args
    assert isinstance(ref, MethodRef)
    reg_list = ", ".join(str(r) for r in regs)
    return f"{op} {{{reg_list}}}, {ref.descriptor()}"


_INSTRUCTION_PRINTERS: Dict[str, Callable[[str, Tuple[object, ...]], str]] = {
    "return-void": _print_bare,
    "nop": _print_bare,
    "label": _print_label,
    "goto": _print_goto,
    "if-eqz": _print_branch,
    "if-nez": _print_branch,
    "const-string": _print_const_string,
    "const-class": _print_reg_class,
    "new-instance": _print_reg_class,
    "check-cast": _print_reg_class,
    "instance-of": _print_instance_of,
    "const": _print_const,
    "const/4": _print_const,
    "move-result-object": _print_unary,
    "move-result": _print_unary,
    "return-object": _print_unary,
    "iget-object": _print_field_access,
    "iput-object": _print_field_access,
    "invoke-direct": _print_invoke,
    "invoke-virtual": _print_invoke,
    "invoke-static": _print_invoke,
    "invoke-super": _print_invoke,
    "invoke-interface": _print_invoke,
}


# ---------------------------------------------------------------------------
# Parsing


class _ClassParser:
    """Mutable state for one :func:`parse_class` pass."""

    __slots__ = ("cls", "method", "in_method", "seen_class")

    def __init__(self) -> None:
        self.cls = SmaliClass(name="__pending__")
        self.method = SmaliMethod(name="__none__")
        self.in_method = False
        self.seen_class = False

    # Directive handlers.  Each receives the stripped line whose leading
    # token matched the dispatch key exactly.

    def _dir_class(self, line: str) -> None:
        self.cls.name = java_name(line.split()[-1])
        self.seen_class = True

    def _dir_super(self, line: str) -> None:
        self.cls.super_name = java_name(line.split()[-1])

    def _dir_source(self, line: str) -> None:
        self.cls.source = line.split('"')[1]

    def _dir_implements(self, line: str) -> None:
        self.cls.interfaces.append(java_name(line.split()[-1]))

    def _dir_field(self, line: str) -> None:
        static = " static " in line + " "
        decl = line.split()[-1]
        name, _, descriptor = decl.partition(":")
        self.cls.fields.append(
            SmaliField(name=name, type=java_name(descriptor), static=static)
        )

    def _dir_method(self, line: str) -> None:
        self.method = _parse_method_header(line)
        self.in_method = True

    def _dir_registers(self, line: str) -> None:
        self.method.registers = int(line.split()[-1])

    def _dir_end(self, line: str) -> None:
        if line.startswith(".end method"):
            self.cls.methods.append(self.method)
            self.in_method = False
        elif self.in_method:
            self.method.instructions.append(_parse_instruction(line))
        # Outside a method, unmatched ``.end …`` lines are ignored.

    def _dir_fallback(self, line: str) -> None:
        # Historical prefix-matching chain, kept for lines whose leading
        # token is not an exact directive (e.g. ``.classx``): matches the
        # pre-dispatch parser byte for byte, errors included.
        if line.startswith(".class"):
            self._dir_class(line)
        elif line.startswith(".super"):
            self._dir_super(line)
        elif line.startswith(".source"):
            self._dir_source(line)
        elif line.startswith(".implements"):
            self._dir_implements(line)
        elif line.startswith(".field"):
            self._dir_field(line)
        elif line.startswith(".method"):
            self._dir_method(line)
        elif line.startswith(".registers"):
            self._dir_registers(line)
        elif line.startswith(".end method"):
            self.cls.methods.append(self.method)
            self.in_method = False
        elif self.in_method:
            self.method.instructions.append(_parse_instruction(line))


_DIRECTIVES: Dict[str, Callable[[_ClassParser, str], None]] = {
    ".class": _ClassParser._dir_class,
    ".super": _ClassParser._dir_super,
    ".source": _ClassParser._dir_source,
    ".implements": _ClassParser._dir_implements,
    ".field": _ClassParser._dir_field,
    ".method": _ClassParser._dir_method,
    ".registers": _ClassParser._dir_registers,
    ".end": _ClassParser._dir_end,
}


def parse_class(text: str) -> SmaliClass:
    """Parse smali text produced by :func:`print_class`.

    Single pass: each line is classified once by its first character —
    directive (``.``), comment (``#``), or instruction — and directives
    dispatch on their leading token.
    """
    parser = _ClassParser()
    directives_get = _DIRECTIVES.get
    fallback = _ClassParser._dir_fallback
    cache_get = _INSTRUCTION_CACHE.get
    for line in map(str.strip, text.splitlines()):
        if not line:
            continue
        head = line[0]
        if head == ".":
            directives_get(line.partition(" ")[0], fallback)(parser, line)
        elif head == "#":
            continue
        elif parser.in_method:
            instruction = cache_get(line)
            if instruction is None:
                instruction = _parse_instruction(line)
            parser.method.instructions.append(instruction)
    if not parser.seen_class:
        raise SmaliError("no .class directive found")
    return parser.cls


@lru_cache(maxsize=None)
def _method_header_parts(line: str) -> Tuple[str, Tuple[str, ...], str, bool]:
    # ".method public [static] name(params)ret"
    static = " static " in line
    signature = line.split()[-1]
    name, rest = signature.split("(", 1)
    params_str, ret = rest.split(")", 1)
    params = tuple(java_name(d) for d in _split_descriptors(params_str))
    return name, params, java_name(ret), static


def _parse_method_header(line: str) -> SmaliMethod:
    # Headers like ``.method public onCreate(...)V`` recur across every
    # class in a corpus; the immutable parts are cached, the mutable
    # SmaliMethod shell is always fresh.
    name, params, ret, static = _method_header_parts(line)
    return SmaliMethod(name=name, params=list(params), ret=ret, static=static)


def _split_descriptors(text: str) -> List[str]:
    out: List[str] = []
    index = 0
    while index < len(text):
        start = index
        while text[index] == "[":
            index += 1
        if text[index] == "L":
            index = text.index(";", index) + 1
        else:
            index += 1
        out.append(text[start:index])
    return out


def _parse_bare(opcode: str, rest: str) -> Instruction:
    return Instruction(opcode)


def _parse_goto(opcode: str, rest: str) -> Instruction:
    return Instruction(opcode, (rest.lstrip(":"),))


def _parse_branch(opcode: str, rest: str) -> Instruction:
    reg, label = _split_args(rest, 2)
    return Instruction(opcode, (reg, label.lstrip(":")))


def _parse_const_string(opcode: str, rest: str) -> Instruction:
    reg, literal = rest.split(", ", 1)
    value = literal.strip()[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    return Instruction(opcode, (reg, value))


def _parse_reg_class(opcode: str, rest: str) -> Instruction:
    reg, descriptor = _split_args(rest, 2)
    return Instruction(opcode, (reg, java_name(descriptor)))


def _parse_instance_of(opcode: str, rest: str) -> Instruction:
    dest, src, descriptor = _split_args(rest, 3)
    return Instruction(opcode, (dest, src, java_name(descriptor)))


def _parse_const(opcode: str, rest: str) -> Instruction:
    reg, value = _split_args(rest, 2)
    return Instruction(opcode, (reg, int(value, 16)))


def _parse_unary(opcode: str, rest: str) -> Instruction:
    return Instruction(opcode, (rest,))


def _parse_field_access(opcode: str, rest: str) -> Instruction:
    reg, obj, ref = _split_args(rest, 3)
    return Instruction(opcode, (reg, obj, ref))


def _parse_invoke(opcode: str, rest: str) -> Instruction:
    regs_part, _, ref_part = rest.partition("}, ")
    regs_part = regs_part.lstrip("{")
    regs: Tuple[str, ...] = tuple(
        r.strip() for r in regs_part.split(",") if r.strip()
    )
    ref = MethodRef.parse(ref_part.strip())
    return Instruction(opcode, regs + (ref,))


_INSTRUCTION_PARSERS: Dict[str, Callable[[str, str], Instruction]] = {
    "return-void": _parse_bare,
    "nop": _parse_bare,
    "goto": _parse_goto,
    "if-eqz": _parse_branch,
    "if-nez": _parse_branch,
    "const-string": _parse_const_string,
    "const-class": _parse_reg_class,
    "new-instance": _parse_reg_class,
    "check-cast": _parse_reg_class,
    "instance-of": _parse_instance_of,
    "const": _parse_const,
    "const/4": _parse_const,
    "move-result-object": _parse_unary,
    "move-result": _parse_unary,
    "return-object": _parse_unary,
    "iget-object": _parse_field_access,
    "iput-object": _parse_field_access,
    "invoke-direct": _parse_invoke,
    "invoke-virtual": _parse_invoke,
    "invoke-static": _parse_invoke,
    "invoke-super": _parse_invoke,
    "invoke-interface": _parse_invoke,
}


# Interning cache for parsed instruction lines.  Instructions (and the
# MethodRefs inside them) are frozen, so the same textual line — think
# ``return-void`` or ``move-result-object v0``, repeated across every
# class in a 10k-app corpus — can share one parsed object.  Malformed
# lines raise before anything is stored, so errors are never cached.
_INSTRUCTION_CACHE: Dict[str, Instruction] = {}


def _parse_instruction(line: str) -> Instruction:
    cached = _INSTRUCTION_CACHE.get(line)
    if cached is not None:
        return cached
    if line.startswith(":"):
        instruction = Instruction("label", (line[1:],))
    else:
        opcode, _, rest = line.partition(" ")
        parser = _INSTRUCTION_PARSERS.get(opcode)
        if parser is not None:
            instruction = parser(opcode, rest.strip())
        elif opcode.startswith("invoke-"):
            # Unknown invoke flavours still parse the reference first,
            # then fail opcode validation inside Instruction — matching
            # the historical error order ("bad method reference" before
            # "unknown opcode").
            instruction = _parse_invoke(opcode, rest.strip())
        else:
            raise SmaliError(f"cannot parse instruction: {line!r}")
    _INSTRUCTION_CACHE[line] = instruction
    return instruction


def _split_args(rest: str, count: int) -> List[str]:
    parts = [p.strip() for p in rest.split(",")]
    if len(parts) != count:
        raise SmaliError(f"expected {count} operands in {rest!r}")
    return parts
