"""jd-core equivalent: pattern-directed smali → Java decompilation.

Section IV-B.1: "we further convert the smali code to the corresponding
Java code through jd-core for the last step — transition edge
calculation."  Algorithm 1 then greps the Java source for idioms like
``new Intent(A0, A1.class)`` and ``new F1()``.

This decompiler performs a linear register-tracking pass over each method
body and emits one Java-like statement per interesting invoke.  Like a
real decompiler it is faithful to what the bytecode *contains*: a target
loaded via ``Class.forName(decode(...))`` decompiles to
``new Intent(this, FragmentRouter.resolveTarget())`` — a line no regex
can resolve to a class name, which is exactly how runtime-computed
navigation escapes static analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.smali.model import Instruction, MethodRef, SmaliClass, SmaliMethod

_FRAGMENT_MANAGER_GETTERS = ("getFragmentManager", "getSupportFragmentManager")


class JavaDecompiler:
    """Decompile smali classes to Java-like source text."""

    def decompile_class(self, cls: SmaliClass) -> str:
        """Render one class (inner classes are rendered separately; use
        :meth:`decompile_unit` to merge them as jd-core does)."""
        lines: List[str] = []
        package, _, simple = cls.name.rpartition(".")
        if package and not cls.is_inner:
            lines.append(f"package {package};")
            lines.append("")
        implements = (
            " implements " + ", ".join(cls.interfaces) if cls.interfaces else ""
        )
        lines.append(
            f"public class {simple.replace('$', '_')} "
            f"extends {cls.super_name}{implements} {{"
        )
        for method in cls.methods:
            lines.extend(f"    {line}" for line in self._method_lines(method))
        lines.append("}")
        return "\n".join(lines) + "\n"

    def decompile_unit(self, outer: SmaliClass,
                       inners: List[SmaliClass]) -> str:
        """One ``.java`` file: the outer class with its inner classes —
        the unit Algorithm 1 scans as ``A0.java`` / ``F0.java``."""
        parts = [self.decompile_class(outer)]
        for inner in sorted(inners, key=lambda c: c.name):
            parts.append(self.decompile_class(inner))
        return "\n".join(parts)

    # -- statement generation -------------------------------------------------

    def _method_lines(self, method: SmaliMethod) -> List[str]:
        params = ", ".join(
            f"{ptype} p{index + 1}" for index, ptype in enumerate(method.params)
        )
        flags = "public static" if method.static else "public"
        name = "ctor" if method.name == "<init>" else method.name
        lines = [f"{flags} {method.ret} {name}({params}) {{"]
        state = _RegisterState()
        for instruction in method.instructions:
            statement = self._step(instruction, state)
            if statement:
                lines.append(f"    {statement}")
        lines.append("}")
        return lines

    def _step(self, instruction: Instruction,
              state: "_RegisterState") -> Optional[str]:
        op = instruction.opcode
        args = instruction.args
        if op == "const-string":
            reg, literal = args
            state.set(str(reg), _Value("string", str(literal)))
            return None
        if op == "const-class":
            reg, cls_name = args
            state.set(str(reg), _Value("class", str(cls_name)))
            return None
        if op in ("const", "const/4"):
            reg, number = args
            state.set(str(reg), _Value("int", str(int(number))))  # type: ignore[arg-type]
            return None
        if op == "new-instance":
            reg, cls_name = args
            state.set(str(reg), _Value("new", str(cls_name)))
            return None
        if op == "move-result-object" or op == "move-result":
            (reg,) = args
            state.set(str(reg), state.pending or _Value("expr", "result"))
            state.pending = None
            return None
        if op == "check-cast":
            reg, cls_name = args
            state.set(str(reg), _Value("expr", f"(({cls_name})local)"))
            return None
        if op == "iget-object":
            reg = str(args[0])
            state.set(reg, _Value("expr", "this$0"))
            return None
        if op in ("if-eqz", "if-nez"):
            # The branch jumps to the else-label, so the fall-through is
            # the taken 'if' body: if-eqz guards the truthy path.
            reg, _label = args
            negation = "" if op == "if-eqz" else "!"
            return f"if ({negation}{self._render(state, str(reg))}) {{"
        if op == "goto":
            return None  # structural; rendered via the labels
        if op == "label":
            (name,) = args
            if str(name).startswith("cond_fail"):
                return "} else {"
            if str(name).startswith("cond_end"):
                return "}"
            return None
        if instruction.is_invoke:
            return self._invoke_statement(instruction, state)
        return None

    def _invoke_statement(self, instruction: Instruction,
                          state: "_RegisterState") -> Optional[str]:
        ref = instruction.method
        regs = [a for a in instruction.args[:-1] if isinstance(a, str)]

        # Constructor calls merge with the pending new-instance.
        if ref.name == "<init>":
            receiver = regs[0] if regs else None
            value = state.get(receiver) if receiver else None
            if value is not None and value.kind == "new":
                rendered_args = ", ".join(
                    self._render(state, reg) for reg in regs[1:]
                )
                expression = f"new {value.text}({rendered_args})"
                if value.text == "android.content.Intent":
                    state.set(receiver, _Value("expr", "localIntent"))  # type: ignore[arg-type]
                    return f"Intent localIntent = {expression};"
                state.set(receiver, _Value("expr", expression))  # type: ignore[arg-type]
                return f"{value.text} local = {expression};"
            return None

        rendered_args = ", ".join(self._render(state, reg) for reg in regs[1:])
        receiver_text = self._render(state, regs[0]) if regs else ref.cls

        if ref.name in _FRAGMENT_MANAGER_GETTERS:
            state.pending = _Value("expr", f"{ref.name}()")
            return f"FragmentManager localManager = {ref.name}();"
        if ref.name == "beginTransaction":
            state.pending = _Value("expr", "localTransaction")
            return ("FragmentTransaction localTransaction = "
                    "localManager.beginTransaction();")
        if ref.name in ("replace", "add") and "FragmentTransaction" in ref.cls:
            return f"localTransaction.{ref.name}({rendered_args});"
        if ref.name == "commit" and "FragmentTransaction" in ref.cls:
            return "localTransaction.commit();"
        if ref.name == "newInstance":
            call = f"{ref.cls}.newInstance({rendered_args})"
            state.pending = _Value("expr", call)
            # Static factory: all registers are arguments.
            all_args = ", ".join(self._render(state, reg) for reg in regs)
            return f"{ref.cls} localFragment = {ref.cls}.newInstance({all_args});"
        if ref.name == "startActivity":
            return f"startActivity({rendered_args});"
        if ref.name == "setContentView":
            return f"setContentView({rendered_args});"
        if ref.name in ("setClass", "setAction"):
            return f"localIntent.{ref.name}({rendered_args});"
        if instruction.opcode == "invoke-static":
            all_args = ", ".join(self._render(state, reg) for reg in regs)
            call = f"{ref.cls}.{ref.name}({all_args})"
            state.pending = _Value("expr", call)
            return f"{call};"
        if instruction.opcode == "invoke-super":
            return f"super.{ref.name}({rendered_args});"

        call = f"{receiver_text}.{ref.name}({rendered_args})"
        state.pending = _Value("expr", call)
        return f"{call};"

    def _render(self, state: "_RegisterState", reg: str) -> str:
        value = state.get(reg)
        if value is None:
            return "this" if reg.startswith("p") else reg
        if value.kind == "string":
            escaped = value.text.replace('"', '\\"')
            return f'"{escaped}"'
        if value.kind == "class":
            return f"{value.text}.class"
        if value.kind == "new":
            return f"new {value.text}()"
        return value.text


class _Value:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind
        self.text = text


class _RegisterState:
    def __init__(self) -> None:
        self._regs: Dict[str, _Value] = {}
        self.pending: Optional[_Value] = None

    def set(self, reg: str, value: _Value) -> None:
        self._regs[reg] = value

    def get(self, reg: str) -> Optional[_Value]:
        return self._regs.get(reg)
