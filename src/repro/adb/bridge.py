"""The Android Debug Bridge, as a thin command layer over the device.

Mirrors the command surface the paper uses:

* ``adb install`` / ``adb uninstall``;
* ``am start -n <COMPONENT> -a android.intent.action.MAIN -c
  android.intent.category.LAUNCHER`` to launch the entry Activity;
* ``am start -n <COMPONENT>`` for forced starts (after manifest
  instrumentation);
* ``am instrument -w <TestPackageName> ...`` to run a packaged
  Robotium test;
* ``adb logcat``.

Every call also records the equivalent shell command line, so a run's
command transcript can be inspected — useful in tests and reports.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.errors import ActivityNotFoundError, DeviceError, SecurityException
from repro.obs import NULL_TRACER, Tracer
from repro.types import ComponentName


class Adb:
    """A bridge bound to one device."""

    def __init__(self, device: Device,
                 tracer: Optional[Tracer] = None) -> None:
        self.device = device
        self.command_log: List[str] = []
        self._instrumentation: Dict[str, Callable[[], None]] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- package management ----------------------------------------------------

    def install(self, apk: ApkPackage) -> str:
        self.command_log.append(f"adb install {apk.apk_name}")
        self.tracer.inc("adb.installs")
        self.device.install(apk)
        return "Success"

    def uninstall(self, package: str) -> str:
        self.command_log.append(f"adb uninstall {package}")
        self.tracer.inc("adb.uninstalls")
        self.device.uninstall(package)
        return "Success"

    # -- activity manager ---------------------------------------------------------

    def am_start(
        self,
        component: str,
        action: Optional[str] = None,
        category: Optional[str] = None,
    ) -> bool:
        """``am start -n <COMPONENT> [-a ACTION] [-c CATEGORY]``.

        Returns True when the target Activity became resident.  Raises
        :class:`SecurityException` for non-exported targets (real ``am``
        prints the same error) and :class:`ActivityNotFoundError` for
        unknown components.
        """
        parts = [f"adb shell am start -n {component}"]
        if action:
            parts.append(f"-a {action}")
        if category:
            parts.append(f"-c {category}")
        self.command_log.append(" ".join(parts))
        self.tracer.inc("adb.am_start")
        name = ComponentName.parse(component)
        return self.device.start_activity(name, action=action)

    def am_start_launcher(self, package: str) -> bool:
        """The paper's app-launch command: MAIN action, LAUNCHER category."""
        launcher = self.device.manifest_of(package).launcher_activity
        if launcher is None:
            raise ActivityNotFoundError(f"{package}: no launcher")
        return self.am_start(
            f"{package}/{launcher.name}",
            action="android.intent.action.MAIN",
            category="android.intent.category.LAUNCHER",
        )

    def am_force_start(self, component: str) -> bool:
        """Forced start with an *empty* Intent (Section VI-C)."""
        return self.am_start(component)

    # -- instrumentation ---------------------------------------------------------------

    def register_instrumentation(self, test_package: str,
                                 runner: Callable[[], None]) -> None:
        """Register a packaged test (the Ant-built Robotium APK of
        Section VI-A).  ``runner`` replays the packaged test case."""
        self._instrumentation[test_package] = runner

    def am_instrument(self, test_package: str) -> None:
        """``am instrument -w <TestPackageName>
        android.test.InstrumentationTestRunner``"""
        self.command_log.append(
            f"adb shell am instrument -w {test_package} "
            "android.test.InstrumentationTestRunner"
        )
        self.tracer.inc("adb.am_instrument")
        try:
            runner = self._instrumentation[test_package]
        except KeyError:
            raise DeviceError(
                f"instrumentation {test_package} not installed"
            ) from None
        runner()

    # -- logs --------------------------------------------------------------------------------

    def logcat(self, tag: Optional[str] = None) -> List[str]:
        self.command_log.append(
            "adb logcat" + (f" -s {tag}" if tag else "")
        )
        self.tracer.inc("adb.logcat")
        return [str(e) for e in self.device.logcat.entries(tag=tag)]
