"""ADB bridge and manifest instrumentation.

The paper drives the test phone through three ADB-based methods
(Section VI-A): launching the entry Activity, running instrumented test
packages (``am instrument``), and forcibly starting Activities whose
manifest FragDroid rewrote to carry a MAIN action.  This subpackage
reproduces all three.
"""

from repro.adb.bridge import Adb
from repro.adb.instrumentation import instrument_manifest

__all__ = ["Adb", "instrument_manifest"]
