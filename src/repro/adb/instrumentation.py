"""Manifest instrumentation for forced starts.

Section VI-A, method 3: "During static analysis, we modify
AndroidManifest.xml by adding the attribute
``<action android:name="android.intent.action.MAIN"/>`` for every
Activity and use the ADB command ``am start -n <COMPONENT>`` to forcibly
start an Activity which FragDroid cannot visit by normal methods."

We perform the same rewrite on the package's manifest XML (and export
every Activity so shell starts pass the permission check), producing a
new package — the repackaged APK FragDroid installs on the phone.
"""

from __future__ import annotations

from dataclasses import replace

from repro.apk.manifest import ACTION_MAIN, IntentFilter, Manifest
from repro.apk.package import ApkPackage


def instrument_manifest(apk: ApkPackage) -> ApkPackage:
    """Return a repackaged APK whose every Activity is force-startable."""
    manifest = Manifest.from_xml(apk.manifest_xml)
    for decl in manifest.activities:
        decl.exported = True
        if not any(ACTION_MAIN in f.actions for f in decl.intent_filters):
            decl.intent_filters.append(IntentFilter(actions=[ACTION_MAIN]))
    return ApkPackage(
        package=apk.package,
        manifest_xml=manifest.to_xml(),
        smali_files=dict(apk.smali_files),
        layout_files=dict(apk.layout_files),
        public_xml=apk.public_xml,
        packed=apk.packed,
        version_name=apk.version_name + "-instrumented",
        _spec=apk.runtime_spec(),
    )
