"""Layout resources: the XML view trees bundled in an APK.

A :class:`Layout` is the *declared* widget list of an Activity or Fragment.
FragDroid's resource-dependency extraction (Algorithm 3) walks layouts and
matches widget resource-IDs against the IDs referenced from component code;
this module provides the layout side of that join, including XML
round-tripping so the static analyzer genuinely parses text artifacts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ApkError
from repro.types import WidgetKind

_KIND_TO_TAG = {
    WidgetKind.BUTTON: "Button",
    WidgetKind.TEXT_VIEW: "TextView",
    WidgetKind.EDIT_TEXT: "EditText",
    WidgetKind.CHECK_BOX: "CheckBox",
    WidgetKind.IMAGE_VIEW: "ImageView",
    WidgetKind.LIST_ITEM: "TextView",  # list rows render as text views
    WidgetKind.TAB: "TabWidget",
    WidgetKind.MENU_ITEM: "TextView",
    WidgetKind.DRAWER_ITEM: "TextView",
    WidgetKind.SPINNER: "Spinner",
    WidgetKind.SWITCH: "Switch",
}


@dataclass(frozen=True)
class LayoutElement:
    """One ``<Widget>`` element in a layout file."""

    widget_id: str
    kind: WidgetKind
    text: str = ""
    clickable: bool = True


@dataclass
class Layout:
    """A named layout resource holding an ordered list of elements.

    ``container_id`` marks the primary ``FrameLayout`` fragment
    container (the ``R.id.fragment_container`` of the paper's Figure 3
    snippet); ``extra_containers`` carry the additional panes of
    multi-pane UIs.
    """

    name: str
    elements: List[LayoutElement] = field(default_factory=list)
    container_id: Optional[str] = None
    extra_containers: List[str] = field(default_factory=list)

    def add(self, element: LayoutElement) -> None:
        if any(e.widget_id == element.widget_id for e in self.elements):
            raise ApkError(
                f"duplicate widget id {element.widget_id!r} in layout {self.name!r}"
            )
        self.elements.append(element)

    def widget_ids(self) -> List[str]:
        ids = [e.widget_id for e in self.elements]
        if self.container_id:
            ids.append(self.container_id)
        ids.extend(self.extra_containers)
        return ids

    def to_xml(self) -> str:
        """Render as an Android-style layout XML document."""
        lines = [
            '<?xml version="1.0" encoding="utf-8"?>',
            '<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android"',
            '    android:orientation="vertical">',
        ]
        for container in ([self.container_id] if self.container_id else []) \
                + self.extra_containers:
            lines.append(
                f'    <FrameLayout android:id="@+id/{container}" />'
            )
        for element in self.elements:
            tag = _KIND_TO_TAG[element.kind]
            attrs = [f'android:id="@+id/{element.widget_id}"']
            if element.text:
                attrs.append(f'android:text="{element.text}"')
            attrs.append(f'android:clickable="{str(element.clickable).lower()}"')
            attrs.append(f'repro:kind="{element.kind.name}"')
            lines.append(f'    <{tag} {" ".join(attrs)} />')
        lines.append("</LinearLayout>")
        return "\n".join(lines)

    @classmethod
    def from_xml(cls, name: str, text: str) -> "Layout":
        """Parse a layout document produced by :meth:`to_xml`."""
        layout = cls(name)
        for raw in text.splitlines():
            line = raw.strip()
            if line.startswith("<FrameLayout"):
                attrs = _attrs(line)
                container = attrs["android:id"].replace("@+id/", "")
                if layout.container_id is None:
                    layout.container_id = container
                else:
                    layout.extra_containers.append(container)
                continue
            if not line.startswith("<") or line.startswith(("<?xml", "<Linear", "</")):
                continue
            attrs = _attrs(line)
            if "android:id" not in attrs:
                continue
            kind = WidgetKind[attrs.get("repro:kind", "TEXT_VIEW")]
            layout.add(
                LayoutElement(
                    widget_id=attrs["android:id"].replace("@+id/", ""),
                    kind=kind,
                    text=attrs.get("android:text", ""),
                    clickable=attrs.get("android:clickable", "true") == "true",
                )
            )
        return layout


# Fast path: a tag body that is exactly ``Name (ws key="value")*`` parses
# to the same pairs the quote-aware tokenizer below would produce, so it
# can be read with two C-level regex passes instead of a char loop.
_FAST_TAG_RE = re.compile(
    r'^[^\s<>="]+(?P<attrs>(?:\s+[^\s="]+="[^"]*")*)\s*$'
)
_ATTR_PAIR_RE = re.compile(r'([^\s="]+)="([^"]*)"')


def _attrs(tag: str) -> Dict[str, str]:
    """Parse attributes from a single-element tag line."""
    attrs: Dict[str, str] = {}
    body = tag.strip().lstrip("<").rstrip("/>").rstrip(">")
    fast = _FAST_TAG_RE.match(body)
    if fast is not None:
        return dict(_ATTR_PAIR_RE.findall(fast.group("attrs")))
    # Slow path for anything odder: split on whitespace outside quotes.
    token = ""
    in_quotes = False
    tokens: List[str] = []
    for char in body:
        if char == '"':
            in_quotes = not in_quotes
            token += char
        elif char.isspace() and not in_quotes:
            if token:
                tokens.append(token)
            token = ""
        else:
            token += char
    if token:
        tokens.append(token)
    for part in tokens[1:]:
        if "=" not in part:
            continue
        key, _, raw = part.partition("=")
        attrs[key] = raw.strip('"')
    return attrs
