"""JSON serialization of app specs.

The behavioural spec is the package's executable payload (the DEX
role), so a saved ``.apk`` must carry it; this module round-trips every
spec type — including the full Action algebra — through plain dicts.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.apk.appspec import (
    Action,
    ActivitySpec,
    AppSpec,
    Chain,
    Crash,
    DrawerSpec,
    FinishActivity,
    FragmentFactory,
    FragmentSpec,
    InvokeApi,
    Noop,
    OpenDrawer,
    ShowDialog,
    ShowFragment,
    ShowPopupMenu,
    StartActivity,
    StartActivityByAction,
    SubmitForm,
    ToggleWidget,
    WidgetSpec,
)
from repro.errors import ApkError
from repro.types import WidgetKind


# -- actions -----------------------------------------------------------------

def action_to_dict(action: Action) -> Dict[str, Any]:
    if isinstance(action, Noop):
        return {"type": "noop"}
    if isinstance(action, StartActivity):
        return {"type": "start_activity", "target": action.target,
                "dynamic": action.dynamic}
    if isinstance(action, StartActivityByAction):
        return {"type": "start_by_action", "action": action.action,
                "dynamic": action.dynamic}
    if isinstance(action, ShowFragment):
        return {"type": "show_fragment", "fragment": action.fragment,
                "container_id": action.container_id, "mode": action.mode,
                "add_to_back_stack": action.add_to_back_stack}
    if isinstance(action, OpenDrawer):
        return {"type": "open_drawer"}
    if isinstance(action, ShowDialog):
        return {"type": "show_dialog", "message": action.message,
                "buttons": [widget_to_dict(w) for w in action.buttons]}
    if isinstance(action, ShowPopupMenu):
        return {"type": "show_popup",
                "items": [widget_to_dict(w) for w in action.items]}
    if isinstance(action, InvokeApi):
        return {"type": "invoke_api", "api": action.api}
    if isinstance(action, Crash):
        return {"type": "crash", "reason": action.reason}
    if isinstance(action, FinishActivity):
        return {"type": "finish"}
    if isinstance(action, ToggleWidget):
        return {"type": "toggle", "widget_id": action.widget_id}
    if isinstance(action, Chain):
        return {"type": "chain",
                "actions": [action_to_dict(a) for a in action.actions]}
    if isinstance(action, SubmitForm):
        return {"type": "submit_form", "required": dict(action.required),
                "rules": dict(action.rules),
                "on_success": action_to_dict(action.on_success),
                "on_failure": action_to_dict(action.on_failure)}
    raise ApkError(f"cannot serialize action {type(action).__name__}")


def action_from_dict(data: Dict[str, Any]) -> Action:
    kind = data["type"]
    if kind == "noop":
        return Noop()
    if kind == "start_activity":
        return StartActivity(data["target"], dynamic=data.get("dynamic", False))
    if kind == "start_by_action":
        return StartActivityByAction(data["action"],
                                     dynamic=data.get("dynamic", False))
    if kind == "show_fragment":
        return ShowFragment(data["fragment"], data["container_id"],
                            mode=data.get("mode", "replace"),
                            add_to_back_stack=data.get("add_to_back_stack",
                                                       False))
    if kind == "open_drawer":
        return OpenDrawer()
    if kind == "show_dialog":
        return ShowDialog(data["message"],
                          buttons=tuple(widget_from_dict(w)
                                        for w in data.get("buttons", [])))
    if kind == "show_popup":
        return ShowPopupMenu(items=tuple(widget_from_dict(w)
                                         for w in data.get("items", [])))
    if kind == "invoke_api":
        return InvokeApi(data["api"])
    if kind == "crash":
        return Crash(data.get("reason", "RuntimeException"))
    if kind == "finish":
        return FinishActivity()
    if kind == "toggle":
        return ToggleWidget(data["widget_id"])
    if kind == "chain":
        return Chain(actions=tuple(action_from_dict(a)
                                   for a in data["actions"]))
    if kind == "submit_form":
        return SubmitForm(
            required=dict(data.get("required", {})),
            rules=dict(data.get("rules", {})),
            on_success=action_from_dict(data["on_success"]),
            on_failure=action_from_dict(data["on_failure"]),
        )
    raise ApkError(f"unknown action type {kind!r}")


# -- widgets / fragments / activities ----------------------------------------------

def widget_to_dict(widget: WidgetSpec) -> Dict[str, Any]:
    out: Dict[str, Any] = {"id": widget.id, "kind": widget.kind.name,
                           "text": widget.text}
    if widget.on_click is not None:
        out["on_click"] = action_to_dict(widget.on_click)
    return out


def widget_from_dict(data: Dict[str, Any]) -> WidgetSpec:
    on_click = (action_from_dict(data["on_click"])
                if "on_click" in data else None)
    return WidgetSpec(id=data["id"], kind=WidgetKind[data["kind"]],
                      text=data.get("text", ""), on_click=on_click)


def fragment_to_dict(fragment: FragmentSpec) -> Dict[str, Any]:
    return {
        "name": fragment.name,
        "widgets": [widget_to_dict(w) for w in fragment.widgets],
        "api_calls": list(fragment.api_calls),
        "base_class": fragment.base_class,
        "factory": fragment.factory.value,
        "managed": fragment.managed,
        "requires_args": fragment.requires_args,
        "intermediate_bases": list(fragment.intermediate_bases),
    }


def fragment_from_dict(data: Dict[str, Any]) -> FragmentSpec:
    return FragmentSpec(
        name=data["name"],
        widgets=[widget_from_dict(w) for w in data.get("widgets", [])],
        api_calls=list(data.get("api_calls", [])),
        base_class=data["base_class"],
        factory=FragmentFactory(data.get("factory", "new")),
        managed=data.get("managed", True),
        requires_args=data.get("requires_args", False),
        intermediate_bases=list(data.get("intermediate_bases", [])),
    )


def activity_to_dict(activity: ActivitySpec) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": activity.name,
        "widgets": [widget_to_dict(w) for w in activity.widgets],
        "api_calls": list(activity.api_calls),
        "hosted_fragments": list(activity.hosted_fragments),
        "initial_fragment": activity.initial_fragment,
        "container_id": activity.container_id,
        "launcher": activity.launcher,
        "exported": activity.exported,
        "intent_actions": list(activity.intent_actions),
        "base_class": activity.base_class,
        "panes": [list(pane) for pane in activity.panes],
        "requires_intent_extras": activity.requires_intent_extras,
        "crashes_on_launch": activity.crashes_on_launch,
    }
    if activity.drawer is not None:
        out["drawer"] = {
            "items": [widget_to_dict(w) for w in activity.drawer.items],
            "toggle_id": activity.drawer.toggle_id,
            "navigation_view": activity.drawer.navigation_view,
        }
    return out


def activity_from_dict(data: Dict[str, Any]) -> ActivitySpec:
    drawer = None
    if "drawer" in data:
        drawer = DrawerSpec(
            items=[widget_from_dict(w) for w in data["drawer"]["items"]],
            toggle_id=data["drawer"].get("toggle_id", "drawer_toggle"),
            navigation_view=data["drawer"].get("navigation_view", False),
        )
    return ActivitySpec(
        name=data["name"],
        widgets=[widget_from_dict(w) for w in data.get("widgets", [])],
        api_calls=list(data.get("api_calls", [])),
        hosted_fragments=list(data.get("hosted_fragments", [])),
        initial_fragment=data.get("initial_fragment"),
        container_id=data.get("container_id"),
        launcher=data.get("launcher", False),
        exported=data.get("exported", False),
        intent_actions=list(data.get("intent_actions", [])),
        base_class=data["base_class"],
        drawer=drawer,
        panes=[tuple(pane) for pane in data.get("panes", [])],
        requires_intent_extras=data.get("requires_intent_extras", False),
        crashes_on_launch=data.get("crashes_on_launch", False),
    )


def spec_to_dict(spec: AppSpec) -> Dict[str, Any]:
    return {
        "package": spec.package,
        "category": spec.category,
        "downloads": spec.downloads,
        "packed": spec.packed,
        "activities": [activity_to_dict(a) for a in spec.activities],
        "fragments": [fragment_to_dict(f) for f in spec.fragments],
    }


def spec_from_dict(data: Dict[str, Any]) -> AppSpec:
    return AppSpec(
        package=data["package"],
        activities=[activity_from_dict(a) for a in data["activities"]],
        fragments=[fragment_from_dict(f) for f in data.get("fragments", [])],
        category=data.get("category", "Tools"),
        downloads=data.get("downloads", "500,000+"),
        packed=data.get("packed", False),
    )
