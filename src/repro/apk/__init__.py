"""APK package model and the declarative app specification language.

This subpackage is the substitute for real Google Play APK files: a
structured package (manifest + resource table + layout XML + dalvik
classes) compiled from a high-level :class:`~repro.apk.appspec.AppSpec`.
Static analysis consumes only the compiled artifacts; the emulator executes
the behavioural spec — the tool under test never sees the spec directly.
"""

from repro.apk.appspec import (
    Action,
    ActivitySpec,
    AppSpec,
    Chain,
    Crash,
    DrawerSpec,
    FinishActivity,
    FragmentFactory,
    FragmentSpec,
    InvokeApi,
    Noop,
    OpenDrawer,
    ShowDialog,
    ShowFragment,
    ShowPopupMenu,
    StartActivity,
    StartActivityByAction,
    SubmitForm,
    ToggleWidget,
    WidgetSpec,
)
from repro.apk.builder import build_apk
from repro.apk.layout import Layout
from repro.apk.manifest import ActivityDecl, IntentFilter, Manifest
from repro.apk.package import ApkPackage, digest_many
from repro.apk.resources import ResourceTable

__all__ = [
    "Action",
    "ActivityDecl",
    "ActivitySpec",
    "ApkPackage",
    "AppSpec",
    "Chain",
    "Crash",
    "DrawerSpec",
    "FinishActivity",
    "FragmentFactory",
    "FragmentSpec",
    "IntentFilter",
    "InvokeApi",
    "Layout",
    "Manifest",
    "Noop",
    "OpenDrawer",
    "ResourceTable",
    "ShowDialog",
    "ShowFragment",
    "ShowPopupMenu",
    "StartActivity",
    "StartActivityByAction",
    "SubmitForm",
    "ToggleWidget",
    "WidgetSpec",
    "build_apk",
    "digest_many",
]
