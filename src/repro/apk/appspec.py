"""Declarative application specifications.

An :class:`AppSpec` describes an Android app the way its developer wrote
it: Activities hosting Fragments, widgets with click handlers, navigation
drawers, login gates, sensitive-API calls.  Two independent consumers use
a spec:

* :func:`repro.apk.builder.build_apk` *compiles* it into static artifacts
  (manifest XML, smali classes, layout XML) that the FragDroid static
  analyzer parses — warts and all (runtime-computed actions, custom
  fragment factories, packed DEX);
* :mod:`repro.android.app_runtime` *executes* it inside the device
  emulator, so the dynamic explorer sees real lifecycle, navigation and
  API behaviour.

The tool under test only ever touches the compiled artifacts and the
emulator UI, never the spec itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ApkError
from repro.types import WidgetKind

FRAGMENT_BASE = "android.app.Fragment"
SUPPORT_FRAGMENT_BASE = "android.support.v4.app.Fragment"
ACTIVITY_BASE = "android.app.Activity"
SUPPORT_ACTIVITY_BASE = "android.support.v4.app.FragmentActivity"


# ---------------------------------------------------------------------------
# Actions: what a click handler does
# ---------------------------------------------------------------------------

class Action:
    """Base class for widget behaviours. Purely declarative."""

    def children(self) -> Sequence["Action"]:
        return ()


@dataclass(frozen=True)
class Noop(Action):
    """The click is handled but nothing observable happens."""


@dataclass(frozen=True)
class StartActivity(Action):
    """``startActivity(new Intent(this, Target.class))``.

    ``dynamic`` models targets computed at runtime (class loaded via
    reflection or a name built from strings): the compiled smali carries
    no ``const-class``, so static analysis cannot add the edge, but the
    emulator still performs the transition — exactly the situation that
    forces AFTM updates during dynamic testing.
    """

    target: str  # simple or fully-qualified activity class name
    dynamic: bool = False


@dataclass(frozen=True)
class StartActivityByAction(Action):
    """``startActivity(new Intent("some.action.STRING"))``."""

    action: str
    dynamic: bool = False


@dataclass(frozen=True)
class ShowFragment(Action):
    """A FragmentTransaction replacing/adding a fragment in a container.

    ``add_to_back_stack`` mirrors ``FragmentTransaction.addToBackStack``:
    the back key then reverses the transaction before popping the
    Activity.
    """

    fragment: str
    container_id: str
    mode: str = "replace"  # or "add"
    add_to_back_stack: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("replace", "add"):
            raise ApkError(f"bad fragment transaction mode: {self.mode!r}")


@dataclass(frozen=True)
class OpenDrawer(Action):
    """Open the navigation drawer (Figure 2's hidden slide menu)."""


@dataclass(frozen=True)
class ShowDialog(Action):
    """Pop a modal dialog with the given message and button widgets."""

    message: str
    buttons: Sequence["WidgetSpec"] = ()


@dataclass(frozen=True)
class ShowPopupMenu(Action):
    """Anchor a popup menu (the action-bar overflows of Section VII-B)."""

    items: Sequence["WidgetSpec"] = ()


@dataclass(frozen=True)
class InvokeApi(Action):
    """Invoke a sensitive API (XPrivacy-catalogued) from this component."""

    api: str


@dataclass(frozen=True)
class Crash(Action):
    """Force-close the app (FC) — Section VI-A's crash handling path."""

    reason: str = "RuntimeException"


@dataclass(frozen=True)
class FinishActivity(Action):
    """``finish()`` the current activity."""


@dataclass(frozen=True)
class ToggleWidget(Action):
    """Flip a checkbox/switch state; no navigation effect."""

    widget_id: str


@dataclass(frozen=True)
class Chain(Action):
    """Run several actions in order (e.g. log an API then navigate)."""

    actions: Sequence[Action]

    def children(self) -> Sequence[Action]:
        return tuple(self.actions)


@dataclass(frozen=True)
class SubmitForm(Action):
    """Validate EditText contents and branch.

    Models login screens and strict search boxes (the
    ``com.weather.Weather`` failure in Section VII-B): ``required`` maps
    EditText widget ids to the exact accepted value, and ``rules`` maps
    widget ids to named value classes ("city", "email", ... — see
    :mod:`repro.apk.inputs`).  All constraints must hold for
    ``on_success`` to run; otherwise ``on_failure`` (default: an error
    dialog).
    """

    required: Dict[str, str] = None  # type: ignore[assignment]
    on_success: Action = Noop()
    on_failure: Action = ShowDialog("Invalid input")
    rules: Dict[str, str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.required is None:
            object.__setattr__(self, "required", {})
        if self.rules is None:
            object.__setattr__(self, "rules", {})
        if not self.required and not self.rules:
            raise ApkError("SubmitForm needs at least one constraint")

    def field_ids(self) -> Sequence[str]:
        return tuple(sorted(set(self.required) | set(self.rules)))

    def children(self) -> Sequence[Action]:
        return (self.on_success, self.on_failure)


# ---------------------------------------------------------------------------
# Widgets, fragments, activities
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WidgetSpec:
    """A single widget with an optional click behaviour."""

    id: str
    kind: WidgetKind = WidgetKind.BUTTON
    text: str = ""
    on_click: Optional[Action] = None

    def __post_init__(self) -> None:
        if not self.id:
            raise ApkError("widget id must be non-empty")
        if self.on_click is not None and not self.kind.clickable:
            raise ApkError(
                f"widget {self.id!r} of kind {self.kind.name} cannot have a handler"
            )


class FragmentFactory(enum.Enum):
    """How the host code constructs the fragment instance.

    Algorithm 1 recognises ``new F1()`` and ``F1.newInstance()``; a
    ``CUSTOM`` factory (dependency-injected or reflective construction)
    is invisible to static analysis and the edge only appears at runtime.
    """

    NEW = "new"
    NEW_INSTANCE = "newInstance"
    CUSTOM = "custom"


@dataclass
class FragmentSpec:
    """One Fragment class.

    ``managed`` is False for fragments inflated straight into the view
    hierarchy without a FragmentManager (the ``com.mobilemotion.dubsmash``
    failure mode); ``requires_args`` is True when ``newInstance`` needs
    parameters, so reflective instantiation fails (the
    ``com.inditex.zara`` failure mode).
    """

    name: str
    widgets: List[WidgetSpec] = field(default_factory=list)
    api_calls: List[str] = field(default_factory=list)
    base_class: str = FRAGMENT_BASE
    factory: FragmentFactory = FragmentFactory.NEW
    managed: bool = True
    requires_args: bool = False
    # Extra superclass hops between this class and the fragment base,
    # exercising the transitive .super-chain scan of Section IV-B.2.
    intermediate_bases: List[str] = field(default_factory=list)

    @property
    def layout_name(self) -> str:
        return f"fragment_{_snake(self.name)}"


@dataclass
class DrawerSpec:
    """A navigation drawer: hidden until opened via icon or swipe.

    ``navigation_view`` models the material-design NavigationView whose
    rows are menu entries rendered by the widget internally, not child
    Views — "the transition of Activities in navigation view drawer
    cannot be operated directly" (Section VII-B).  Automation tools see
    the rows but cannot click them; the transitions they hide are only
    reachable through forced starts.
    """

    items: List[WidgetSpec] = field(default_factory=list)
    # The id of the hamburger icon that opens the drawer (auto-added).
    toggle_id: str = "drawer_toggle"
    navigation_view: bool = False


@dataclass
class ActivitySpec:
    """One Activity class with its layout, fragments and behaviours."""

    name: str
    widgets: List[WidgetSpec] = field(default_factory=list)
    api_calls: List[str] = field(default_factory=list)
    hosted_fragments: List[str] = field(default_factory=list)
    initial_fragment: Optional[str] = None
    container_id: Optional[str] = None
    launcher: bool = False
    exported: bool = False
    intent_actions: List[str] = field(default_factory=list)
    base_class: str = ACTIVITY_BASE
    drawer: Optional[DrawerSpec] = None
    # Multi-pane UIs (Section II-B): additional (container_id, fragment)
    # pairs attached in onCreate alongside the initial fragment, so
    # several Fragments are on screen simultaneously.
    panes: List[Tuple[str, str]] = field(default_factory=list)
    # Forced starts deliver an empty Intent; activities whose onCreate
    # requires extras finish immediately (Section VII-B, material-design
    # navigation targets).
    requires_intent_extras: bool = False
    # Crash in onCreate — makes the activity unreachable dynamically.
    crashes_on_launch: bool = False

    def __post_init__(self) -> None:
        if self.initial_fragment and self.initial_fragment not in self.hosted_fragments:
            self.hosted_fragments.append(self.initial_fragment)
        for _container, fragment in self.panes:
            if fragment not in self.hosted_fragments:
                self.hosted_fragments.append(fragment)
        if (self.hosted_fragments or self.initial_fragment) and not self.container_id:
            self.container_id = "fragment_container"

    @property
    def layout_name(self) -> str:
        return f"activity_{_snake(self.name)}"

    @property
    def uses_support_library(self) -> bool:
        return self.base_class == SUPPORT_ACTIVITY_BASE

    def all_widgets(self) -> List[WidgetSpec]:
        """Layout widgets plus the drawer toggle and items when present."""
        widgets = list(self.widgets)
        if self.drawer:
            widgets.append(
                WidgetSpec(
                    id=self.drawer.toggle_id,
                    kind=WidgetKind.BUTTON,
                    text="≡",
                    on_click=OpenDrawer(),
                )
            )
            widgets.extend(self.drawer.items)
        return widgets


@dataclass
class AppSpec:
    """A whole application."""

    package: str
    activities: List[ActivitySpec] = field(default_factory=list)
    fragments: List[FragmentSpec] = field(default_factory=list)
    category: str = "Tools"
    downloads: str = "500,000+"
    packed: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        names = [a.name for a in self.activities]
        if len(names) != len(set(names)):
            raise ApkError(f"duplicate activity names in {self.package}")
        fnames = [f.name for f in self.fragments]
        if len(fnames) != len(set(fnames)):
            raise ApkError(f"duplicate fragment names in {self.package}")
        launchers = [a for a in self.activities if a.launcher]
        if self.activities and len(launchers) != 1:
            raise ApkError(
                f"{self.package}: expected exactly one launcher activity, "
                f"got {len(launchers)}"
            )
        known = set(fnames)
        for activity in self.activities:
            for fragment in activity.hosted_fragments:
                if fragment not in known:
                    raise ApkError(
                        f"{self.package}: activity {activity.name} hosts "
                        f"undeclared fragment {fragment}"
                    )

    def qualify(self, simple_name: str) -> str:
        """Fully qualify a class name against this package."""
        if "." in simple_name:
            return simple_name
        return f"{self.package}.{simple_name}"

    def activity(self, name: str) -> ActivitySpec:
        simple = name.rsplit(".", 1)[-1]
        for spec in self.activities:
            if spec.name == simple:
                return spec
        raise ApkError(f"{self.package}: no activity named {name!r}")

    def fragment(self, name: str) -> FragmentSpec:
        simple = name.rsplit(".", 1)[-1]
        for spec in self.fragments:
            if spec.name == simple:
                return spec
        raise ApkError(f"{self.package}: no fragment named {name!r}")

    @property
    def launcher(self) -> ActivitySpec:
        for spec in self.activities:
            if spec.launcher:
                return spec
        raise ApkError(f"{self.package}: no launcher activity")

    def uses_fragments(self) -> bool:
        return bool(self.fragments)


@lru_cache(maxsize=None)
def _snake(name: str) -> str:
    out = []
    for index, char in enumerate(name):
        if char.isupper() and index:
            out.append("_")
        out.append(char.lower())
    return "".join(out)
