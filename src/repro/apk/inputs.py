"""Input validation rules for form widgets.

Real apps accept *classes* of values — an existing city name for a
weather search, a well-formed email for a signup form — rather than one
magic string.  A :class:`~repro.apk.appspec.SubmitForm` can therefore
constrain a field either to an exact value (``required``) or to a named
rule (``rules``), validated here.  The heuristic input generator
(:mod:`repro.core.inputgen`) produces values that satisfy these rules
from widget-context keywords, reproducing the paper's cited
input-generation techniques (Section V-C) and its future-work direction
(Section VIII).
"""

from __future__ import annotations

import re
from typing import Callable, Dict

# A small gazetteer: the values a weather app's place search would
# accept.  The heuristic generator draws from the same list; a random
# filler like "abc" is rejected, as the paper describes for
# TheWeatherChannel.
KNOWN_CITIES = frozenset(
    {"Boston", "Beijing", "Berlin", "Bogota", "Cairo", "Delhi", "Jinan",
     "Lagos", "Lima", "London", "Madrid", "Moscow", "Nairobi", "Osaka",
     "Paris", "Quito", "Rome", "Seoul", "Sydney", "Tokyo"}
)

_EMAIL_RE = re.compile(r"^[\w.+-]+@[\w-]+\.[\w.]+$")
_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_PHONE_RE = re.compile(r"^\+?\d{7,15}$")
_URL_RE = re.compile(r"^https?://[\w.-]+(/.*)?$")


def _nonempty(value: str) -> bool:
    return bool(value.strip())


def _city(value: str) -> bool:
    return value in KNOWN_CITIES


def _email(value: str) -> bool:
    return _EMAIL_RE.match(value) is not None


def _numeric(value: str) -> bool:
    return value.isdigit() and bool(value)


def _date(value: str) -> bool:
    return _DATE_RE.match(value) is not None


def _phone(value: str) -> bool:
    return _PHONE_RE.match(value) is not None


def _url(value: str) -> bool:
    return _URL_RE.match(value) is not None


VALIDATORS: Dict[str, Callable[[str], bool]] = {
    "nonempty": _nonempty,
    "city": _city,
    "email": _email,
    "numeric": _numeric,
    "date": _date,
    "phone": _phone,
    "url": _url,
}


def validate(rule: str, value: str) -> bool:
    """Does ``value`` satisfy the named rule?"""
    try:
        validator = VALIDATORS[rule]
    except KeyError:
        raise KeyError(f"unknown input rule: {rule!r}") from None
    return validator(value)
