"""Android-style resource table.

Real Android assigns every resource a unique 32-bit ID of the form
``0x7fTTEEEE`` (package 0x7f, type byte, entry index).  FragDroid's
resource-dependency analysis (Algorithm 3 in the paper) keys entirely on
these IDs, so the table reproduces the same structure: typed namespaces
(``id``, ``layout``, ``string``) with stable, unique numeric values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ResourceError
from repro.types import RESOURCE_ID_BASE, ResourceId

# Type bytes follow the aapt convention closely enough for our purposes.
_TYPE_CODES = {
    "id": 0x01,
    "layout": 0x02,
    "string": 0x03,
    "drawable": 0x04,
    "menu": 0x05,
}


@dataclass
class ResourceTable:
    """A per-package registry of symbolic resource names to numeric IDs."""

    package: str
    _entries: Dict[Tuple[str, str], ResourceId] = field(default_factory=dict)
    _by_value: Dict[int, Tuple[str, str]] = field(default_factory=dict)
    _counters: Dict[str, int] = field(default_factory=dict)

    def define(self, rtype: str, name: str) -> ResourceId:
        """Register ``R.<rtype>.<name>`` and return its ID.

        Defining the same name twice returns the existing ID (resources are
        idempotent, like aapt merging duplicate declarations).
        """
        if rtype not in _TYPE_CODES:
            raise ResourceError(f"unknown resource type: {rtype!r}")
        key = (rtype, name)
        if key in self._entries:
            return self._entries[key]
        index = self._counters.get(rtype, 0) + 1
        if index > 0xFFFF:
            raise ResourceError(f"resource type {rtype!r} overflow")
        self._counters[rtype] = index
        value = RESOURCE_ID_BASE | (_TYPE_CODES[rtype] << 16) | index
        rid = ResourceId(value, name)
        self._entries[key] = rid
        self._by_value[value] = key
        return rid

    def lookup(self, rtype: str, name: str) -> ResourceId:
        try:
            return self._entries[(rtype, name)]
        except KeyError:
            raise ResourceError(f"undefined resource R.{rtype}.{name}") from None

    def get(self, rtype: str, name: str) -> Optional[ResourceId]:
        return self._entries.get((rtype, name))

    def reverse(self, value: int) -> Tuple[str, str]:
        """Map a numeric ID back to ``(type, name)``."""
        try:
            return self._by_value[value]
        except KeyError:
            raise ResourceError(f"no resource with id {value:#x}") from None

    def name_of(self, value: int) -> str:
        return self.reverse(value)[1]

    def entries(self, rtype: Optional[str] = None) -> Iterator[Tuple[str, str, ResourceId]]:
        """Iterate ``(type, name, id)`` triples, optionally filtered by type."""
        for (etype, name), rid in sorted(self._entries.items()):
            if rtype is None or etype == rtype:
                yield etype, name, rid

    def __len__(self) -> int:
        return len(self._entries)

    def to_public_xml(self) -> str:
        """Render the table in the ``public.xml`` format apktool emits."""
        lines = ['<?xml version="1.0" encoding="utf-8"?>', "<resources>"]
        for rtype, name, rid in self.entries():
            lines.append(
                f'    <public type="{rtype}" name="{name}" id="{rid.hex}" />'
            )
        lines.append("</resources>")
        return "\n".join(lines)

    @classmethod
    def from_public_xml(cls, package: str, text: str) -> "ResourceTable":
        """Parse a ``public.xml`` back into a table (apktool round trip)."""
        table = cls(package)
        for line in text.splitlines():
            line = line.strip()
            if not line.startswith("<public "):
                continue
            attrs = _parse_attrs(line)
            rtype, name = attrs["type"], attrs["name"]
            value = int(attrs["id"], 16)
            rid = ResourceId(value, name)
            table._entries[(rtype, name)] = rid
            table._by_value[value] = (rtype, name)
            index = value & 0xFFFF
            table._counters[rtype] = max(table._counters.get(rtype, 0), index)
        return table


def _parse_attrs(tag: str) -> Dict[str, str]:
    """Tiny attribute parser for the single-tag XML lines we emit."""
    attrs: Dict[str, str] = {}
    parts = tag.replace("/>", "").replace(">", "").split()
    for part in parts[1:]:
        if "=" not in part:
            continue
        key, _, raw = part.partition("=")
        attrs[key] = raw.strip('"')
    return attrs
