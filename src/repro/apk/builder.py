"""Compile an :class:`AppSpec` into an :class:`ApkPackage`.

This is the stand-in for the app developer's toolchain (javac + d8 +
aapt): it lowers the declarative spec into real artifacts — manifest XML,
layout XML, a resource table and smali classes whose instruction
sequences contain exactly the idioms the paper's Algorithm 1 greps for
(``new Intent(ctx, Cls.class)``, ``FragmentTransaction.replace`` chains,
``F.newInstance()`` …) as well as the idioms it *cannot* resolve
(runtime-built action strings, ``Class.forName`` on mangled names,
fragments attached without a FragmentManager).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apk.appspec import (
    Action,
    ActivitySpec,
    AppSpec,
    Chain,
    Crash,
    FinishActivity,
    FragmentFactory,
    FragmentSpec,
    InvokeApi,
    Noop,
    OpenDrawer,
    ShowDialog,
    ShowFragment,
    ShowPopupMenu,
    StartActivity,
    StartActivityByAction,
    SubmitForm,
    ToggleWidget,
    WidgetSpec,
    SUPPORT_ACTIVITY_BASE,
)
from repro.apk.layout import Layout, LayoutElement
from repro.apk.manifest import (
    ACTION_MAIN,
    CATEGORY_LAUNCHER,
    ActivityDecl,
    IntentFilter,
    Manifest,
)
from repro.apk.package import ApkPackage
from repro.apk.resources import ResourceTable
from repro.smali.assemble import print_class
from repro.smali.model import MethodRef, SmaliClass, SmaliField, SmaliMethod

_VIEW = "android.view.View"
_INTENT = "android.content.Intent"
_LISTENER = "android.view.View$OnClickListener"
_FRAGMENT_MANAGER = "android.app.FragmentManager"
_SUPPORT_FRAGMENT_MANAGER = "android.support.v4.app.FragmentManager"
_FRAGMENT_TRANSACTION = "android.app.FragmentTransaction"
_SUPPORT_FRAGMENT_TRANSACTION = "android.support.v4.app.FragmentTransaction"


def mangle(name: str) -> str:
    """The 'obfuscation' applied to runtime-resolved class/action names.

    A simple reversible transform (string reversal).  What matters is that
    the static analyzer cannot regex-match the original identifier out of
    the ``const-string`` — the same situation as a proguarded
    ``Class.forName(decrypt(...))`` in a real app.
    """
    return name[::-1]


def build_apk(spec: AppSpec) -> ApkPackage:
    """Compile ``spec`` into a package with text artifacts."""
    builder = _Builder(spec)
    return builder.build()


class _Builder:
    def __init__(self, spec: AppSpec) -> None:
        self.spec = spec
        self.resources = ResourceTable(spec.package)
        self.classes: List[SmaliClass] = []
        self.layouts: Dict[str, Layout] = {}
        self._needs_router = False
        # Inner-class numbering per outer class (Owner$1, Owner$2, ...).
        self._listener_seq: Dict[str, int] = {}

    # -- top level ----------------------------------------------------------

    def build(self) -> ApkPackage:
        self._assign_resources()
        manifest = self._build_manifest()
        for activity in self.spec.activities:
            self._compile_activity(activity)
        for fragment in self.spec.fragments:
            self._compile_fragment(fragment)
        if self._needs_router:
            self.classes.append(self._router_class())
        smali_files = {c.file_name: print_class(c) for c in self.classes}
        layout_files = {
            f"res/layout/{name}.xml": layout.to_xml()
            for name, layout in sorted(self.layouts.items())
        }
        return ApkPackage(
            package=self.spec.package,
            manifest_xml=manifest.to_xml(),
            smali_files=smali_files,
            layout_files=layout_files,
            public_xml=self.resources.to_public_xml(),
            packed=self.spec.packed,
            _spec=self.spec,
        )

    # -- resources & layouts -------------------------------------------------

    def _assign_resources(self) -> None:
        for activity in self.spec.activities:
            layout = Layout(activity.layout_name)
            self.resources.define("layout", activity.layout_name)
            if activity.container_id:
                layout.container_id = activity.container_id
                self.resources.define("id", activity.container_id)
            for container, _fragment in activity.panes:
                if container not in layout.extra_containers \
                        and container != activity.container_id:
                    layout.extra_containers.append(container)
                    self.resources.define("id", container)
            for widget in activity.all_widgets():
                self.resources.define("id", widget.id)
                layout.add(_element(widget))
            self.layouts[activity.layout_name] = layout
        for fragment in self.spec.fragments:
            if not fragment.managed:
                # Dubsmash-style fragments build their views in code: no
                # layout resource, no stable widget IDs for Algorithm 3.
                continue
            layout = Layout(fragment.layout_name)
            self.resources.define("layout", fragment.layout_name)
            for widget in fragment.widgets:
                self.resources.define("id", widget.id)
                layout.add(_element(widget))
            self.layouts[fragment.layout_name] = layout

    def _build_manifest(self) -> Manifest:
        manifest = Manifest(self.spec.package)
        for activity in self.spec.activities:
            filters: List[IntentFilter] = []
            if activity.launcher:
                filters.append(
                    IntentFilter(actions=[ACTION_MAIN],
                                 categories=[CATEGORY_LAUNCHER])
                )
            for action in activity.intent_actions:
                filters.append(
                    IntentFilter(
                        actions=[action],
                        categories=["android.intent.category.DEFAULT"],
                    )
                )
            manifest.add_activity(
                ActivityDecl(
                    name=self.spec.qualify(activity.name),
                    exported=activity.exported or activity.launcher,
                    intent_filters=filters,
                )
            )
        return manifest

    # -- activities ----------------------------------------------------------

    def _compile_activity(self, activity: ActivitySpec) -> None:
        qualified = self.spec.qualify(activity.name)
        cls = SmaliClass(
            name=qualified,
            super_name=activity.base_class,
            source=f"{activity.name}.java",
        )
        on_create = cls.add_method(
            SmaliMethod(name="onCreate", params=["android.os.Bundle"])
        )
        on_create.emit(
            "invoke-super", "p0", "p1",
            MethodRef(activity.base_class, "onCreate", ("android.os.Bundle",)),
        )
        layout_id = self.resources.lookup("layout", activity.layout_name)
        on_create.emit("const", "v0", layout_id.value)
        on_create.emit(
            "invoke-virtual", "p0", "v0",
            MethodRef(qualified, "setContentView", ("int",)),
        )
        if activity.requires_intent_extras:
            on_create.emit(
                "invoke-virtual", "p0",
                MethodRef(qualified, "getIntent", (), _INTENT),
            )
            on_create.emit("move-result-object", "v0")
            on_create.emit(
                "invoke-virtual", "v0",
                MethodRef(_INTENT, "getExtras", (), "android.os.Bundle"),
            )
        for api in activity.api_calls:
            self._emit_api_call(on_create, api)
        if activity.initial_fragment:
            fragment = self.spec.fragment(activity.initial_fragment)
            self._emit_fragment_transaction(
                on_create, host_cls=qualified, host_spec=activity,
                fragment=fragment,
                container_id=activity.container_id or "fragment_container",
                mode="replace", self_reg="p0",
            )
        for container, fragment_name in activity.panes:
            self._emit_fragment_transaction(
                on_create, host_cls=qualified, host_spec=activity,
                fragment=self.spec.fragment(fragment_name),
                container_id=container, mode="add", self_reg="p0",
            )
        listeners = self._emit_listener_registrations(
            cls, on_create, activity.all_widgets(), owner_is_activity=True,
            owner_spec=activity,
        )
        if activity.crashes_on_launch:
            self._emit_crash(on_create, "crash in onCreate")
        on_create.emit("return-void")
        self.classes.append(cls)
        self.classes.extend(listeners)

    # -- fragments -----------------------------------------------------------

    def _compile_fragment(self, fragment: FragmentSpec) -> None:
        qualified = self.spec.qualify(fragment.name)
        # Emit the intermediate inheritance hops first, innermost last.
        super_name = fragment.base_class
        for base in fragment.intermediate_bases:
            base_qualified = self.spec.qualify(base)
            if all(c.name != base_qualified for c in self.classes):
                intermediate = SmaliClass(
                    name=base_qualified, super_name=super_name,
                    source=f"{base}.java",
                )
                ctor = intermediate.add_method(SmaliMethod(name="<init>"))
                ctor.emit("invoke-direct", "p0", MethodRef(super_name, "<init>"))
                ctor.emit("return-void")
                self.classes.append(intermediate)
            super_name = base_qualified
        cls = SmaliClass(
            name=qualified, super_name=super_name,
            source=f"{fragment.name}.java",
        )
        ctor = cls.add_method(SmaliMethod(name="<init>"))
        ctor.emit("invoke-direct", "p0", MethodRef(super_name, "<init>"))
        ctor.emit("return-void")
        if fragment.factory is FragmentFactory.NEW_INSTANCE:
            params = ["java.lang.String"] if fragment.requires_args else []
            factory = cls.add_method(
                SmaliMethod(name="newInstance", params=params,
                            ret=qualified, static=True)
            )
            factory.emit("new-instance", "v0", qualified)
            factory.emit("invoke-direct", "v0", MethodRef(qualified, "<init>"))
            factory.emit("return-object", "v0")
        on_create_view = cls.add_method(
            SmaliMethod(
                name="onCreateView",
                params=["android.view.LayoutInflater",
                        "android.view.ViewGroup", "android.os.Bundle"],
                ret=_VIEW,
            )
        )
        if fragment.managed:
            layout_id = self.resources.lookup("layout", fragment.layout_name)
            on_create_view.emit("const", "v0", layout_id.value)
            on_create_view.emit(
                "invoke-virtual", "p1", "v0", "p2",
                MethodRef("android.view.LayoutInflater", "inflate",
                          ("int", "android.view.ViewGroup"), _VIEW),
            )
            on_create_view.emit("move-result-object", "v1")
        else:
            # Programmatic view construction: no layout resource involved.
            on_create_view.emit("new-instance", "v1", "android.widget.LinearLayout")
            on_create_view.emit(
                "invoke-direct", "v1", "p0",
                MethodRef("android.widget.LinearLayout", "<init>",
                          ("java.lang.Object",)),
            )
        for api in fragment.api_calls:
            self._emit_api_call(on_create_view, api)
        listeners = self._emit_listener_registrations(
            cls, on_create_view, fragment.widgets, owner_is_activity=False,
            owner_spec=fragment,
        )
        on_create_view.emit("return-object", "v1")
        self.classes.append(cls)
        self.classes.extend(listeners)

    # -- listeners -----------------------------------------------------------

    def _emit_listener_registrations(
        self,
        owner: SmaliClass,
        method: SmaliMethod,
        widgets: List[WidgetSpec],
        owner_is_activity: bool,
        owner_spec: object,
    ) -> List[SmaliClass]:
        """findViewById + setOnClickListener for every handled widget,
        producing one ``Owner$N`` listener class per handler."""
        listeners: List[SmaliClass] = []
        for widget in widgets:
            if widget.on_click is None:
                continue
            listener_name = self._next_listener_name(owner.name)
            rid = self.resources.get("id", widget.id)
            if rid is not None:
                method.emit("const", "v2", rid.value)
                if owner_is_activity:
                    method.emit(
                        "invoke-virtual", "p0", "v2",
                        MethodRef(owner.name, "findViewById", ("int",), _VIEW),
                    )
                else:
                    method.emit(
                        "invoke-virtual", "v1", "v2",
                        MethodRef(_VIEW, "findViewById", ("int",), _VIEW),
                    )
                method.emit("move-result-object", "v3")
            else:
                method.emit("new-instance", "v3", "android.widget.Button")
            method.emit("new-instance", "v4", listener_name)
            method.emit(
                "invoke-direct", "v4", "p0",
                MethodRef(listener_name, "<init>", (owner.name,)),
            )
            method.emit(
                "invoke-virtual", "v3", "v4",
                MethodRef(_VIEW, "setOnClickListener", (_LISTENER,)),
            )
            listeners.append(
                self._listener_class(
                    listener_name, owner, widget.on_click,
                    owner_is_activity, owner_spec,
                )
            )
        return listeners

    def _next_listener_name(self, owner_name: str) -> str:
        seq = self._listener_seq.get(owner_name, 0) + 1
        self._listener_seq[owner_name] = seq
        return f"{owner_name}${seq}"

    def _listener_class(
        self,
        name: str,
        owner: SmaliClass,
        action: Action,
        owner_is_activity: bool,
        owner_spec: object,
    ) -> SmaliClass:
        cls = SmaliClass(
            name=name,
            super_name="java.lang.Object",
            interfaces=[_LISTENER],
            source=f"{owner.simple_name}.java",
        )
        cls.fields.append(SmaliField(name="this$0", type=owner.name))
        ctor = cls.add_method(SmaliMethod(name="<init>", params=[owner.name]))
        ctor.emit("iput-object", "p1", "p0",
                  f"{name}->this$0:{owner.name}")
        ctor.emit("invoke-direct", "p0", MethodRef("java.lang.Object", "<init>"))
        ctor.emit("return-void")
        on_click = cls.add_method(SmaliMethod(name="onClick", params=[_VIEW]))
        on_click.emit("iget-object", "v5", "p0",
                      f"{name}->this$0:{owner.name}")
        self._lower_action(
            on_click, action, outer_cls=owner.name,
            outer_is_activity=owner_is_activity, owner_spec=owner_spec,
        )
        on_click.emit("return-void")
        # Menu items and dialog buttons carry their own handlers — each
        # becomes a further inner class (OnMenuItemClickListener /
        # DialogInterface.OnClickListener in real code).  Without this,
        # transitions reachable only through popups would not even exist
        # statically; with it, Algorithm 1 finds the edge while the
        # dynamic phase (which dismisses popups) still cannot fire it.
        for nested in _nested_handler_actions(action):
            nested_name = self._next_listener_name(owner.name)
            self.classes.append(
                self._listener_class(
                    nested_name, owner, nested, owner_is_activity, owner_spec
                )
            )
        return cls

    # -- action lowering -------------------------------------------------------

    def _lower_action(
        self,
        method: SmaliMethod,
        action: Action,
        outer_cls: str,
        outer_is_activity: bool,
        owner_spec: object,
    ) -> None:
        if isinstance(action, Noop):
            method.emit("nop")
        elif isinstance(action, Chain):
            for child in action.actions:
                self._lower_action(method, child, outer_cls,
                                   outer_is_activity, owner_spec)
        elif isinstance(action, StartActivity):
            self._emit_start_activity(method, action, outer_cls,
                                      outer_is_activity)
        elif isinstance(action, StartActivityByAction):
            self._emit_start_by_action(method, action, outer_cls,
                                       outer_is_activity)
        elif isinstance(action, ShowFragment):
            fragment = self.spec.fragment(action.fragment)
            host_spec = self._host_activity_spec(owner_spec, outer_is_activity)
            self._emit_fragment_transaction(
                method, host_cls=self._host_cls(outer_cls, outer_is_activity,
                                                host_spec),
                host_spec=host_spec, fragment=fragment,
                container_id=action.container_id, mode=action.mode,
                self_reg="v5", via_get_activity=not outer_is_activity,
                add_to_back_stack=action.add_to_back_stack,
            )
        elif isinstance(action, OpenDrawer):
            method.emit("const/4", "v0", 3)  # GravityCompat.START
            method.emit(
                "invoke-virtual", "v5", "v0",
                MethodRef("android.support.v4.widget.DrawerLayout",
                          "openDrawer", ("int",)),
            )
        elif isinstance(action, ShowDialog):
            method.emit("new-instance", "v0", "android.app.AlertDialog$Builder")
            method.emit(
                "invoke-direct", "v0", "v5",
                MethodRef("android.app.AlertDialog$Builder", "<init>",
                          ("android.content.Context",)),
            )
            method.emit("const-string", "v1", action.message)
            method.emit(
                "invoke-virtual", "v0", "v1",
                MethodRef("android.app.AlertDialog$Builder", "setMessage",
                          ("java.lang.String",),
                          "android.app.AlertDialog$Builder"),
            )
            method.emit(
                "invoke-virtual", "v0",
                MethodRef("android.app.AlertDialog$Builder", "show", (),
                          "android.app.AlertDialog"),
            )
        elif isinstance(action, ShowPopupMenu):
            method.emit("new-instance", "v0", "android.widget.PopupMenu")
            method.emit(
                "invoke-direct", "v0", "v5",
                MethodRef("android.widget.PopupMenu", "<init>",
                          ("android.content.Context",)),
            )
            method.emit(
                "invoke-virtual", "v0",
                MethodRef("android.widget.PopupMenu", "show"),
            )
        elif isinstance(action, InvokeApi):
            self._emit_api_call(method, action.api)
        elif isinstance(action, Crash):
            method.emit("new-instance", "v0", "java.lang.RuntimeException")
            method.emit("const-string", "v1", action.reason)
            method.emit(
                "invoke-direct", "v0", "v1",
                MethodRef("java.lang.RuntimeException", "<init>",
                          ("java.lang.String",)),
            )
            method.emit(
                "invoke-static", "v0",
                MethodRef("java.lang.Thread", "dispatchUncaughtException",
                          ("java.lang.RuntimeException",)),
            )
        elif isinstance(action, FinishActivity):
            if outer_is_activity:
                method.emit("invoke-virtual", "v5",
                            MethodRef(outer_cls, "finish"))
            else:
                self._emit_get_activity(method, outer_cls, "v5", "v5")
                method.emit("invoke-virtual", "v5",
                            MethodRef("android.app.Activity", "finish"))
        elif isinstance(action, ToggleWidget):
            rid = self.resources.get("id", action.widget_id)
            if rid is not None:
                method.emit("const", "v0", rid.value)
                method.emit(
                    "invoke-virtual", "v5", "v0",
                    MethodRef(outer_cls, "findViewById", ("int",), _VIEW),
                )
                method.emit("move-result-object", "v0")
            method.emit("const/4", "v1", 1)
            method.emit(
                "invoke-virtual", "v0", "v1",
                MethodRef("android.widget.CompoundButton", "setChecked",
                          ("boolean",)),
            )
        elif isinstance(action, SubmitForm):
            for field_id in action.field_ids():
                rid = self.resources.get("id", field_id)
                if rid is not None:
                    method.emit("const", "v0", rid.value)
                    method.emit(
                        "invoke-virtual", "v5", "v0",
                        MethodRef(outer_cls, "findViewById", ("int",), _VIEW),
                    )
                    method.emit("move-result-object", "v0")
                    method.emit("check-cast", "v0", "android.widget.EditText")
                    method.emit(
                        "invoke-virtual", "v0",
                        MethodRef("android.widget.EditText", "getText", (),
                                  "java.lang.CharSequence"),
                    )
            # Real conditional lowering; Algorithm 1's line scan is
            # flow-insensitive, so edges in both branches are found.
            seq = self._branch_seq = getattr(self, "_branch_seq", 0) + 1
            fail_label = f"cond_fail_{seq}"
            end_label = f"cond_end_{seq}"
            method.emit(
                "invoke-virtual", "v5",
                MethodRef(outer_cls, "validateForm", (), "boolean"),
            )
            method.emit("move-result", "v0")
            method.emit("if-eqz", "v0", fail_label)
            self._lower_action(method, action.on_success, outer_cls,
                               outer_is_activity, owner_spec)
            method.emit("goto", end_label)
            method.emit("label", fail_label)
            self._lower_action(method, action.on_failure, outer_cls,
                               outer_is_activity, owner_spec)
            method.emit("label", end_label)
        else:
            raise TypeError(f"unhandled action type: {type(action).__name__}")

    def _emit_start_activity(
        self, method: SmaliMethod, action: StartActivity,
        outer_cls: str, outer_is_activity: bool,
    ) -> None:
        context_reg = "v5"
        if not outer_is_activity:
            self._emit_get_activity(method, outer_cls, "v5", "v6")
            context_reg = "v6"
        method.emit("new-instance", "v0", _INTENT)
        if action.dynamic:
            target_owner = outer_cls if outer_is_activity else "android.app.Activity"
            # Class resolved at runtime: helper method + Class.forName on a
            # mangled literal, so no const-class reaches the analyzer.
            helper = self._ensure_resolver(target_owner)
            method.emit("invoke-static",
                        MethodRef(helper, "resolveTarget", (),
                                  "java.lang.Class"))
            method.emit("move-result-object", "v1")
        else:
            method.emit("const-class", "v1", self.spec.qualify(action.target))
        method.emit(
            "invoke-direct", "v0", context_reg, "v1",
            MethodRef(_INTENT, "<init>",
                      ("android.content.Context", "java.lang.Class")),
        )
        method.emit(
            "invoke-virtual", context_reg, "v0",
            MethodRef(outer_cls if outer_is_activity else "android.app.Activity",
                      "startActivity", (_INTENT,)),
        )

    def _emit_start_by_action(
        self, method: SmaliMethod, action: StartActivityByAction,
        outer_cls: str, outer_is_activity: bool,
    ) -> None:
        context_reg = "v5"
        if not outer_is_activity:
            self._emit_get_activity(method, outer_cls, "v5", "v6")
            context_reg = "v6"
        method.emit("new-instance", "v0", _INTENT)
        if action.dynamic:
            method.emit("const-string", "v1", mangle(action.action))
            method.emit(
                "invoke-static", "v1",
                MethodRef(f"{self.spec.package}.ActionCodec", "decode",
                          ("java.lang.String",), "java.lang.String"),
            )
            method.emit("move-result-object", "v1")
            self._needs_router = True
        else:
            method.emit("const-string", "v1", action.action)
        method.emit(
            "invoke-direct", "v0", "v1",
            MethodRef(_INTENT, "<init>", ("java.lang.String",)),
        )
        method.emit(
            "invoke-virtual", context_reg, "v0",
            MethodRef(outer_cls if outer_is_activity else "android.app.Activity",
                      "startActivity", (_INTENT,)),
        )

    def _emit_get_activity(self, method: SmaliMethod, outer_cls: str,
                           src_reg: str, dest_reg: str) -> None:
        method.emit(
            "invoke-virtual", src_reg,
            MethodRef(outer_cls, "getActivity", (), "android.app.Activity"),
        )
        method.emit("move-result-object", dest_reg)

    # -- fragment transactions -------------------------------------------------

    def _emit_fragment_transaction(
        self,
        method: SmaliMethod,
        host_cls: str,
        host_spec: Optional[ActivitySpec],
        fragment: FragmentSpec,
        container_id: str,
        mode: str,
        self_reg: str,
        via_get_activity: bool = False,
        add_to_back_stack: bool = False,
    ) -> None:
        qualified_fragment = self.spec.qualify(fragment.name)
        host_reg = self_reg
        if via_get_activity:
            self._emit_get_activity(method, host_cls, self_reg, "v6")
            host_reg = "v6"
        if not fragment.managed:
            # Attached straight into the view hierarchy (no manager): the
            # `new F()` is still statically visible, but there is no
            # FragmentTransaction to grep or to reflect on at runtime.
            method.emit("new-instance", "v2", qualified_fragment)
            method.emit("invoke-direct", "v2",
                        MethodRef(qualified_fragment, "<init>"))
            method.emit(
                "invoke-virtual", host_reg, "v2",
                MethodRef(host_cls, "attachDirect", (qualified_fragment,)),
            )
            return
        support = host_spec is not None and host_spec.uses_support_library
        manager_cls = _SUPPORT_FRAGMENT_MANAGER if support else _FRAGMENT_MANAGER
        transaction_cls = (_SUPPORT_FRAGMENT_TRANSACTION if support
                           else _FRAGMENT_TRANSACTION)
        getter = "getSupportFragmentManager" if support else "getFragmentManager"
        method.emit(
            "invoke-virtual", host_reg,
            MethodRef(host_cls, getter, (), manager_cls),
        )
        method.emit("move-result-object", "v0")
        method.emit(
            "invoke-virtual", "v0",
            MethodRef(manager_cls, "beginTransaction", (), transaction_cls),
        )
        method.emit("move-result-object", "v1")
        if fragment.factory is FragmentFactory.NEW:
            method.emit("new-instance", "v2", qualified_fragment)
            method.emit("invoke-direct", "v2",
                        MethodRef(qualified_fragment, "<init>"))
        elif fragment.factory is FragmentFactory.NEW_INSTANCE:
            if fragment.requires_args:
                method.emit("const-string", "v3", "arg")
                method.emit(
                    "invoke-static", "v3",
                    MethodRef(qualified_fragment, "newInstance",
                              ("java.lang.String",), qualified_fragment),
                )
            else:
                method.emit(
                    "invoke-static",
                    MethodRef(qualified_fragment, "newInstance", (),
                              qualified_fragment),
                )
            method.emit("move-result-object", "v2")
        else:  # CUSTOM: routed through a string the analyzer cannot read.
            self._needs_router = True
            method.emit("const-string", "v3", mangle(qualified_fragment))
            method.emit(
                "invoke-static", "v3",
                MethodRef(f"{self.spec.package}.FragmentRouter", "route",
                          ("java.lang.String",), "android.app.Fragment"),
            )
            method.emit("move-result-object", "v2")
        rid = self.resources.define("id", container_id)
        method.emit("const", "v3", rid.value)
        method.emit(
            "invoke-virtual", "v1", "v3", "v2",
            MethodRef(transaction_cls, mode,
                      ("int", "android.app.Fragment"), transaction_cls),
        )
        if add_to_back_stack:
            method.emit("const-string", "v4", "tx")
            method.emit(
                "invoke-virtual", "v1", "v4",
                MethodRef(transaction_cls, "addToBackStack",
                          ("java.lang.String",), transaction_cls),
            )
        method.emit(
            "invoke-virtual", "v1",
            MethodRef(transaction_cls, "commit", (), "int"),
        )

    # -- misc helpers ------------------------------------------------------------

    def _emit_api_call(self, method: SmaliMethod, api: str) -> None:
        # Imported here: the static package sits above the smali layer
        # this compiler feeds, so a module-level import would be cyclic.
        from repro.static.sensitive import method_for_api

        ref = method_for_api(api)
        method.emit("const-string", "v0", ref.cls.rsplit(".", 1)[-1].lower())
        method.emit(
            "invoke-virtual", "p0", "v0",
            MethodRef("android.content.Context", "getSystemService",
                      ("java.lang.String",), "java.lang.Object"),
        )
        method.emit("move-result-object", "v1")
        method.emit("check-cast", "v1", ref.cls)
        regs = ["v1"]
        for index, param in enumerate(ref.params):
            reg = f"v{index + 2}"
            if param == "java.lang.String":
                method.emit("const-string", reg, "value")
            else:
                method.emit("const/4", reg, 0)
            regs.append(reg)
        method.emit("invoke-virtual", *regs, ref)

    def _ensure_resolver(self, owner: str) -> str:
        """A static ``resolveTarget()`` helper doing Class.forName on a
        mangled literal — the statically-opaque navigation idiom."""
        self._needs_router = True
        return f"{self.spec.package}.FragmentRouter"

    def _router_class(self) -> SmaliClass:
        cls = SmaliClass(
            name=f"{self.spec.package}.FragmentRouter",
            super_name="java.lang.Object",
            source="FragmentRouter.java",
        )
        route = cls.add_method(
            SmaliMethod(name="route", params=["java.lang.String"],
                        ret="android.app.Fragment", static=True)
        )
        route.emit(
            "invoke-static", "p0",
            MethodRef(f"{self.spec.package}.ActionCodec", "decode",
                      ("java.lang.String",), "java.lang.String"),
        )
        route.emit("move-result-object", "v0")
        route.emit(
            "invoke-static", "v0",
            MethodRef("java.lang.Class", "forName", ("java.lang.String",),
                      "java.lang.Class"),
        )
        route.emit("move-result-object", "v1")
        route.emit("return-object", "v1")
        resolve = cls.add_method(
            SmaliMethod(name="resolveTarget", params=[],
                        ret="java.lang.Class", static=True)
        )
        resolve.emit("const-string", "v0", "gerat.devloser")
        resolve.emit(
            "invoke-static", "v0",
            MethodRef("java.lang.Class", "forName", ("java.lang.String",),
                      "java.lang.Class"),
        )
        resolve.emit("move-result-object", "v1")
        resolve.emit("return-object", "v1")
        decode = cls.add_method(
            SmaliMethod(name="decode", params=["java.lang.String"],
                        ret="java.lang.String", static=True)
        )
        decode.emit("return-object", "p0")
        return cls

    def _host_activity_spec(self, owner_spec: object,
                            owner_is_activity: bool) -> Optional[ActivitySpec]:
        if owner_is_activity and isinstance(owner_spec, ActivitySpec):
            return owner_spec
        if isinstance(owner_spec, FragmentSpec):
            # A fragment's transaction runs against whichever activity
            # hosts it; for code generation we pick the first declared host.
            for activity in self.spec.activities:
                if owner_spec.name in activity.hosted_fragments:
                    return activity
        return None

    def _host_cls(self, outer_cls: str, outer_is_activity: bool,
                  host_spec: Optional[ActivitySpec]) -> str:
        if outer_is_activity:
            return outer_cls
        if host_spec is not None:
            return self.spec.qualify(host_spec.name)
        return "android.app.Activity"

    def _emit_crash(self, method: Optional[SmaliMethod], reason: str) -> None:
        if method is None:
            return
        method.emit("new-instance", "v0", "java.lang.RuntimeException")
        method.emit("const-string", "v1", reason)
        method.emit(
            "invoke-direct", "v0", "v1",
            MethodRef("java.lang.RuntimeException", "<init>",
                      ("java.lang.String",)),
        )


def _nested_handler_actions(action: Action) -> List[Action]:
    """Handlers attached to popup items / dialog buttons inside an
    action, one level deep (recursion happens at the listener level)."""
    out: List[Action] = []
    if isinstance(action, (ShowPopupMenu, ShowDialog)):
        widgets = action.items if isinstance(action, ShowPopupMenu) \
            else action.buttons
        for widget in widgets:
            if widget.on_click is not None:
                out.append(widget.on_click)
    elif isinstance(action, Chain):
        for child in action.actions:
            out.extend(_nested_handler_actions(child))
    elif isinstance(action, SubmitForm):
        out.extend(_nested_handler_actions(action.on_success))
        out.extend(_nested_handler_actions(action.on_failure))
    return out


def _element(widget: WidgetSpec) -> LayoutElement:
    return LayoutElement(
        widget_id=widget.id,
        kind=widget.kind,
        text=widget.text,
        clickable=widget.on_click is not None or widget.kind.clickable,
    )
