"""On-disk APK files.

``save_apk`` writes an :class:`ApkPackage` as a zip archive with the
familiar layout — ``AndroidManifest.xml``, ``smali/...``,
``res/layout/...``, ``public.xml`` — plus ``classes.dex.json``, the
serialized behavioural spec standing in for the DEX (the executable
payload the device runs; static analysis never reads it, same as the
in-memory ``_spec``).  ``load_apk`` reads one back, so corpora can be
exported, shipped, and explored from disk like real samples.
"""

from __future__ import annotations

import json
import pathlib
import zipfile
from typing import Union

from repro.apk.package import ApkPackage
from repro.apk.serialize import spec_from_dict, spec_to_dict
from repro.errors import ApkError

_MANIFEST_ENTRY = "AndroidManifest.xml"
_PUBLIC_ENTRY = "public.xml"
_DEX_ENTRY = "classes.dex.json"
_META_ENTRY = "META-INF/MANIFEST.MF"


def save_apk(apk: ApkPackage, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the package as a zip; returns the written path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
        archive.writestr(_META_ENTRY,
                         f"Package: {apk.package}\n"
                         f"Version-Name: {apk.version_name}\n"
                         f"Packed: {str(apk.packed).lower()}\n")
        archive.writestr(_MANIFEST_ENTRY, apk.manifest_xml)
        archive.writestr(_PUBLIC_ENTRY, apk.public_xml)
        for smali_path, text in sorted(apk.smali_files.items()):
            archive.writestr(f"smali/{smali_path}", text)
        for layout_path, text in sorted(apk.layout_files.items()):
            archive.writestr(layout_path, text)
        archive.writestr(
            _DEX_ENTRY,
            json.dumps(spec_to_dict(apk.runtime_spec()), sort_keys=True),
        )
    return path


def load_apk(path: Union[str, pathlib.Path]) -> ApkPackage:
    """Read a package previously written by :func:`save_apk`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ApkError(f"no such apk file: {path}")
    with zipfile.ZipFile(path) as archive:
        names = set(archive.namelist())
        for required in (_MANIFEST_ENTRY, _PUBLIC_ENTRY, _DEX_ENTRY,
                         _META_ENTRY):
            if required not in names:
                raise ApkError(f"{path}: missing entry {required}")
        meta = dict(
            line.split(": ", 1)
            for line in archive.read(_META_ENTRY).decode().splitlines()
            if ": " in line
        )
        smali_files = {}
        layout_files = {}
        for name in names:
            if name.startswith("smali/"):
                smali_files[name[len("smali/"):]] = \
                    archive.read(name).decode()
            elif name.startswith("res/layout/"):
                layout_files[name] = archive.read(name).decode()
        spec = spec_from_dict(
            json.loads(archive.read(_DEX_ENTRY).decode())
        )
        return ApkPackage(
            package=meta["Package"],
            manifest_xml=archive.read(_MANIFEST_ENTRY).decode(),
            smali_files=smali_files,
            layout_files=layout_files,
            public_xml=archive.read(_PUBLIC_ENTRY).decode(),
            packed=meta.get("Packed", "false") == "true",
            version_name=meta.get("Version-Name", "1.0"),
            _spec=spec,
        )
