"""AndroidManifest model with XML round-tripping.

The manifest is central to three parts of the paper:

* the effective-Activity list comes from the declared ``<activity>`` set
  (Section IV-B.2);
* implicit Intent edges are resolved by matching action strings against
  ``<intent-filter>`` declarations (Algorithm 1);
* FragDroid's forced-start trick rewrites the manifest to add a MAIN
  action to every Activity (Section VI-A) — see
  :mod:`repro.adb.instrumentation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ManifestError
from repro.types import ComponentName

ACTION_MAIN = "android.intent.action.MAIN"
CATEGORY_LAUNCHER = "android.intent.category.LAUNCHER"


@dataclass
class IntentFilter:
    """An ``<intent-filter>``: a set of actions and categories."""

    actions: List[str] = field(default_factory=list)
    categories: List[str] = field(default_factory=list)

    def matches(self, action: Optional[str], category: Optional[str] = None) -> bool:
        if action is not None and action not in self.actions:
            return False
        if category is not None and category not in self.categories:
            return False
        return action is not None


@dataclass
class ActivityDecl:
    """One ``<activity>`` element."""

    name: str  # fully-qualified class name
    exported: bool = False
    intent_filters: List[IntentFilter] = field(default_factory=list)

    @property
    def is_launcher(self) -> bool:
        return any(
            ACTION_MAIN in f.actions and CATEGORY_LAUNCHER in f.categories
            for f in self.intent_filters
        )

    def handles_action(self, action: str) -> bool:
        return any(action in f.actions for f in self.intent_filters)


@dataclass
class Manifest:
    """The parsed AndroidManifest of one package."""

    package: str
    activities: List[ActivityDecl] = field(default_factory=list)
    uses_permissions: List[str] = field(default_factory=list)

    def add_activity(self, decl: ActivityDecl) -> None:
        if self.activity(decl.name) is not None:
            raise ManifestError(f"duplicate activity declaration: {decl.name}")
        self.activities.append(decl)

    def activity(self, name: str) -> Optional[ActivityDecl]:
        if name.startswith("."):
            name = self.package + name
        for decl in self.activities:
            if decl.name == name:
                return decl
        return None

    @property
    def launcher_activity(self) -> Optional[ActivityDecl]:
        for decl in self.activities:
            if decl.is_launcher:
                return decl
        return None

    def component(self, decl: ActivityDecl) -> ComponentName:
        return ComponentName(self.package, decl.name)

    def resolve_action(self, action: str) -> List[ActivityDecl]:
        """All activities whose filters accept ``action``."""
        return [d for d in self.activities if d.handles_action(action)]

    # -- XML round trip ----------------------------------------------------

    def to_xml(self) -> str:
        lines = [
            '<?xml version="1.0" encoding="utf-8"?>',
            '<manifest xmlns:android="http://schemas.android.com/apk/res/android"',
            f'    package="{self.package}">',
        ]
        for permission in self.uses_permissions:
            lines.append(f'    <uses-permission android:name="{permission}" />')
        lines.append("    <application>")
        for decl in self.activities:
            exported = str(decl.exported).lower()
            lines.append(
                f'        <activity android:name="{decl.name}" '
                f'android:exported="{exported}">'
            )
            for ifilter in decl.intent_filters:
                lines.append("            <intent-filter>")
                for action in ifilter.actions:
                    lines.append(
                        f'                <action android:name="{action}" />'
                    )
                for category in ifilter.categories:
                    lines.append(
                        f'                <category android:name="{category}" />'
                    )
                lines.append("            </intent-filter>")
            lines.append("        </activity>")
        lines.append("    </application>")
        lines.append("</manifest>")
        return "\n".join(lines)

    @classmethod
    def from_xml(cls, text: str) -> "Manifest":
        package: Optional[str] = None
        manifest: Optional[Manifest] = None
        current_activity: Optional[ActivityDecl] = None
        current_filter: Optional[IntentFilter] = None
        for raw in text.splitlines():
            line = raw.strip()
            if line.startswith("package="):
                package = line.split('"')[1]
                manifest = cls(package)
            elif line.startswith("<uses-permission"):
                assert manifest is not None
                manifest.uses_permissions.append(line.split('"')[1])
            elif line.startswith("<activity "):
                if manifest is None:
                    raise ManifestError("activity before package declaration")
                name = _attr(line, "android:name")
                exported = _attr(line, "android:exported") == "true"
                current_activity = ActivityDecl(name=name, exported=exported)
                manifest.add_activity(current_activity)
            elif line.startswith("<intent-filter"):
                current_filter = IntentFilter()
                if current_activity is None:
                    raise ManifestError("intent-filter outside activity")
                current_activity.intent_filters.append(current_filter)
            elif line.startswith("<action "):
                if current_filter is None:
                    raise ManifestError("action outside intent-filter")
                current_filter.actions.append(_attr(line, "android:name"))
            elif line.startswith("<category "):
                if current_filter is None:
                    raise ManifestError("category outside intent-filter")
                current_filter.categories.append(_attr(line, "android:name"))
            elif line.startswith("</intent-filter>"):
                current_filter = None
            elif line.startswith("</activity>"):
                current_activity = None
        if manifest is None:
            raise ManifestError("no package declaration found")
        return manifest


def _attr(line: str, name: str) -> str:
    marker = f'{name}="'
    start = line.find(marker)
    if start < 0:
        raise ManifestError(f"missing attribute {name!r} in: {line}")
    start += len(marker)
    end = line.find('"', start)
    return line[start:end]
