"""APK consistency checking.

``lint_apk`` validates a compiled package the way ``aapt``/``apkanalyzer``
would: every manifest Activity must have a class, every ``const``
resource operand must exist in the resource table, every inflated layout
must exist, listener inner classes must belong to a declared outer
class, and the launcher must be unique.  The corpus generators run
thousands of synthetic APKs through the pipeline; this is the guard that
keeps them honest, and it is exposed publicly for users authoring their
own specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.apk.manifest import Manifest
from repro.apk.package import ApkPackage
from repro.errors import PackedApkError
from repro.smali.apktool import Apktool


@dataclass(frozen=True)
class LintFinding:
    severity: str  # "error" | "warning"
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class LintReport:
    findings: List[LintFinding] = field(default_factory=list)

    def add(self, severity: str, code: str, message: str) -> None:
        self.findings.append(LintFinding(severity, code, message))

    @property
    def errors(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[LintFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        if not self.findings:
            return "lint: clean"
        return "\n".join(str(f) for f in self.findings)


def lint_apk(apk: ApkPackage) -> LintReport:
    """Validate one package; packed APKs only get the packed warning."""
    report = LintReport()
    try:
        decoded = Apktool().decode(apk)
    except PackedApkError:
        report.add("warning", "packed",
                   f"{apk.package}: packed DEX; static checks skipped")
        return report

    class_names = {cls.name for cls in decoded.classes}

    # 1. Manifest components must exist as classes.
    for decl in decoded.manifest.activities:
        if decl.name not in class_names:
            report.add("error", "missing-class",
                       f"manifest declares {decl.name} but no class exists")

    # 2. Exactly one launcher.
    launchers = [d for d in decoded.manifest.activities if d.is_launcher]
    if len(launchers) != 1:
        report.add("error", "launcher",
                   f"expected exactly 1 launcher, found {len(launchers)}")

    # 3. Every const operand that looks like a resource ID must resolve.
    for cls in decoded.classes:
        for method in cls.methods:
            for instruction in method.instructions:
                if instruction.opcode != "const":
                    continue
                value = instruction.args[-1]
                if not isinstance(value, int) or not (
                    0x7F000000 <= value < 0x80000000
                ):
                    continue
                try:
                    decoded.resources.reverse(value)
                except Exception:
                    report.add(
                        "error", "dangling-resource",
                        f"{cls.name}.{method.name} references undefined "
                        f"resource {value:#010x}",
                    )

    # 4. Inflated layouts must exist as layout files.
    layout_names = set(decoded.layouts)
    for _etype, name, _rid in decoded.resources.entries("layout"):
        if name not in layout_names:
            report.add("warning", "missing-layout",
                       f"resource R.layout.{name} has no layout file")

    # 5. Inner classes must have their outer class present.
    for cls in decoded.classes:
        if cls.is_inner and cls.outer_name not in class_names:
            report.add("error", "orphan-inner",
                       f"{cls.name} has no outer class {cls.outer_name}")

    # 6. Layout widget IDs must be registered resources.
    for layout_name, layout in decoded.layouts.items():
        for widget_id in layout.widget_ids():
            if decoded.resources.get("id", widget_id) is None:
                report.add("error", "unregistered-id",
                           f"layout {layout_name} uses unregistered id "
                           f"{widget_id!r}")
    return report
