"""The compiled APK package.

An :class:`ApkPackage` holds *text* artifacts — manifest XML, smali files,
layout XML, the resource table's ``public.xml`` — exactly the shapes
Apktool produces from a real APK.  The originating :class:`AppSpec` is
retained on a private attribute for the device emulator (which plays the
role of the Dalvik VM executing the DEX); analysis code must never touch
it, and the test suite enforces that the static pipeline works from the
text artifacts alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.apk.appspec import AppSpec


@dataclass
class ApkPackage:
    """One installable app package."""

    package: str
    manifest_xml: str
    smali_files: Dict[str, str]  # "com/foo/Bar.smali" -> smali text
    layout_files: Dict[str, str]  # "res/layout/activity_main.xml" -> xml
    public_xml: str
    packed: bool = False
    version_name: str = "1.0"
    _spec: "AppSpec" = field(default=None, repr=False)  # type: ignore[assignment]

    @property
    def apk_name(self) -> str:
        return f"{self.package}-{self.version_name}.apk"

    def digest(self) -> str:
        """Content address of the package's analyzable artifacts.

        A SHA-256 over the canonical serialized form of everything the
        static pipeline reads — manifest, smali, layouts, public.xml,
        the packed flag — so two packages with identical text artifacts
        share a digest regardless of dict insertion order, and mutating
        any byte of any artifact changes it.  The behavioural ``_spec``
        is deliberately excluded: analysis never touches it.
        """
        return hashlib.sha256(self._digest_payload()).hexdigest()

    def _digest_payload(self) -> bytes:
        """The canonical bytes :meth:`digest` hashes."""
        payload = json.dumps(
            {
                "package": self.package,
                "version": self.version_name,
                "packed": self.packed,
                "manifest": self.manifest_xml,
                "smali": sorted(self.smali_files.items()),
                "layouts": sorted(self.layout_files.items()),
                "public": self.public_xml,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return payload.encode("utf-8")

    def size_estimate(self) -> int:
        """Rough byte size of the package contents (for reporting)."""
        total = len(self.manifest_xml) + len(self.public_xml)
        total += sum(len(t) for t in self.smali_files.values())
        total += sum(len(t) for t in self.layout_files.values())
        return total

    def runtime_spec(self) -> "AppSpec":
        """The behavioural spec, for the device emulator only.

        The emulator stands in for the Dalvik VM: where a real phone
        executes the DEX bytecode, our device executes the spec this
        package was compiled from (see DESIGN.md, substitution table).
        """
        if self._spec is None:
            raise ValueError(f"package {self.package} has no runtime spec")
        return self._spec


def digest_many(packages: Iterable[ApkPackage]) -> List[str]:
    """Batch :meth:`ApkPackage.digest` over a corpus.

    One pass with the hasher and serializer resolved once; each value is
    byte-identical to calling ``digest()`` on that package (both hash the
    same canonical payload), so cache keys and committed baselines are
    unaffected by which entry point computed them.
    """
    sha256 = hashlib.sha256
    return [sha256(package._digest_payload()).hexdigest()
            for package in packages]
