"""FragDroid reproduction (DSN 2018).

A complete Python implementation of *FragDroid: Automated User Interface
Interaction with Activity and Fragment Analysis in Android Applications*
(Chen, Han, Guo, Diao — DSN 2018), together with every substrate the paper
depends on: an APK package model and smali toolchain, an Android UI runtime
emulator, adb/Robotium-style drivers, the static extraction pipeline, the
evolutionary explorer, baselines, and the evaluation corpus.

Quickstart::

    from repro import FragDroid, Device
    from repro.corpus import demo_tabbed_app
    from repro.apk import build_apk

    device = Device()
    apk = build_apk(demo_tabbed_app())
    result = FragDroid(device).explore(apk)
    print(result.coverage_report())
"""

__version__ = "1.0.0"

__all__ = [
    "AFTM",
    "Adb",
    "Device",
    "ExplorationResult",
    "FaultPlan",
    "FragDroid",
    "FragDroidConfig",
    "Solo",
    "build_apk",
    "fault_plan",
    "__version__",
]

# Lazy re-exports keep `import repro` cheap and avoid import cycles while
# still offering the flat public API shown in the docstring.
_EXPORTS = {
    "AFTM": ("repro.static.aftm", "AFTM"),
    "Adb": ("repro.adb.bridge", "Adb"),
    "Device": ("repro.android.device", "Device"),
    "ExplorationResult": ("repro.core.explorer", "ExplorationResult"),
    "FaultPlan": ("repro.faults.plan", "FaultPlan"),
    "FragDroid": ("repro.core.explorer", "FragDroid"),
    "FragDroidConfig": ("repro.core.config", "FragDroidConfig"),
    "Solo": ("repro.robotium.solo", "Solo"),
    "build_apk": ("repro.apk.builder", "build_apk"),
    "fault_plan": ("repro.faults.plan", "fault_plan"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
