"""The fragility study: how recorded suites break across app versions.

The paper dismisses record-and-replay because replayed scripts "break
when the UI changes".  This module turns that one-liner into a
measurement (the Coppola et al. scripted-GUI-testing methodology):

1. explore an app and export every passing test case as a replay
   script — the *recorded suite*;
2. evolve the app through the :mod:`repro.corpus.mutations` operators
   (renamed widgets and fragments, a removed handler, an added
   activity, shuffled widget ids) — one synthetic "next version" per
   operator, all choices drawn from a seeded RNG;
3. replay the unchanged suite against every version and tabulate which
   script broke at which step, why, and how much of the recorded
   coverage survived.

Everything is deterministic under a fixed seed: two runs with the same
seed produce byte-identical tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.android.device import Device
from repro.apk.appspec import AppSpec
from repro.apk.builder import build_apk
from repro.core.config import FragDroidConfig
from repro.core.explorer import FragDroid
from repro.corpus.mutations import (
    add_activity,
    remove_handler,
    rename_fragment,
    rename_widget,
    shuffle_widget_ids,
)
from repro.rnr.export import script_from_testcase
from repro.rnr.recorder import ReplayScript
from repro.rnr.replay import SuiteReplayReport, replay_suite

#: The control row's name — the unmutated version every suite must
#: still replay divergence-free on (anything else is a harness bug).
CONTROL = "unchanged"


@dataclass(frozen=True)
class PlannedMutation:
    """One synthetic next version: operator name, what changed, spec."""

    name: str
    description: str
    spec: AppSpec


@dataclass
class FragilityRow:
    """One app version's line of the breakage table."""

    mutation: str
    description: str
    scripts: int
    broken: int
    events_applied: int
    events_total: int
    surviving: int        # recorded components the replay still reached
    recorded: int         # recorded components in total
    breakages: List[Dict[str, object]] = field(default_factory=list)
    lost: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "mutation": self.mutation,
            "description": self.description,
            "scripts": self.scripts,
            "broken": self.broken,
            "events_applied": self.events_applied,
            "events_total": self.events_total,
            "surviving": self.surviving,
            "recorded": self.recorded,
            "breakages": list(self.breakages),
            "lost": list(self.lost),
        }


@dataclass
class FragilityReport:
    """The whole study: recorded suite + one row per app version."""

    package: str
    seed: int
    scripts: int
    recorded_activities: List[str]
    recorded_fragments: List[str]
    rows: List[FragilityRow] = field(default_factory=list)

    @property
    def control_ok(self) -> bool:
        """True when the unmutated version replayed divergence-free."""
        for row in self.rows:
            if row.mutation == CONTROL:
                return row.broken == 0
        return False

    @property
    def breakage_total(self) -> int:
        """Broken scripts across the mutated versions (control excluded)."""
        return sum(row.broken for row in self.rows
                   if row.mutation != CONTROL)

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "seed": self.seed,
            "scripts": self.scripts,
            "recorded_activities": list(self.recorded_activities),
            "recorded_fragments": list(self.recorded_fragments),
            "control_ok": self.control_ok,
            "breakage_total": self.breakage_total,
            "rows": [row.to_dict() for row in self.rows],
        }

    def render(self) -> str:
        recorded = (len(self.recorded_activities)
                    + len(self.recorded_fragments))
        lines = [
            f"fragility study: {self.package} (seed {self.seed})",
            f"recorded suite: {self.scripts} scripts covering "
            f"{len(self.recorded_activities)} activities + "
            f"{len(self.recorded_fragments)} fragments",
            "",
            f"{'mutation':20} {'broken':>8} {'events':>12} "
            f"{'coverage kept':>14}  change",
            "-" * 76,
        ]
        for row in self.rows:
            lines.append(
                f"{row.mutation:20} "
                f"{row.broken}/{row.scripts:<6} "
                f"{row.events_applied}/{row.events_total:<11} "
                f"{row.surviving}/{recorded:<13} "
                f" {row.description}")
        details = [
            (row, breakage)
            for row in self.rows for breakage in row.breakages
        ]
        if details:
            lines.append("")
            lines.append("breakages:")
            for row, breakage in details:
                lines.append(
                    f"  {row.mutation}: {breakage['script']} diverged at "
                    f"step {breakage['step']} ({breakage['reason']})")
        losses = [row for row in self.rows if row.lost]
        if losses:
            lines.append("")
            lines.append("recorded coverage lost:")
            for row in losses:
                lines.append(f"  {row.mutation}: {', '.join(row.lost)}")
        return "\n".join(lines)


def _recordable_widget_ids(spec: AppSpec) -> List[str]:
    """Widget ids the mutation operators can locate in the spec (the
    top-level layouts and drawers — not popup/dialog children)."""
    ids = []
    for activity in spec.activities:
        ids.extend(w.id for w in activity.widgets)
        if activity.drawer:
            ids.extend(w.id for w in activity.drawer.items)
    for fragment in spec.fragments:
        ids.extend(w.id for w in fragment.widgets)
    return sorted(set(ids))


def _handler_widget_ids(spec: AppSpec) -> List[str]:
    ids = []
    for activity in spec.activities:
        ids.extend(w.id for w in activity.widgets if w.on_click)
        if activity.drawer:
            ids.extend(w.id for w in activity.drawer.items if w.on_click)
    for fragment in spec.fragments:
        ids.extend(w.id for w in fragment.widgets if w.on_click)
    return sorted(set(ids))


def plan_mutations(spec: AppSpec, scripts: List[ReplayScript],
                   seed: int = 0) -> List[PlannedMutation]:
    """The study's version stream: one deterministic plan per operator.

    Targets are drawn with a seeded RNG, preferring widgets the
    recorded suite actually exercised — a rename nobody recorded
    against measures nothing.
    """
    rng = random.Random(seed)
    plans: List[PlannedMutation] = []
    mutable = set(_recordable_widget_ids(spec))
    clicked = sorted({
        event.widget_id
        for script in scripts for event in script.events
        if event.kind == "click" and event.widget_id in mutable
    })
    pool = clicked or sorted(mutable)
    if pool:
        widget = rng.choice(pool)
        plans.append(PlannedMutation(
            "rename-widget", f"{widget} -> {widget}_v2",
            rename_widget(spec, widget, f"{widget}_v2")))
    handlers = [i for i in _handler_widget_ids(spec) if i in set(pool)] \
        or _handler_widget_ids(spec)
    if handlers:
        widget = rng.choice(handlers)
        plans.append(PlannedMutation(
            "remove-handler", f"{widget} handler dropped",
            remove_handler(spec, widget)))
    if spec.fragments:
        fragment = rng.choice(sorted(f.name for f in spec.fragments))
        plans.append(PlannedMutation(
            "rename-fragment", f"{fragment} -> {fragment}V2",
            rename_fragment(spec, fragment, f"{fragment}V2")))
    plans.append(PlannedMutation(
        "add-activity", "new UpdateNewsActivity shipped",
        add_activity(spec, "UpdateNewsActivity")))
    shuffle_seed = rng.randrange(1 << 30)
    plans.append(PlannedMutation(
        "shuffle-widget-ids", f"resource-id refactor (seed {shuffle_seed})",
        shuffle_widget_ids(spec, seed=shuffle_seed)))
    return plans


def _row_from_report(name: str, description: str,
                     report: SuiteReplayReport,
                     recorded_components: List[str]) -> FragilityRow:
    reached = set(report.activities) | set(report.fragments)
    surviving = [c for c in recorded_components if c in reached]
    return FragilityRow(
        mutation=name,
        description=description,
        scripts=report.scripts,
        broken=report.diverged,
        events_applied=report.events_applied,
        events_total=report.events_total,
        surviving=len(surviving),
        recorded=len(recorded_components),
        breakages=[
            {"script": o.name, "step": o.diverged_at, "reason": o.reason,
             "error": o.error}
            for o in report.outcomes if not o.ok
        ],
        lost=[c for c in recorded_components if c not in reached],
    )


def run_fragility(spec: AppSpec, seed: int = 0,
                  config: Optional[FragDroidConfig] = None,
                  ) -> FragilityReport:
    """Record a suite on ``spec`` and replay it across mutated versions."""
    apk = build_apk(spec)
    result = FragDroid(Device(), config or FragDroidConfig()).explore(apk)
    names = [case.name for case in result.passing_test_cases]
    scripts = [script_from_testcase(case)
               for case in result.passing_test_cases]
    recorded_activities = sorted(result.visited_activities)
    recorded_fragments = sorted(result.visited_fragments)
    recorded_components = recorded_activities + recorded_fragments

    report = FragilityReport(
        package=spec.package,
        seed=seed,
        scripts=len(scripts),
        recorded_activities=recorded_activities,
        recorded_fragments=recorded_fragments,
    )
    control = replay_suite(scripts, apk, names)
    report.rows.append(_row_from_report(
        CONTROL, "same version, fresh device", control,
        recorded_components))
    for plan in plan_mutations(spec, scripts, seed=seed):
        replayed = replay_suite(scripts, build_apk(plan.spec), names)
        report.rows.append(_row_from_report(
            plan.name, plan.description, replayed, recorded_components))
    return report
