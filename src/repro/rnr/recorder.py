"""Event recording and script replay.

A :class:`Recorder` proxies a tester's session: every injected event is
forwarded to the device and appended to the script.  The resulting
:class:`ReplayScript` serialises to JSON ("translate them to scripts",
Section I) and replays against any device with the app installed.

Like the real technique, replay is *coordinate- and id-literal*: it
re-injects exactly what was recorded, so it reproduces the recorded
path cheaply but breaks when the UI changes — the maintenance cost the
paper cites as the reason MBT superseded R&R.  The fragility study
(:mod:`repro.rnr.fragility`) measures exactly that breakage.

Scripts carry a ``schema`` field so a foreign or stale file fails with
a named error instead of a stack trace deep inside replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional

from repro.adb.bridge import Adb
from repro.android.device import Device
from repro.errors import ReproError

#: Bump whenever the event shape or kind list changes; scripts written
#: by another schema are rejected with a named error.
SCRIPT_SCHEMA = 2

EVENT_KINDS = ("launch", "tap", "click", "text", "back", "swipe",
               "reflect", "start")

#: Per-event fields and the types :meth:`ReplayScript.from_json`
#: accepts for each (``bool`` is not an ``int`` here).
_EVENT_FIELDS = {
    "kind": str,
    "x": int,
    "y": int,
    "widget_id": str,
    "text": str,
    "step": int,
}


@dataclass(frozen=True)
class RecordedEvent:
    """One recorded input event.

    ``widget_id`` doubles as the generic target slot: the widget id for
    ``click``/``text``, the fragment class for ``reflect`` and the
    ``package/Class`` component for ``start``.  ``step`` is the device
    step count sampled *before* the event was applied, so event *i* of a
    fresh-device recording carries ``step == i``.
    """

    kind: str
    x: int = 0
    y: int = 0
    widget_id: str = ""
    text: str = ""
    step: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ReproError(f"unknown event kind: {self.kind!r}")


def _check_field(name: str, value, expected, where: str):
    """Type-check one script field; bool masquerading as int rejected."""
    if isinstance(value, bool) or not isinstance(value, expected):
        raise ReproError(
            f"replay script field {name!r} {where} must be "
            f"{expected.__name__}, got {type(value).__name__}"
        )
    return value


@dataclass
class ReplayScript:
    """An ordered, serialisable event script for one package."""

    package: str
    events: List[RecordedEvent]

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": SCRIPT_SCHEMA,
                "package": self.package,
                "events": [
                    {
                        "kind": e.kind, "x": e.x, "y": e.y,
                        "widget_id": e.widget_id, "text": e.text,
                        "step": e.step,
                    }
                    for e in self.events
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ReplayScript":
        """Parse and *validate* a script file.

        Every malformation — bad JSON, a missing or foreign ``schema``,
        a missing/mistyped field, an unknown key — raises
        :class:`ReproError` naming the offending field, never a bare
        ``KeyError``/``TypeError``.
        """
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ReproError(f"replay script is not valid JSON: {exc}") \
                from None
        if not isinstance(data, dict):
            raise ReproError("replay script must be a JSON object, got "
                             f"{type(data).__name__}")
        unknown = sorted(set(data) - {"schema", "package", "events"})
        if unknown:
            raise ReproError(
                f"replay script has unknown field(s): {', '.join(unknown)}")
        if "schema" not in data:
            raise ReproError("replay script is missing the 'schema' field "
                             f"(this build reads schema {SCRIPT_SCHEMA})")
        schema = data["schema"]
        if schema != SCRIPT_SCHEMA:
            raise ReproError(
                f"unsupported replay-script schema {schema!r} "
                f"(this build reads {SCRIPT_SCHEMA})")
        if "package" not in data:
            raise ReproError("replay script is missing the 'package' field")
        package = _check_field("package", data["package"], str, "")
        if not package:
            raise ReproError("replay script field 'package' must be a "
                             "non-empty string")
        if "events" not in data:
            raise ReproError("replay script is missing the 'events' field")
        raw_events = data["events"]
        if not isinstance(raw_events, list):
            raise ReproError("replay script field 'events' must be a list, "
                             f"got {type(raw_events).__name__}")
        events: List[RecordedEvent] = []
        for index, entry in enumerate(raw_events):
            where = f"in events[{index}]"
            if not isinstance(entry, dict):
                raise ReproError(f"replay script event {where} must be an "
                                 f"object, got {type(entry).__name__}")
            bad = sorted(set(entry) - set(_EVENT_FIELDS))
            if bad:
                raise ReproError(f"replay script event {where} has unknown "
                                 f"field(s): {', '.join(bad)}")
            if "kind" not in entry:
                raise ReproError(
                    f"replay script event {where} is missing 'kind'")
            fields = {
                name: _check_field(name, entry[name], expected, where)
                for name, expected in _EVENT_FIELDS.items()
                if name in entry
            }
            if fields["kind"] not in EVENT_KINDS:
                raise ReproError(
                    f"replay script event {where} has unknown kind "
                    f"{fields['kind']!r} (known: {', '.join(EVENT_KINDS)})")
            events.append(RecordedEvent(**fields))
        return cls(package=package, events=events)

    def apply_event(self, event: RecordedEvent, device: Device,
                    adb: Optional[Adb] = None) -> None:
        """Re-inject one event on a device.

        Raises :class:`ReproError` subclasses when the UI has drifted
        and the recorded target no longer exists.
        """
        adb = adb or Adb(device)
        if event.kind == "launch":
            adb.am_start_launcher(self.package)
        elif event.kind == "tap":
            device.tap(event.x, event.y)
        elif event.kind == "click":
            device.click_widget(event.widget_id)
        elif event.kind == "text":
            device.enter_text(event.widget_id, event.text)
        elif event.kind == "back":
            device.press_back()
        elif event.kind == "swipe":
            device.swipe_from_left()
        elif event.kind == "reflect":
            from repro.android.reflection import reflective_fragment_switch

            reflective_fragment_switch(device, event.widget_id)
        elif event.kind == "start":
            from repro.types import ComponentName

            device.start_activity(ComponentName.parse(event.widget_id))

    def replay(self, device: Device) -> int:
        """Re-inject the script on a device; returns events applied.

        Raises :class:`ReproError` (via the device) when the UI has
        drifted and a recorded widget no longer exists — the fragility
        that motivates model-based approaches.  For a step-by-step
        account that *reports* the divergence instead of raising, use
        :func:`repro.rnr.replay.replay_script`.
        """
        adb = Adb(device)
        applied = 0
        for event in self.events:
            self.apply_event(event, device, adb)
            applied += 1
        return applied


class Recorder:
    """A recording session bound to one device and package."""

    def __init__(self, device: Device, package: str) -> None:
        self.device = device
        self.package = package
        self._adb = Adb(device)
        self._events: List[RecordedEvent] = []

    def _log(self, kind: str, step: int, **kwargs) -> None:
        self._events.append(RecordedEvent(kind=kind, step=step, **kwargs))

    # -- the tester's verbs (forward + record) ------------------------------
    #
    # Each verb samples the step counter *before* forwarding, so the
    # recorded step is the state the event was applied in — not the
    # state it produced (which would be off by exactly one action).

    def launch(self) -> None:
        step = self.device.steps
        self._adb.am_start_launcher(self.package)
        self._log("launch", step)

    def tap(self, x: int, y: int) -> None:
        step = self.device.steps
        self.device.tap(x, y)
        self._log("tap", step, x=x, y=y)

    def click(self, widget_id: str) -> None:
        step = self.device.steps
        self.device.click_widget(widget_id)
        self._log("click", step, widget_id=widget_id)

    def enter_text(self, widget_id: str, text: str) -> None:
        step = self.device.steps
        self.device.enter_text(widget_id, text)
        self._log("text", step, widget_id=widget_id, text=text)

    def back(self) -> None:
        step = self.device.steps
        self.device.press_back()
        self._log("back", step)

    def swipe(self) -> None:
        step = self.device.steps
        self.device.swipe_from_left()
        self._log("swipe", step)

    # -- output ---------------------------------------------------------------

    def script(self) -> ReplayScript:
        return ReplayScript(package=self.package, events=list(self._events))
