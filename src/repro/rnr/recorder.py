"""Event recording and script replay.

A :class:`Recorder` proxies a tester's session: every injected event is
forwarded to the device and appended to the script.  The resulting
:class:`ReplayScript` serialises to JSON ("translate them to scripts",
Section I) and replays against any device with the app installed.

Like the real technique, replay is *coordinate- and id-literal*: it
re-injects exactly what was recorded, so it reproduces the recorded
path cheaply but breaks when the UI changes — the maintenance cost the
paper cites as the reason MBT superseded R&R.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional

from repro.adb.bridge import Adb
from repro.android.device import Device
from repro.errors import ReproError

EVENT_KINDS = ("launch", "tap", "click", "text", "back", "swipe")


@dataclass(frozen=True)
class RecordedEvent:
    kind: str
    x: int = 0
    y: int = 0
    widget_id: str = ""
    text: str = ""
    step: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ReproError(f"unknown event kind: {self.kind!r}")


@dataclass
class ReplayScript:
    """An ordered, serialisable event script for one package."""

    package: str
    events: List[RecordedEvent]

    def to_json(self) -> str:
        return json.dumps(
            {
                "package": self.package,
                "events": [
                    {
                        "kind": e.kind, "x": e.x, "y": e.y,
                        "widget_id": e.widget_id, "text": e.text,
                        "step": e.step,
                    }
                    for e in self.events
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ReplayScript":
        data = json.loads(text)
        return cls(
            package=data["package"],
            events=[RecordedEvent(**event) for event in data["events"]],
        )

    def replay(self, device: Device) -> int:
        """Re-inject the script on a device; returns events applied.

        Raises :class:`ReproError` (via the device) when the UI has
        drifted and a recorded widget no longer exists — the fragility
        that motivates model-based approaches.
        """
        adb = Adb(device)
        applied = 0
        for event in self.events:
            if event.kind == "launch":
                adb.am_start_launcher(self.package)
            elif event.kind == "tap":
                device.tap(event.x, event.y)
            elif event.kind == "click":
                device.click_widget(event.widget_id)
            elif event.kind == "text":
                device.enter_text(event.widget_id, event.text)
            elif event.kind == "back":
                device.press_back()
            elif event.kind == "swipe":
                device.swipe_from_left()
            applied += 1
        return applied


class Recorder:
    """A recording session bound to one device and package."""

    def __init__(self, device: Device, package: str) -> None:
        self.device = device
        self.package = package
        self._adb = Adb(device)
        self._events: List[RecordedEvent] = []

    def _log(self, kind: str, **kwargs) -> None:
        self._events.append(
            RecordedEvent(kind=kind, step=self.device.steps, **kwargs)
        )

    # -- the tester's verbs (forward + record) ------------------------------

    def launch(self) -> None:
        self._adb.am_start_launcher(self.package)
        self._log("launch")

    def tap(self, x: int, y: int) -> None:
        self.device.tap(x, y)
        self._log("tap", x=x, y=y)

    def click(self, widget_id: str) -> None:
        self.device.click_widget(widget_id)
        self._log("click", widget_id=widget_id)

    def enter_text(self, widget_id: str, text: str) -> None:
        self.device.enter_text(widget_id, text)
        self._log("text", widget_id=widget_id, text=text)

    def back(self) -> None:
        self.device.press_back()
        self._log("back")

    def swipe(self) -> None:
        self.device.swipe_from_left()
        self._log("swipe")

    # -- output ---------------------------------------------------------------

    def script(self) -> ReplayScript:
        return ReplayScript(package=self.package, events=list(self._events))
