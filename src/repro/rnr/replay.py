"""Deterministic script replay with divergence reporting.

:meth:`ReplayScript.replay` mirrors the paper's R&R technique — it
re-injects events and *raises* the moment the UI has drifted.  For the
pipeline (``repro replay``, the fragility study, the regression gate)
we need the civilised version: apply the script step by step, observe
the coverage it reaches, and when a step no longer applies report
*which* step broke and *why* instead of unwinding the stack.

The outcome of one script is a :class:`ReplayOutcome`; a whole suite
aggregates into a :class:`SuiteReplayReport`, which converts to a
:class:`~repro.obs.registry.RunRecord` so replay health is recorded,
diffed and gated with the same machinery as coverage sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.adb.bridge import Adb
from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.errors import (
    ActivityNotFoundError,
    AppNotInstalledError,
    ReflectionError,
    ReproError,
    SecurityException,
    WidgetNotFoundError,
)
from repro.rnr.recorder import ReplayScript

#: Divergence reason categories, most specific first.
_REASONS = (
    (WidgetNotFoundError, "widget-missing"),
    (ActivityNotFoundError, "activity-missing"),
    (SecurityException, "not-exported"),
    (ReflectionError, "reflection-failed"),
    (AppNotInstalledError, "not-installed"),
)


def _categorize(exc: ReproError) -> str:
    for cls, reason in _REASONS:
        if isinstance(exc, cls):
            return reason
    return "error"


@dataclass
class ReplayOutcome:
    """What replaying one script against one app version produced."""

    package: str
    name: str = ""
    total: int = 0
    applied: int = 0
    diverged_at: Optional[int] = None  # index of the event that broke
    reason: str = ""                   # divergence category
    error: str = ""                    # the underlying message
    activities: List[str] = field(default_factory=list)
    fragments: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.diverged_at is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "name": self.name,
            "total": self.total,
            "applied": self.applied,
            "ok": self.ok,
            "diverged_at": self.diverged_at,
            "reason": self.reason,
            "error": self.error,
            "activities": list(self.activities),
            "fragments": list(self.fragments),
        }

    def render(self) -> str:
        lines = [
            f"replay {self.name or self.package}: "
            f"{self.applied}/{self.total} events applied "
            + ("(divergence-free)" if self.ok
               else f"(diverged at step {self.diverged_at}: {self.reason})"),
        ]
        if not self.ok and self.error:
            lines.append(f"  cause: {self.error}")
        lines.append(f"  coverage reached: "
                     f"{len(self.activities)} activities, "
                     f"{len(self.fragments)} fragments")
        for name in self.activities:
            lines.append(f"    A {name}")
        for name in self.fragments:
            lines.append(f"    F {name}")
        return "\n".join(lines)


def replay_script(script: ReplayScript, device: Device,
                  apk: Optional[ApkPackage] = None,
                  name: str = "") -> ReplayOutcome:
    """Replay one script event by event on ``device``.

    ``apk`` (when given) is installed first, so a fresh ``Device()`` is
    enough.  After every applied event the reached interface is sampled
    (top activity + attached fragments) — the union is the coverage the
    replay reproduced.  The first event that no longer applies ends the
    run with a categorised divergence; nothing raises.
    """
    if apk is not None:
        device.install(apk)
    adb = Adb(device)
    outcome = ReplayOutcome(package=script.package, name=name,
                            total=len(script.events))
    activities: set = set()
    fragments: set = set()

    def diverge(index: int, reason: str, error: str) -> ReplayOutcome:
        outcome.diverged_at = index
        outcome.reason = reason
        outcome.error = error
        outcome.activities = sorted(activities)
        outcome.fragments = sorted(fragments)
        return outcome

    for index, event in enumerate(script.events):
        try:
            script.apply_event(event, device, adb)
        except ReproError as exc:
            return diverge(index, _categorize(exc), str(exc))
        if not device.app_alive:
            return diverge(index, "app-died",
                           f"app left the foreground after {event.kind}")
        outcome.applied += 1
        activity = device.current_activity_name()
        if activity is not None:
            activities.add(activity)
        fragments.update(device.current_fragment_classes())
    outcome.activities = sorted(activities)
    outcome.fragments = sorted(fragments)
    return outcome


@dataclass
class SuiteReplayReport:
    """Replay outcomes of a whole recorded suite against one app."""

    package: str
    outcomes: List[ReplayOutcome] = field(default_factory=list)

    @property
    def scripts(self) -> int:
        return len(self.outcomes)

    @property
    def diverged(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def events_total(self) -> int:
        return sum(o.total for o in self.outcomes)

    @property
    def events_applied(self) -> int:
        return sum(o.applied for o in self.outcomes)

    @property
    def activities(self) -> List[str]:
        return sorted({a for o in self.outcomes for a in o.activities})

    @property
    def fragments(self) -> List[str]:
        return sorted({f for o in self.outcomes for f in o.fragments})

    @property
    def ok(self) -> bool:
        return self.diverged == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "scripts": self.scripts,
            "diverged": self.diverged,
            "events_total": self.events_total,
            "events_applied": self.events_applied,
            "activities": self.activities,
            "fragments": self.fragments,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        lines = [
            f"replayed {self.scripts} scripts against {self.package}: "
            f"{self.events_applied}/{self.events_total} events applied, "
            f"{self.diverged} diverged",
            f"coverage reached: {len(self.activities)} activities, "
            f"{len(self.fragments)} fragments",
        ]
        for outcome in self.outcomes:
            if outcome.ok:
                continue
            lines.append(f"  {outcome.name or '<script>'}: diverged at "
                         f"step {outcome.diverged_at} ({outcome.reason})")
        return "\n".join(lines)


def replay_suite(scripts: List[ReplayScript], apk: ApkPackage,
                 names: Optional[List[str]] = None) -> SuiteReplayReport:
    """Replay each script on its own fresh device against ``apk``."""
    package = scripts[0].package if scripts else apk.package
    report = SuiteReplayReport(package=package)
    for index, script in enumerate(scripts):
        name = (names[index] if names and index < len(names)
                else f"script{index:04d}")
        report.outcomes.append(
            replay_script(script, Device(), apk=apk, name=name))
    return report


def replay_run_record(report: SuiteReplayReport, label: str = ""):
    """A :class:`~repro.obs.registry.RunRecord` of a suite replay.

    The coverage slot carries the replay health counters the regression
    gate reads (``replay_diverged`` > 0 on an unchanged app is a gated
    violation) next to the reached coverage totals, so replay records
    diff and gate exactly like sweep records.
    """
    from repro.obs.registry import RunRecord

    record = RunRecord(
        label=label or f"replay:{report.package}",
        coverage={
            "replay_scripts": float(report.scripts),
            "replay_diverged": float(report.diverged),
            "replay_events": float(report.events_total),
            "replay_applied": float(report.events_applied),
            "activities_visited": float(len(report.activities)),
            "fragments_visited": float(len(report.fragments)),
        },
    )
    record.run_id = record.compute_id()
    return record
