"""Export generated test cases as self-contained replay scripts.

The explorer's output (:class:`~repro.core.testcase.TestCase`) and the
R&R layer's input (:class:`~repro.rnr.recorder.ReplayScript`) describe
the same thing — an ordered list of concrete UI events — in two
vocabularies.  This module is the translator: every passing test case
of a run exports as a schema-versioned JSON script that ``repro
replay`` re-runs deterministically on a fresh device, DroidWalker's
"reproducible test case" property grafted onto FragDroid's pipeline.
"""

from __future__ import annotations

from typing import List

from repro.core.queue import Operation, OpKind
from repro.core.testcase import TestCase
from repro.errors import ReproError
from repro.rnr.recorder import RecordedEvent, ReplayScript

#: OpKind -> event kind for the operations that translate one-to-one.
_SIMPLE_KINDS = {
    OpKind.LAUNCH: "launch",
    OpKind.SWIPE_OPEN: "swipe",
    OpKind.BACK: "back",
    OpKind.REFLECT: "reflect",
    OpKind.FORCE_START: "start",
}


def event_from_operation(op: Operation, step: int = 0) -> RecordedEvent:
    """Translate one test-case operation into a recorded event.

    ``step`` follows the recorder's convention: the device step count
    *before* the event fires — for a script replayed from a fresh
    device that is simply the event's index, since every event costs
    exactly one step.
    """
    if op.kind is OpKind.CLICK:
        return RecordedEvent(kind="click", widget_id=op.target, step=step)
    if op.kind is OpKind.ENTER_TEXT:
        return RecordedEvent(kind="text", widget_id=op.target,
                             text=op.value, step=step)
    kind = _SIMPLE_KINDS.get(op.kind)
    if kind is None:
        raise ReproError(f"cannot export operation kind {op.kind!r} "
                         "as a replay event")
    return RecordedEvent(kind=kind, widget_id=op.target, step=step)


def script_from_testcase(case: TestCase) -> ReplayScript:
    """The whole test case as one replayable script."""
    events: List[RecordedEvent] = [
        event_from_operation(op, step=index)
        for index, op in enumerate(case.operations)
    ]
    return ReplayScript(package=case.package, events=events)
