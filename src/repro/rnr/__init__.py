"""Record & replay (paper Section I's R&R technique, RERAN-style).

The paper positions record-and-replay as the pre-MBT state of the art:
a human tester's UI events are recorded as a script and replayed on
other devices.  This subpackage implements that technique over the
emulator — and wires it into the pipeline as a first-class citizen:

* :mod:`repro.rnr.recorder` — the manual recorder and the
  schema-versioned :class:`ReplayScript` format;
* :mod:`repro.rnr.export` — the ``Operation -> RecordedEvent``
  translator exporting every generated test case as a replay script;
* :mod:`repro.rnr.replay` — deterministic replay with per-step
  divergence reporting and run-registry records;
* :mod:`repro.rnr.fragility` — the breakage study replaying recorded
  suites against mutated app versions ("scripts break when the UI
  changes", quantified).
"""

from repro.rnr.export import event_from_operation, script_from_testcase
from repro.rnr.fragility import FragilityReport, run_fragility
from repro.rnr.recorder import (
    SCRIPT_SCHEMA,
    Recorder,
    RecordedEvent,
    ReplayScript,
)
from repro.rnr.replay import (
    ReplayOutcome,
    SuiteReplayReport,
    replay_run_record,
    replay_script,
    replay_suite,
)

__all__ = [
    "SCRIPT_SCHEMA",
    "RecordedEvent",
    "Recorder",
    "ReplayScript",
    "ReplayOutcome",
    "SuiteReplayReport",
    "FragilityReport",
    "event_from_operation",
    "script_from_testcase",
    "replay_script",
    "replay_suite",
    "replay_run_record",
    "run_fragility",
]
