"""Record & replay (paper Section I's R&R technique, RERAN-style).

The paper positions record-and-replay as the pre-MBT state of the art:
a human tester's UI events are recorded as a script and replayed on
other devices.  This subpackage implements that technique over the
emulator — both as a baseline to compare against and as a practical
tool for reproducing manually-found paths.
"""

from repro.rnr.recorder import Recorder, RecordedEvent, ReplayScript

__all__ = ["RecordedEvent", "Recorder", "ReplayScript"]
