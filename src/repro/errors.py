"""Exception hierarchy for the FragDroid reproduction.

Every layer of the stack (APK model, smali toolchain, device emulator,
explorer) raises subclasses of :class:`ReproError` so callers can catch
errors from one layer without accidentally swallowing another layer's bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# APK / packaging layer
# --------------------------------------------------------------------------

class ApkError(ReproError):
    """Malformed or inconsistent APK package."""


class ManifestError(ApkError):
    """Invalid AndroidManifest content (duplicate components, bad names)."""


class ResourceError(ApkError):
    """Resource table violation (duplicate IDs, unknown resource names)."""


class PackedApkError(ApkError):
    """The APK is packed/encrypted and cannot be decoded.

    Mirrors the apps the paper had to rule out of the 217 before selecting
    the 15 evaluation targets (Section VII-A).
    """


# --------------------------------------------------------------------------
# Smali toolchain
# --------------------------------------------------------------------------

class SmaliError(ReproError):
    """Problems assembling or parsing smali code."""


class DecompileError(SmaliError):
    """The Java decompiler could not process a smali class."""


# --------------------------------------------------------------------------
# Device emulator
# --------------------------------------------------------------------------

class DeviceError(ReproError):
    """Generic device-level failure."""


class AppNotInstalledError(DeviceError):
    """Operation targeted a package that is not installed."""


class ActivityNotFoundError(DeviceError):
    """Intent resolution failed: no matching activity.

    Matches the ``android.content.ActivityNotFoundException`` semantics.
    """


class SecurityException(DeviceError):
    """Component not exported and caller lacks permission to start it."""


class AppCrashError(DeviceError):
    """The app force-closed (FC) while handling an event."""

    def __init__(self, package: str, component: str, reason: str) -> None:
        super().__init__(f"FC in {package} ({component}): {reason}")
        self.package = package
        self.component = component
        self.reason = reason


class TransientError(DeviceError):
    """A retryable, environment-caused failure (flaky cable, busy adb
    server, momentary unresponsiveness) — the class of errors the
    resilience layer (:mod:`repro.faults`) is allowed to retry."""


class TransientAdbError(TransientError):
    """An adb command failed for a transient reason (``error: device
    still authorizing``, ``error: closed``); reissuing it usually works."""


class CommandTimeoutError(TransientError):
    """A command or widget interaction hung past its deadline.

    Covers both an adb command that never returns and an ANR-style
    unresponsive widget — from the harness's perspective both surface
    as the instrumentation timing out.
    """


class DeviceDisconnectedError(TransientAdbError):
    """The device dropped off the bridge mid-run (``adb devices`` shows
    it offline); an ``adb reconnect`` is required before retrying."""


class WorkerDiedError(ReproError):
    """A sweep worker process died mid-chunk (OOM kill, SIGKILL,
    ``BrokenProcessPool``).

    Every app of the dead chunk — including those the worker had
    already finished, whose results died with it — is marked with this
    error instead of aborting the whole sweep.  The service scheduler
    (:mod:`repro.serve`) re-admits such apps under a retry policy.
    """


class ReflectionError(DeviceError):
    """A reflective fragment switch failed.

    Covers both paper-reported failure modes: missing constructor
    parameters (com.inditex.zara) and fragments not managed by a
    FragmentManager (com.mobilemotion.dubsmash).
    """


class WidgetNotFoundError(DeviceError):
    """A driver operation referenced a widget absent from the current UI."""


# --------------------------------------------------------------------------
# Explorer
# --------------------------------------------------------------------------

class ExplorationError(ReproError):
    """FragDroid's exploration loop hit an unrecoverable condition."""


class TestCaseError(ExplorationError):
    """A generated test case could not be compiled or replayed."""

    # Not a pytest class, despite the name.
    __test__ = False


# --------------------------------------------------------------------------
# Analysis service (repro.serve)
# --------------------------------------------------------------------------

class ServeError(ReproError):
    """A failure in the analysis service layer (:mod:`repro.serve`)."""


class AdmissionError(ServeError):
    """A job submission was rejected by admission control.

    The typed supertype API clients switch on: the queue is full
    (:class:`QueueFullError`), a budget is out of bounds
    (:class:`JobBudgetError`), or the job references unknown apps.
    """


class QueueFullError(AdmissionError):
    """The job queue is at its bound; backpressure — resubmit later."""


class JobBudgetError(AdmissionError):
    """A per-job budget (events, apps, time) failed validation at
    submit: non-positive, or beyond the server's admission caps."""


class UnknownJobError(ServeError):
    """An operation referenced a job id the service does not know."""


class JobStateError(ServeError):
    """An operation is invalid for the job's current state (e.g.
    cancelling a job that already finished)."""
