"""Fault models: what goes wrong, how often, and reproducibly.

A :class:`FaultPlan` is a frozen description of an adverse environment:
per-operation fault rates plus a seed.  It never mutates; each consumer
derives a :class:`FaultInjector` — a seeded RNG stream plus a tally of
everything it injected — scoped by a string (typically the package
under test) so a parallel sweep draws one independent, deterministic
fault sequence per app regardless of thread scheduling.

The named profiles mirror the conditions the paper's evaluation ran
under: ``none`` (today's perfect device), ``mild`` (the occasional
flake a healthy phone farm shows), and ``hostile`` (a failing cable,
an overloaded device — the worst night of the experiment).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

#: Fault kinds an injector can draw, keyed by the rate that governs them.
ADB_FAULTS = ("disconnect", "adb-hang", "adb-transient")
CLICK_FAULTS = ("anr", "spurious-crash")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, per-operation fault rates (all probabilities in [0, 1])."""

    profile: str = "custom"
    seed: int = 0
    # Per-adb-command rates (install / uninstall / am start /
    # am instrument / logcat):
    adb_transient_rate: float = 0.0   # command fails, retry usually works
    adb_hang_rate: float = 0.0        # command hangs -> CommandTimeoutError
    disconnect_rate: float = 0.0      # device drops off the bridge
    # Per-click rates (the Case 3 sweep):
    anr_rate: float = 0.0             # widget unresponsive (ANR)
    spurious_crash_rate: float = 0.0  # app force-closes for no app reason

    def __post_init__(self) -> None:
        for name, value in self.rates().items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {value!r}"
                )

    def rates(self) -> Dict[str, float]:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name.endswith("_rate")
        }

    @property
    def enabled(self) -> bool:
        """Whether this plan can inject anything at all."""
        return any(rate > 0 for rate in self.rates().values())

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def injector(self, scope: str = "") -> "FaultInjector":
        return FaultInjector(self, scope=scope)

    def retry_rng(self, scope: str = "") -> random.Random:
        """The jitter stream — separate from the fault stream so adding
        a retry never shifts which faults fire."""
        return random.Random(f"retry:{self.seed}:{scope}")


FAULT_PROFILES: Dict[str, FaultPlan] = {
    "none": FaultPlan(profile="none"),
    "mild": FaultPlan(
        profile="mild",
        adb_transient_rate=0.05,
        adb_hang_rate=0.02,
        disconnect_rate=0.01,
        anr_rate=0.03,
        spurious_crash_rate=0.02,
    ),
    "hostile": FaultPlan(
        profile="hostile",
        adb_transient_rate=0.20,
        adb_hang_rate=0.08,
        disconnect_rate=0.04,
        anr_rate=0.10,
        spurious_crash_rate=0.08,
    ),
}


def fault_plan(profile: str, seed: int = 0) -> FaultPlan:
    """The named profile, reseeded."""
    try:
        plan = FAULT_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {profile!r}; "
            f"choose from {sorted(FAULT_PROFILES)}"
        ) from None
    return plan.with_seed(seed)


class FaultInjector:
    """One deterministic fault stream plus the tally of injected faults.

    Draw order is the call order, so a single-threaded exploration
    yields the same fault sequence on every run with the same plan —
    the property every chaos test and every debugging session relies
    on.  Zero-rate faults consume no randomness, so the ``none``
    profile draws nothing.
    """

    def __init__(self, plan: FaultPlan, scope: str = "") -> None:
        self.plan = plan
        self.scope = scope
        self._rng = random.Random(f"faults:{plan.seed}:{scope}")
        self.injected: Dict[str, int] = {}

    def _roll(self, rate: float) -> bool:
        return rate > 0 and self._rng.random() < rate

    def _record(self, kind: str) -> str:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        return kind

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- draw points -------------------------------------------------------

    def adb_fault(self) -> Optional[str]:
        """One draw per adb command: ``disconnect`` | ``adb-hang`` |
        ``adb-transient`` | None (mutually exclusive, in that order)."""
        if self._roll(self.plan.disconnect_rate):
            return self._record("disconnect")
        if self._roll(self.plan.adb_hang_rate):
            return self._record("adb-hang")
        if self._roll(self.plan.adb_transient_rate):
            return self._record("adb-transient")
        return None

    def click_fault(self) -> Optional[str]:
        """One draw per widget click: ``anr`` | ``spurious-crash`` |
        None."""
        if self._roll(self.plan.anr_rate):
            return self._record("anr")
        if self._roll(self.plan.spurious_crash_rate):
            return self._record("spurious-crash")
        return None
