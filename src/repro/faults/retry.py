"""Bounded retries with exponential backoff and deterministic jitter.

A :class:`RetryPolicy` is a frozen schedule; :meth:`RetryPolicy.call`
executes a thunk under it, sleeping on a pluggable clock.  Production
would pass a wall clock; everything in this repository passes a
:class:`SimulatedClock`, so a hostile-profile sweep that "backs off"
for minutes of simulated time still finishes in milliseconds — and the
jitter comes from a seeded RNG, so two runs back off identically.

Only :class:`~repro.errors.TransientError` subclasses are retried.
Anything else — an app bug, a bad test case, a missing package — is a
real signal and propagates on the first raise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.errors import TransientError
from repro.obs import NULL_TRACER, Tracer

T = TypeVar("T")


class SimulatedClock:
    """A clock that jumps instead of waiting."""

    def __init__(self) -> None:
        self.now = 0.0

    def sleep(self, seconds: float) -> None:
        self.now += seconds


@dataclass
class RetryStats:
    """What the policy spent across all calls it guarded."""

    retries: int = 0      # re-attempts after a transient failure
    recoveries: int = 0   # calls that succeeded after >= 1 retry
    giveups: int = 0      # calls that exhausted the attempt budget
    backoff_s: float = 0.0  # total (simulated) time slept


@dataclass(frozen=True)
class RetryPolicy:
    """max_attempts total tries; delay = base * multiplier^retry,
    capped at max_delay, then jittered by ±jitter (a fraction).

    ``max_total_delay`` adds a *total-deadline* budget on top of the
    per-attempt schedule: the sum of all backoff sleeps under one
    ``call`` never exceeds it, and once the budget is spent the next
    transient failure gives up immediately even if attempts remain.
    ``None`` (the default) keeps the pre-existing attempts-only bound.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    max_total_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_total_delay is not None and self.max_total_delay <= 0:
            raise ValueError(f"max_total_delay must be positive, "
                             f"got {self.max_total_delay}")

    def delay_for(self, retry: int,
                  rng: Optional[random.Random] = None,
                  elapsed: float = 0.0) -> float:
        """The backoff before retry number ``retry`` (0-based).

        ``elapsed`` is the backoff already spent under the current
        call; when ``max_total_delay`` is set the returned delay is
        clamped so the total never crosses the deadline budget.
        """
        delay = min(self.max_delay, self.base_delay * self.multiplier ** retry)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        if self.max_total_delay is not None:
            delay = max(0.0, min(delay, self.max_total_delay - elapsed))
        return delay

    def call(
        self,
        fn: Callable[[], T],
        *,
        clock: SimulatedClock,
        rng: Optional[random.Random] = None,
        stats: Optional[RetryStats] = None,
        tracer: Tracer = NULL_TRACER,
        on_retry: Optional[Callable[[TransientError], None]] = None,
    ) -> T:
        """Run ``fn`` under this policy.

        Retries on :class:`TransientError` only; re-raises the last
        failure once the attempt budget — or the ``max_total_delay``
        wall-clock budget — is spent.  ``on_retry`` runs after each
        backoff sleep — the hook the adb layer uses to issue its
        ``adb reconnect``.
        """
        slept = 0.0
        for attempt in range(self.max_attempts):
            try:
                result = fn()
            except TransientError as exc:
                budget_spent = (self.max_total_delay is not None
                                and slept >= self.max_total_delay)
                if attempt + 1 >= self.max_attempts or budget_spent:
                    if stats is not None:
                        stats.giveups += 1
                    tracer.inc("retry.giveups")
                    raise
                delay = self.delay_for(attempt, rng, elapsed=slept)
                slept += delay
                if stats is not None:
                    stats.retries += 1
                    stats.backoff_s += delay
                tracer.inc("retry.attempts")
                clock.sleep(delay)
                if on_retry is not None:
                    on_retry(exc)
                continue
            if attempt > 0:
                if stats is not None:
                    stats.recoveries += 1
                tracer.inc("retry.recoveries")
            return result
        raise AssertionError("unreachable")  # pragma: no cover
