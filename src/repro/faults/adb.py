"""The adb bridge under adversity: injected faults, healed by retries.

:class:`FaultyAdb` fronts every command issue (install, uninstall,
``am start``, ``am instrument``, logcat) with a fault draw and a
:class:`~repro.faults.retry.RetryPolicy`:

* a **transient** failure or a **hang** raises, backs off, and reissues
  the command;
* a **disconnect** takes the bridge down — every subsequent command
  fails until the retry path performs the ``adb reconnect`` (logged in
  the command transcript, like the real shell session would show).

The fault gate sits *before* the delegated command, so each command's
real effect happens exactly once, on the first attempt that clears the
gate — retries re-roll the environment, not the device state.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TypeVar

from repro.adb.bridge import Adb
from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.errors import (
    CommandTimeoutError,
    DeviceDisconnectedError,
    TransientAdbError,
    TransientError,
)
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.retry import RetryPolicy, RetryStats, SimulatedClock
from repro.obs import EventLog, Tracer
from repro.obs.events import FAULT_INJECTED, NULL_EVENT_LOG, RETRY

T = TypeVar("T")


class FaultyAdb(Adb):
    """An :class:`Adb` whose commands can fail and heal.

    Shares the device's fault injector when the device is a
    :class:`FaultyDevice`, so adb-level and click-level faults draw
    from one deterministic per-app stream.
    """

    def __init__(
        self,
        device: Device,
        plan: FaultPlan,
        policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
        clock: Optional[SimulatedClock] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        super().__init__(device, tracer=tracer)
        self.plan = plan
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else SimulatedClock()
        self.events = events if events is not None else NULL_EVENT_LOG
        # Which app the flight-recorder events file under; the explorer
        # overwrites this with the package actually being explored.
        self.event_app = ""
        self.injector: FaultInjector = (
            device.injector if isinstance(device, FaultyDevice)
            else plan.injector()
        )
        self.retry_stats = RetryStats()
        self.reconnects = 0
        self._retry_rng = plan.retry_rng(self.injector.scope)
        self._connected = True

    # -- fault gate --------------------------------------------------------

    def _issue(self, op: str, fn: Callable[[], T]) -> T:
        def attempt() -> T:
            self._maybe_fault(op)
            return fn()

        return self.policy.call(
            attempt,
            clock=self.clock,
            rng=self._retry_rng,
            stats=self.retry_stats,
            tracer=self.tracer,
            on_retry=self._on_retry,
        )

    def _maybe_fault(self, op: str) -> None:
        if not self._connected:
            raise DeviceDisconnectedError(
                f"adb {op}: error: device offline"
            )
        kind = self.injector.adb_fault()
        if kind is None:
            return
        self.tracer.inc(f"faults.{kind}")
        self.events.emit(FAULT_INJECTED, step=self.device.steps,
                         app=self.event_app, fault=kind, op=op)
        if kind == "disconnect":
            self._connected = False
            raise DeviceDisconnectedError(
                f"adb {op}: error: device disconnected"
            )
        if kind == "adb-hang":
            raise CommandTimeoutError(f"adb {op}: no response (hang)")
        raise TransientAdbError(f"adb {op}: error: device still authorizing")

    def _on_retry(self, exc: TransientError) -> None:
        self.events.emit(RETRY, step=self.device.steps, app=self.event_app,
                         error=type(exc).__name__)
        if isinstance(exc, DeviceDisconnectedError) and not self._connected:
            self.command_log.append("adb reconnect")
            self._connected = True
            self.reconnects += 1
            self.tracer.inc("faults.reconnects")

    @property
    def connected(self) -> bool:
        return self._connected

    # -- guarded command surface -------------------------------------------

    def install(self, apk: ApkPackage) -> str:
        return self._issue("install", lambda: Adb.install(self, apk))

    def uninstall(self, package: str) -> str:
        return self._issue("uninstall", lambda: Adb.uninstall(self, package))

    def am_start(
        self,
        component: str,
        action: Optional[str] = None,
        category: Optional[str] = None,
    ) -> bool:
        return self._issue(
            "am start",
            lambda: Adb.am_start(self, component,
                                 action=action, category=category),
        )

    def am_instrument(self, test_package: str) -> None:
        return self._issue(
            "am instrument", lambda: Adb.am_instrument(self, test_package)
        )

    def logcat(self, tag: Optional[str] = None) -> List[str]:
        return self._issue("logcat", lambda: Adb.logcat(self, tag))
