"""A device that misbehaves on purpose.

:class:`FaultyDevice` is a :class:`~repro.android.device.Device` whose
widget clicks can fail the two ways real phones fail mid-sweep:

* **ANR** — the widget swallows the tap and the instrumentation times
  out waiting for a reaction (:class:`~repro.errors.CommandTimeoutError`);
* **spurious crash** — the app force-closes even though nothing in the
  app logic would (the paper's "FC" case, minus the app's fault).

Both still consume an input event — the tap happened, the phone just
didn't cooperate — so the event budget accounting matches a real run.
Faults draw from the plan's seeded stream; with the same plan and the
same operation sequence, the same clicks fail on every run.
"""

from __future__ import annotations

from typing import Optional

from repro.android.device import Device
from repro.errors import CommandTimeoutError
from repro.faults.plan import FaultInjector, FaultPlan


class FaultyDevice(Device):
    """One emulated device plus an injected-fault stream."""

    def __init__(self, plan: FaultPlan, scope: str = "",
                 injector: Optional[FaultInjector] = None) -> None:
        super().__init__()
        self.plan = plan
        self.injector = injector if injector is not None \
            else plan.injector(scope)

    def click_widget(self, widget_id: str) -> None:
        if not self.app_alive:
            super().click_widget(widget_id)
            return
        fault = self.injector.click_fault()
        if fault == "anr":
            self.steps += 1
            self._record_event("tap", target=widget_id)
            self.logcat.log("W", "ActivityManager",
                            f"ANR: {widget_id} not responding", self.steps)
            raise CommandTimeoutError(
                f"widget {widget_id!r} unresponsive (ANR)"
            )
        if fault == "spurious-crash":
            package = self.foreground.package
            self.steps += 1
            self._record_event("tap", target=widget_id)
            self.logcat.log("E", "AndroidRuntime",
                            f"FATAL EXCEPTION (injected) in {package}",
                            self.steps)
            self._handle_crash(package)
            return
        super().click_widget(widget_id)


def make_device(plan: Optional[FaultPlan], scope: str = "") -> Device:
    """A device matching the plan: faulty when one is active, plain
    otherwise — the single construction point sweeps and the CLI use."""
    if plan is None or not plan.enabled:
        return Device()
    return FaultyDevice(plan, scope=scope)
