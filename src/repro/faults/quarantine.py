"""A circuit breaker for misbehaving widgets.

One button that force-closes the app on every click would otherwise
consume the whole restart budget of every interface it appears on:
click, crash, relaunch, replay, click again.  The quarantine counts
crash/hang strikes per widget id and, once a widget crosses the
threshold, removes it from all further click sweeps — the event budget
goes to the rest of the interface instead.
"""

from __future__ import annotations

from typing import Dict, List, Set


class WidgetQuarantine:
    """Per-widget strike counter with a trip threshold.

    An ``active=False`` quarantine records nothing and blocks nothing —
    the stance of a fault-free run, where deterministic app crashes are
    findings, not noise to suppress.
    """

    def __init__(self, threshold: int = 3, active: bool = True) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.active = active
        self._strikes: Dict[str, int] = {}
        self._reasons: Dict[str, str] = {}
        self._blocked: Set[str] = set()

    def record(self, widget_id: str, kind: str) -> bool:
        """Count one crash/hang against a widget; True when this strike
        trips the breaker."""
        if not self.active:
            return False
        strikes = self._strikes.get(widget_id, 0) + 1
        self._strikes[widget_id] = strikes
        self._reasons[widget_id] = kind
        if strikes >= self.threshold and widget_id not in self._blocked:
            self._blocked.add(widget_id)
            return True
        return False

    def blocked(self, widget_id: str) -> bool:
        return widget_id in self._blocked

    def blocked_ids(self) -> List[str]:
        return sorted(self._blocked)

    def strikes(self, widget_id: str) -> int:
        return self._strikes.get(widget_id, 0)

    def reason(self, widget_id: str) -> str:
        return self._reasons.get(widget_id, "")

    def __len__(self) -> int:
        return len(self._blocked)
