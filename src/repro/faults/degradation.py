"""Graceful degradation: the run's account of its own adversity.

A resilient run does not abort on faults — it absorbs them and reports
what that cost: which faults were injected (or genuinely encountered),
how much retrying they took, which widgets got quarantined, and which
queue items had to be re-enqueued or abandoned.  The section appears in
``ExplorationResult.degradation`` (and the JSON/HTML reports) only when
a fault plan was active, so fault-free output stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    AppCrashError,
    CommandTimeoutError,
    DeviceDisconnectedError,
    PackedApkError,
    TransientAdbError,
    WorkerDiedError,
)


@dataclass
class Degradation:
    """Faults seen, retries spent, and recovery outcomes of one run."""

    profile: str
    seed: int
    faults: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    recoveries: int = 0
    giveups: int = 0
    backoff_s: float = 0.0
    reconnects: int = 0
    quarantined: List[str] = field(default_factory=list)
    requeued_items: int = 0
    abandoned_items: int = 0

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())

    def to_dict(self) -> Dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "faults": dict(sorted(self.faults.items())),
            "total_faults": self.total_faults,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "giveups": self.giveups,
            "backoff_s": round(self.backoff_s, 6),
            "reconnects": self.reconnects,
            "quarantined": list(self.quarantined),
            "requeued_items": self.requeued_items,
            "abandoned_items": self.abandoned_items,
        }

    def render(self) -> str:
        """Human-readable lines for the coverage report."""
        faults = ", ".join(f"{kind}={count}"
                           for kind, count in sorted(self.faults.items()))
        lines = [
            f"fault profile: {self.profile} (seed {self.seed})",
            f"faults injected: {self.total_faults}"
            + (f" ({faults})" if faults else ""),
            f"retries: {self.retries} ({self.recoveries} recovered, "
            f"{self.giveups} gave up, {self.backoff_s:.2f}s backoff, "
            f"{self.reconnects} reconnects)",
            f"quarantined widgets: {len(self.quarantined)}"
            + (f" ({', '.join(self.quarantined)})" if self.quarantined else ""),
            f"queue items re-enqueued: {self.requeued_items}, "
            f"abandoned: {self.abandoned_items}",
        ]
        return "\n".join(lines)


def classify_fault(exc: BaseException) -> Optional[str]:
    """Map a captured sweep failure to its fault family (None when the
    failure is not a known fault kind)."""
    if isinstance(exc, DeviceDisconnectedError):
        return "disconnect"
    if isinstance(exc, TransientAdbError):
        return "adb-transient"
    if isinstance(exc, CommandTimeoutError):
        return "timeout"
    if isinstance(exc, AppCrashError):
        return "crash"
    if isinstance(exc, PackedApkError):
        return "packed-apk"
    if isinstance(exc, WorkerDiedError):
        return "worker-died"
    return None
