"""Fault injection and resilience (chaos layer).

The paper's evaluation ran against real phones, where adb commands
hang, apps force-close mid-sweep, and instrumented test cases flake —
its crash handling and restart rails exist because of that adversity.
This package makes the adversity reproducible and the recovery
machinery testable:

* :class:`FaultPlan` / :class:`FaultInjector` — seeded, per-operation
  fault rates with named profiles (``none`` / ``mild`` / ``hostile``);
* :class:`FaultyDevice` / :class:`FaultyAdb` — the device and bridge
  wrappers that inject transient adb errors, command hangs, mid-run
  disconnects, ANR-unresponsive widgets, and spurious app crashes;
* :class:`RetryPolicy` + :class:`SimulatedClock` — bounded exponential
  backoff with deterministic jitter, instant under test;
* :class:`WidgetQuarantine` — the circuit breaker that stops one bad
  button from eating the event budget;
* :class:`Degradation` — the per-run account of faults seen, retries
  spent, and recovery outcomes, attached to ``ExplorationResult``.

Everything is opt-in through ``FragDroidConfig``: with no fault plan
the explorer constructs the plain ``Adb``/``Device`` path and every
output stays byte-identical to a fault-free run.
"""

from repro.faults.adb import FaultyAdb
from repro.faults.degradation import Degradation, classify_fault
from repro.faults.device import FaultyDevice, make_device
from repro.faults.plan import (
    ADB_FAULTS,
    CLICK_FAULTS,
    FAULT_PROFILES,
    FaultInjector,
    FaultPlan,
    fault_plan,
)
from repro.faults.quarantine import WidgetQuarantine
from repro.faults.retry import RetryPolicy, RetryStats, SimulatedClock

__all__ = [
    "ADB_FAULTS",
    "CLICK_FAULTS",
    "Degradation",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultPlan",
    "FaultyAdb",
    "FaultyDevice",
    "RetryPolicy",
    "RetryStats",
    "SimulatedClock",
    "WidgetQuarantine",
    "classify_fault",
    "fault_plan",
    "make_device",
]
