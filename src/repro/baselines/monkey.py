"""The UI/Application Exerciser Monkey.

A faithful miniature of ``adb shell monkey``: a seeded pseudo-random
stream of taps, text, back presses and edge swipes fired at whatever is
on screen.  It has no model, cannot be targeted, and restarts the app
when it falls off — the paper's archetype of "random input tests …
not programmable and cannot be controlled accurately".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.adb.bridge import Adb
from repro.android.device import Device
from repro.android.views import SCREEN_HEIGHT, SCREEN_WIDTH
from repro.apk.package import ApkPackage
from repro.errors import DeviceError
from repro.obs import NULL_TRACER, Tracer


@dataclass
class MonkeyResult:
    package: str
    events: int
    visited_activities: Set[str] = field(default_factory=set)
    visited_fragment_classes: Set[str] = field(default_factory=set)
    crashes: int = 0


class Monkey:
    """``monkey -p <package> -s <seed> <count>``."""

    # Event mix loosely follows monkey's default profile: mostly touches.
    TOUCH_WEIGHT = 0.70
    TEXT_WEIGHT = 0.10
    BACK_WEIGHT = 0.10
    SWIPE_WEIGHT = 0.10

    def __init__(self, device: Device, seed: int = 0,
                 tracer: Optional[Tracer] = None) -> None:
        self.device = device
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.adb = Adb(device, tracer=self.tracer)
        self.rng = random.Random(seed)

    def run(self, apk: ApkPackage, event_count: int = 500) -> MonkeyResult:
        with self.tracer.span("baseline.monkey", app=apk.package):
            return self._run(apk, event_count)

    def _run(self, apk: ApkPackage, event_count: int) -> MonkeyResult:
        self.adb.install(apk)
        package = apk.package
        result = MonkeyResult(package=package, events=event_count)
        try:
            self.adb.am_start_launcher(package)
        except DeviceError:
            return result
        self._observe(result)
        for _ in range(event_count):
            if not self.device.app_alive:
                # Monkey relaunches the target when it exits or crashes.
                try:
                    self.adb.am_start_launcher(package)
                except DeviceError:
                    break
            roll = self.rng.random()
            if roll < self.TOUCH_WEIGHT:
                self.tracer.inc("clicks")
                self.device.tap(
                    self.rng.randrange(SCREEN_WIDTH),
                    self.rng.randrange(SCREEN_HEIGHT),
                )
            elif roll < self.TOUCH_WEIGHT + self.TEXT_WEIGHT:
                self._random_text()
            elif roll < self.TOUCH_WEIGHT + self.TEXT_WEIGHT + self.BACK_WEIGHT:
                self.device.press_back()
            else:
                self.device.swipe_from_left()
            self._observe(result)
        self.tracer.inc("events.injected", result.events)
        result.crashes = self.device.crash_count
        return result

    def _random_text(self) -> None:
        for widget in self.device.ui_dump():
            if widget.accepts_text:
                letters = "abcdefghijklmnopqrstuvwxyz"
                text = "".join(self.rng.choice(letters) for _ in range(4))
                self.device.enter_text(widget.widget_id, text)
                return

    def _observe(self, result: MonkeyResult) -> None:
        activity = self.device.current_activity_name()
        if activity:
            result.visited_activities.add(activity)
        # Monkey itself has no notion of fragments; this oracle view is
        # recorded for the comparison benches only.
        for fragment in self.device.current_fragment_classes():
            result.visited_fragment_classes.add(fragment)
