"""Baseline explorers for comparison (paper Sections I, VII-C, IX).

* :class:`~repro.baselines.monkey.Monkey` — Google's random-event
  exerciser, the paper's example of an unprogrammable tool that "can
  occasionally reach these Fragments" but cannot be controlled;
* :class:`~repro.baselines.activity_explorer.ActivityExplorer` — the
  "traditional approach" of Activity-level model-based testing
  (A3E/TrimDroid style): model the Activity transition graph, treat
  every Activity as one fixed UI state, never switch Fragments
  deliberately, attribute every API call to the current Activity;
* :class:`~repro.baselines.depth_first.DepthFirstExplorer` — A3E's
  depth-first systematic strategy, for the runtime comparison.
"""

from repro.baselines.activity_explorer import ActivityExplorer, ActivityOnlyResult
from repro.baselines.depth_first import DepthFirstExplorer
from repro.baselines.monkey import Monkey, MonkeyResult

__all__ = [
    "ActivityExplorer",
    "ActivityOnlyResult",
    "DepthFirstExplorer",
    "Monkey",
    "MonkeyResult",
]
