"""Activity-level model-based testing — the "traditional approach".

This is the tool class the paper compares against (A3E's targeted
exploration, TrimDroid's Activity transition models): it performs the
same static analysis and systematic clicking as FragDroid, but treats
the Activity as one fixed UI state.  Consequences, all observable in the
benches:

* each Activity's interface is processed exactly once — a Fragment
  transformation or drawer opening does not create a new state, so the
  widgets it reveals are never enumerated (Challenge 1 / Challenge 2);
* there is no reflection switching, so Fragments reachable only through
  hidden relationships are never shown;
* every sensitive-API invocation is attributed to the Activity on top —
  calls made by Fragment code are misattributed, and calls in
  never-shown Fragments are missed entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.adb.bridge import Adb
from repro.adb.instrumentation import instrument_manifest
from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.core.ui_driver import UiDriver
from repro.errors import DeviceError, ReproError
from repro.obs import NULL_TRACER, Tracer
from repro.robotium.solo import Solo
from repro.static.extractor import StaticInfo, extract_static_info
from repro.types import ApiInvocation, InvocationSource


@dataclass
class ActivityOnlyResult:
    """What an Activity-level tool reports for one app."""

    package: str
    visited_activities: Set[str] = field(default_factory=set)
    # The tool's own attribution: (api, activity-it-blamed).
    attributed: List[Tuple[str, str]] = field(default_factory=list)
    # Ground truth of what actually fired while it ran (for scoring).
    ground_truth: List[ApiInvocation] = field(default_factory=list)
    events: int = 0
    crashes: int = 0

    def detected_apis(self) -> Set[str]:
        return {api for api, _ in self.attributed}

    def misattributed_fragment_calls(self) -> int:
        """Invocations that really came from Fragments but were blamed
        on an Activity."""
        return sum(
            1 for inv in self.ground_truth
            if inv.source is InvocationSource.FRAGMENT
        )


class ActivityExplorer:
    """A systematic Activity-state explorer."""

    def __init__(self, device: Device, max_events: int = 20000,
                 forced_start: bool = True,
                 tracer: Optional[Tracer] = None) -> None:
        self.device = device
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.adb = Adb(device, tracer=self.tracer)
        self.solo = Solo(device)
        self.max_events = max_events
        self.forced_start = forced_start

    def run(self, apk: ApkPackage,
            info: Optional[StaticInfo] = None) -> ActivityOnlyResult:
        with self.tracer.span("baseline.activity_mbt", app=apk.package):
            return self._run(apk, info)

    def _run(self, apk: ApkPackage,
             info: Optional[StaticInfo] = None) -> ActivityOnlyResult:
        if info is None:
            info = extract_static_info(apk, tracer=self.tracer)
        installed = instrument_manifest(apk) if self.forced_start else apk
        self.adb.install(installed)
        package = apk.package
        result = ActivityOnlyResult(package=package)
        driver = UiDriver(self.solo, info)
        api_cursor = len(self.device.api_monitor.invocations)

        def consume_api_log() -> None:
            nonlocal api_cursor
            fresh = self.device.api_monitor.invocations[api_cursor:]
            api_cursor = len(self.device.api_monitor.invocations)
            blamed = self.device.current_activity_name()
            for invocation in fresh:
                if invocation.component.package != package:
                    continue
                result.ground_truth.append(invocation)
                result.attributed.append(
                    (invocation.api, blamed or invocation.component.cls)
                )

        # Work list: operation paths reaching unprocessed activities.
        pending: List[Tuple[Tuple[Tuple[str, str], ...], str]] = []
        processed: Set[str] = set()

        def replay(path: Tuple[Tuple[str, str], ...]) -> bool:
            self.device.force_stop(package)
            try:
                self.adb.am_start_launcher(package)
            except DeviceError:
                return False
            consume_api_log()
            for kind, target in path:
                try:
                    if kind == "click":
                        self.solo.click_on_view(target)
                    elif kind == "force":
                        from repro.types import ComponentName
                        self.device.start_activity(ComponentName.parse(target))
                except ReproError:
                    return False
                consume_api_log()
                if not self.device.app_alive:
                    return False
            return True

        pending.append(((), "entry"))
        while pending and self.device.steps < self.max_events:
            path, _label = pending.pop(0)
            if not replay(path):
                result.crashes = self.device.crash_count
                continue
            activity = self.device.current_activity_name()
            if activity is None:
                continue
            result.visited_activities.add(activity)
            if activity in processed:
                continue
            processed.add(activity)
            # One sweep per Activity over the widgets present on arrival —
            # the fixed-UI-state assumption.
            driver.fill_inputs()
            consume_api_log()
            widget_ids = driver.clickable_ids()
            for widget_id in widget_ids:
                if self.device.steps >= self.max_events:
                    break
                if not self.device.app_alive and not replay(path):
                    break
                before = self.device.current_activity_name()
                try:
                    self.tracer.inc("clicks")
                    self.solo.click_on_view(widget_id)
                except ReproError:
                    continue
                consume_api_log()
                after = self.device.current_activity_name()
                if after is None:
                    result.crashes = self.device.crash_count
                    replay(path)
                    continue
                if any(w.layer in ("dialog", "popup")
                       for w in self.device.ui_dump()):
                    # Same popup handling as FragDroid: dismiss via blank
                    # space and keep clicking.
                    self.device.tap(1040, 1900)
                    continue
                if after != before:
                    result.visited_activities.add(after)
                    if after not in processed:
                        pending.append(
                            (path + (("click", widget_id),), after)
                        )
                    replay(path)

        if self.forced_start:
            for activity in info.activities:
                if (activity in result.visited_activities
                        or self.device.steps >= self.max_events):
                    continue
                component = f"{package}/{activity}"
                if replay((("force", component),)):
                    current = self.device.current_activity_name()
                    if current == activity:
                        result.visited_activities.add(activity)
        result.events = self.device.steps
        result.crashes = self.device.crash_count
        self.tracer.inc("events.injected", result.events)
        return result
