"""Depth-first systematic exploration (A3E's second strategy).

Mimics user interactions in depth-first order: click the first
unexplored widget of the current interface, recurse into whatever it
opens, backtrack with the back key when an interface is exhausted.  Like
A3E it is Activity-grained ("more systematic, albeit slower") — included
for the runtime/coverage comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.adb.bridge import Adb
from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.errors import DeviceError, ReproError
from repro.obs import NULL_TRACER, Tracer
from repro.robotium.solo import Solo


@dataclass
class DepthFirstResult:
    package: str
    visited_activities: Set[str] = field(default_factory=set)
    visited_fragment_classes: Set[str] = field(default_factory=set)
    events: int = 0
    max_depth_reached: int = 0


class DepthFirstExplorer:
    """Stack-based DFS over interfaces, keyed by Activity."""

    def __init__(self, device: Device, max_events: int = 20000,
                 max_depth: int = 12,
                 tracer: Optional[Tracer] = None) -> None:
        self.device = device
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.adb = Adb(device, tracer=self.tracer)
        self.solo = Solo(device)
        self.max_events = max_events
        self.max_depth = max_depth

    def run(self, apk: ApkPackage) -> DepthFirstResult:
        with self.tracer.span("baseline.dfs", app=apk.package):
            return self._run(apk)

    def _run(self, apk: ApkPackage) -> DepthFirstResult:
        self.adb.install(apk)
        result = DepthFirstResult(package=apk.package)
        try:
            self.adb.am_start_launcher(apk.package)
        except DeviceError:
            return result
        # Per-activity set of widgets already tried (activity-grained
        # state, as in A3E).
        tried: Dict[str, Set[str]] = {}
        self._observe(result)
        self._dfs(result, tried, depth=0)
        result.events = self.device.steps
        self.tracer.inc("events.injected", result.events)
        return result

    def _dfs(self, result: DepthFirstResult,
             tried: Dict[str, Set[str]], depth: int) -> None:
        result.max_depth_reached = max(result.max_depth_reached, depth)
        if depth >= self.max_depth or self.device.steps >= self.max_events:
            return
        activity = self.device.current_activity_name()
        if activity is None:
            return
        seen = tried.setdefault(activity, set())
        while self.device.steps < self.max_events:
            widget_id = self._next_widget(seen)
            if widget_id is None:
                return
            seen.add(widget_id)
            before = self.device.current_activity_name()
            try:
                self.tracer.inc("clicks")
                self.solo.click_on_view(widget_id)
            except ReproError:
                continue
            self._observe(result)
            if not self.device.app_alive:
                try:
                    self.adb.am_start_launcher(result.package)
                except DeviceError:
                    return
                continue
            after = self.device.current_activity_name()
            if after != before:
                self._dfs(result, tried, depth + 1)
                self.solo.go_back()
                self._observe(result)
                if not self.device.app_alive:
                    try:
                        self.adb.am_start_launcher(result.package)
                    except DeviceError:
                        return

    def _next_widget(self, seen: Set[str]) -> Optional[str]:
        for widget in self.solo.clickable_widgets():
            if widget.widget_id not in seen:
                return widget.widget_id
        return None

    def _observe(self, result: DepthFirstResult) -> None:
        activity = self.device.current_activity_name()
        if activity:
            result.visited_activities.add(activity)
        for fragment in self.device.current_fragment_classes():
            result.visited_fragment_classes.add(fragment)
