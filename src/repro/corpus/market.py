"""The 217-app market for the Section I usage study.

"We downloaded and analyzed 217 popular apps (more than 500,000
downloads) from 27 categories of Google Play …  The preliminary code
analysis discovered 91% of them use Fragment components."  Also,
Section VII-A: some apps are packed and fall out of the static pipeline.

:func:`generate_market` deterministically synthesises that population:
217 apps over 27 categories, ~91% built with Fragments, a small packed
tail, with sizes drawn from a seeded distribution.  The usage-study
bench then *measures* the fragment share by decoding each APK and
running the effective-fragment scan — it does not read the flags here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.apk.appspec import AppSpec
from repro.apk.package import ApkPackage
from repro.apk.builder import build_apk
from repro.corpus.synth import AppPlan, build_app

CATEGORIES: List[str] = [
    "Tools", "Entertainment", "News Magazine", "Business Office",
    "Books and Reference", "Shopping", "Travel", "Weather", "Health",
    "Social", "Communication", "Photography", "Music Audio",
    "Video Players", "Productivity", "Personalization", "Finance",
    "Sports", "Lifestyle", "Education", "Maps Navigation", "Food Drink",
    "Puzzle", "Arcade", "Casual", "Medical", "Parenting",
]

# The paper's category headcounts for the largest categories.
CATEGORY_WEIGHTS = {
    "Tools": 21,
    "Entertainment": 21,
    "News Magazine": 16,
    "Business Office": 15,
    "Books and Reference": 14,
}

FRAGMENT_SHARE = 0.91
PACKED_SHARE = 0.04


@dataclass
class MarketApp:
    """One market entry: metadata plus its buildable spec."""

    package: str
    category: str
    downloads: str
    uses_fragments: bool
    packed: bool
    spec: AppSpec

    def build(self) -> ApkPackage:
        return build_apk(self.spec)


def _category_sequence(count: int, rng: random.Random) -> List[str]:
    """Assign categories: the paper's known headcounts first, the rest
    spread across the remaining 22 categories."""
    sequence: List[str] = []
    for category, weight in CATEGORY_WEIGHTS.items():
        sequence.extend([category] * weight)
    rest = [c for c in CATEGORIES if c not in CATEGORY_WEIGHTS]
    while len(sequence) < count:
        sequence.append(rest[len(sequence) % len(rest)])
    rng.shuffle(sequence)
    return sequence[:count]


def generate_market(count: int = 217, seed: int = 2018) -> List[MarketApp]:
    """Deterministically generate the study population."""
    rng = random.Random(seed)
    categories = _category_sequence(count, rng)
    n_fragment_apps = round(count * FRAGMENT_SHARE)
    fragment_flags = [True] * n_fragment_apps + [False] * (
        count - n_fragment_apps
    )
    rng.shuffle(fragment_flags)
    apps: List[MarketApp] = []
    for index in range(count):
        package = f"com.market.app{index:03d}"
        uses_fragments = fragment_flags[index]
        packed = rng.random() < PACKED_SHARE
        downloads = rng.choice(
            ["500,000+", "1,000,000+", "5,000,000+", "10,000,000+",
             "50,000,000+"]
        )
        plan = AppPlan(
            package=package,
            downloads=downloads,
            category=categories[index],
            visited_activities=rng.randint(2, 6),
            login_locked=rng.randint(0, 1),
            popup_locked=rng.randint(0, 1),
            visited_fragments=rng.randint(1, 5) if uses_fragments else 0,
            unmanaged_fragments=(1 if uses_fragments and rng.random() < 0.1
                                 else 0),
        )
        spec = build_app(plan)
        spec.packed = packed
        apps.append(
            MarketApp(
                package=package,
                category=categories[index],
                downloads=downloads,
                uses_fragments=uses_fragments,
                packed=packed,
                spec=spec,
            )
        )
    return apps
