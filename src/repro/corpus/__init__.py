"""Evaluation corpus (paper Section VII-A).

The paper evaluates on real Google Play APKs; offline we regenerate the
same *population*: the 15 named apps of Tables I/II with their
ground-truth component counts and the per-app obstacles the paper's
failure analysis describes, plus a 217-app market for the Section I
usage study.  See DESIGN.md for how the substitution keeps the tool
honest (static analysis sees only compiled artifacts; the explorer sees
only the device UI).
"""

from repro.corpus.demos import (
    demo_aftm_example,
    demo_drawer_app,
    demo_tabbed_app,
)
from repro.corpus.market import MarketApp, generate_market
from repro.corpus.synth import AppPlan, build_app
from repro.corpus.table1_apps import (
    TABLE1_EXPECTED,
    TABLE1_PLANS,
    build_table1_app,
    table1_packages,
)
from repro.corpus.table2_truth import API_PLAN

__all__ = [
    "API_PLAN",
    "AppPlan",
    "MarketApp",
    "TABLE1_EXPECTED",
    "TABLE1_PLANS",
    "build_app",
    "build_table1_app",
    "demo_aftm_example",
    "demo_drawer_app",
    "demo_tabbed_app",
    "generate_market",
    "table1_packages",
]
