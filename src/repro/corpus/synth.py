"""Parameterized synthetic app generator.

Builds an :class:`~repro.apk.appspec.AppSpec` from a compact
:class:`AppPlan` describing the app's reachable structure and its
obstacles.  Each obstacle reproduces one failure narrative from the
paper's Section VII coverage analysis:

* ``login_locked`` — Activities behind a form requiring exact input the
  analyst did not provide (``com.weather.Weather``); statically the edge
  is visible (flow-insensitive), dynamically it never triggers, and the
  target also demands Intent extras so forced starts bounce.
* ``popup_locked`` — Activities only reachable through popup-menu items;
  FragDroid dismisses popups via blank space (Case 3), so the click
  never happens (``com.adobe.reader``, ``com.where2get.android.app``).
* ``navdrawer_locked`` / ``navdrawer_forced`` — material-design
  NavigationView targets that "cannot be operated directly"
  (``com.cnn.mobile.android.phone``): the locked ones also require
  extras (forced start fails), the forced ones are recovered by the
  second loop's empty-Intent starts.
* ``unmanaged_fragments`` — attached without a FragmentManager
  (``com.mobilemotion.dubsmash``): statically counted, dynamically
  unidentifiable and un-switchable.
* ``args_fragments`` — ``newInstance`` requires parameters
  (``com.inditex.zara``): reflection switching fails, and the only
  explicit path hides inside a popup.
* ``hidden_fragments`` — hosted by locked Activities, so they sit in
  the Sum column but outside any reachable path.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apk.appspec import (
    ActivitySpec,
    AppSpec,
    Chain,
    DrawerSpec,
    FragmentFactory,
    FragmentSpec,
    InvokeApi,
    ShowDialog,
    ShowFragment,
    ShowPopupMenu,
    StartActivity,
    SubmitForm,
    WidgetSpec,
    ACTIVITY_BASE,
    FRAGMENT_BASE,
    SUPPORT_ACTIVITY_BASE,
    SUPPORT_FRAGMENT_BASE,
)
from repro.types import WidgetKind

# The password planted in login gates.  The analyst's input file does NOT
# contain it for the Table I runs (the paper's "special inputs … are not
# given manually in advance"); the ablation bench supplies it to show the
# input-dependency mechanism working.
LOGIN_SECRET = "s3cret-passphrase"

_FANOUT = 4


@dataclass
class AppPlan:
    """The shape of one synthetic app."""

    package: str
    downloads: str = "1,000,000+"
    category: str = "Tools"
    # Click-reachable activities, including the launcher.
    visited_activities: int = 3
    login_locked: int = 0
    # Activities behind a rule-based form (e.g. a weather place search
    # that accepts real city names): the default "abc" filler fails, the
    # heuristic input generator succeeds.
    input_gated: int = 0
    popup_locked: int = 0
    navdrawer_locked: int = 0
    navdrawer_forced: int = 0
    visited_fragments: int = 0
    args_fragments: int = 0
    unmanaged_fragments: int = 0
    hidden_fragments: int = 0
    use_support: bool = False
    # Packed/encrypted DEX: the app builds but Apktool cannot decode it
    # (the Section VII-A rule-outs); sweeps must survive these.
    packed: bool = False
    api_plan: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def total_activities(self) -> int:
        return (self.visited_activities + self.login_locked
                + self.input_gated + self.popup_locked
                + self.navdrawer_locked + self.navdrawer_forced)

    @property
    def total_fragments(self) -> int:
        return (self.visited_fragments + self.args_fragments
                + self.unmanaged_fragments + self.hidden_fragments)

    @property
    def expected_visited_activities(self) -> int:
        """Click-reachable plus forced-start-recoverable."""
        return self.visited_activities + self.navdrawer_forced

    @property
    def expected_visited_fragments(self) -> int:
        return self.visited_fragments

    def __post_init__(self) -> None:
        if self.visited_activities < 1:
            raise ValueError("an app needs at least the launcher activity")
        if self.hidden_fragments and not (
            self.login_locked + self.input_gated + self.popup_locked
            + self.navdrawer_locked
        ):
            raise ValueError("hidden fragments need a locked host activity")


# Sensitive APIs planted in *locked* components: present in the code
# (the static call graph sees them) but never executed because their
# hosts are unreachable — the API-level face of the coverage gap.
DARK_APIS = ("internet/connect", "storage/sdcard", "phone/getDeviceId",
             "location/requestLocationUpdates")


def build_app(plan: AppPlan) -> AppSpec:
    """Compile a plan into a full application spec (deterministic)."""
    return _Synth(plan).build()


class _Synth:
    def __init__(self, plan: AppPlan) -> None:
        self.plan = plan
        self.seed = zlib.crc32(plan.package.encode())
        self.activity_base = (SUPPORT_ACTIVITY_BASE if plan.use_support
                              else ACTIVITY_BASE)
        self.fragment_base = (SUPPORT_FRAGMENT_BASE if plan.use_support
                              else FRAGMENT_BASE)
        self.activities: List[ActivitySpec] = []
        self.fragments: List[FragmentSpec] = []
        # Per-activity widget staging (applied at the end).
        self._extra_widgets: Dict[str, List[WidgetSpec]] = {}

    # -- naming ------------------------------------------------------------------

    @staticmethod
    def _reachable_name(index: int) -> str:
        return "MainActivity" if index == 0 else f"Screen{index:02d}Activity"

    def build(self) -> AppSpec:
        plan = self.plan
        reachable = [self._reachable_name(i)
                     for i in range(plan.visited_activities)]
        self._build_reachable(reachable)
        self._build_visited_fragments(reachable)
        self._build_login_locked(reachable)
        self._build_input_gated(reachable)
        self._build_popup_locked(reachable)
        self._build_navdrawer(reachable)
        self._distribute_remaining_hidden()
        self._build_args_fragments(reachable)
        self._build_unmanaged_fragments(reachable)
        self._apply_api_plan(reachable)
        self._plant_dark_apis()
        self._flush_widgets()
        return AppSpec(
            package=plan.package,
            activities=self.activities,
            fragments=self.fragments,
            category=plan.category,
            downloads=plan.downloads,
            packed=plan.packed,
        )

    # -- reachable activity tree -----------------------------------------------------

    def _build_reachable(self, reachable: List[str]) -> None:
        for index, name in enumerate(reachable):
            spec = ActivitySpec(
                name=name,
                launcher=(index == 0),
                base_class=self.activity_base,
                widgets=[
                    WidgetSpec(id=f"label_{index:02d}",
                               kind=WidgetKind.TEXT_VIEW,
                               text=f"screen {index}"),
                ],
            )
            self.activities.append(spec)
            self._extra_widgets[name] = []
        # A breadth-first button tree over the reachable activities.
        for child_index in range(1, len(reachable)):
            parent = reachable[(child_index - 1) // _FANOUT]
            child = reachable[child_index]
            self._extra_widgets[parent].append(
                WidgetSpec(
                    id=f"btn_goto_{child_index:02d}",
                    text=f"open {child}",
                    on_click=StartActivity(child),
                )
            )

    def _activity(self, name: str) -> ActivitySpec:
        for spec in self.activities:
            if spec.name == name:
                return spec
        raise KeyError(name)

    # -- visited fragments --------------------------------------------------------------

    def _build_visited_fragments(self, reachable: List[str]) -> None:
        plan = self.plan
        host_cycle = itertools.cycle(reachable)
        host_of: Dict[str, str] = {}
        menu_only: set = set()
        for index in range(plan.visited_fragments):
            name = f"Pane{index:02d}Fragment"
            host = next(host_cycle)
            intermediate = ([f"Base{index % 3}Fragment"]
                            if index % 3 == 0 else [])
            factory = (FragmentFactory.NEW_INSTANCE if index % 4 == 1
                       else FragmentFactory.NEW)
            fragment = FragmentSpec(
                name=name,
                base_class=self.fragment_base,
                factory=factory,
                intermediate_bases=intermediate,
                widgets=[
                    WidgetSpec(id=f"row_{index:02d}",
                               kind=WidgetKind.LIST_ITEM,
                               text=f"row {index}"),
                ],
            )
            self.fragments.append(fragment)
            host_of[name] = host
            host_spec = self._activity(host)
            host_spec.hosted_fragments.append(name)
            container = host_spec.container_id or "fragment_container"
            host_spec.container_id = container
            if host_spec.initial_fragment is None:
                host_spec.initial_fragment = name
            elif index % 4 == 2:
                # No directly clickable path: the switch hides inside an
                # options menu the exploration dismisses, so only the
                # Case 1 reflection mechanism can show this fragment.
                menu_only.add(name)
                self._extra_widgets[host].append(
                    WidgetSpec(
                        id=f"btn_more_{index:02d}",
                        text="⋮",
                        on_click=ShowPopupMenu(
                            items=(
                                WidgetSpec(
                                    id=f"menu_pane_{index:02d}",
                                    kind=WidgetKind.MENU_ITEM,
                                    text=name,
                                    on_click=ShowFragment(name, container),
                                ),
                            )
                        ),
                    )
                )
            else:
                # A tab switching to this fragment (Figure 1 style).
                self._extra_widgets[host].append(
                    WidgetSpec(
                        id=f"tab_{index:02d}",
                        kind=WidgetKind.TAB,
                        text=name.replace("Fragment", ""),
                        on_click=ShowFragment(name, container),
                    )
                )
        # F -> F chains: every third fragment links to its same-host
        # successor, giving the AFTM genuine E3 edges.
        by_host: Dict[str, List[FragmentSpec]] = {}
        for fragment in self.fragments:
            by_host.setdefault(host_of[fragment.name], []).append(fragment)
        for host, group in by_host.items():
            container = self._activity(host).container_id or "fragment_container"
            for left, right in zip(group, group[1:]):
                if right.name in menu_only or left.name in menu_only:
                    # Menu-only fragments stay reachable solely through
                    # reflection: no E3 click path in or out.
                    continue
                left.widgets.append(
                    WidgetSpec(
                        id=f"link_{left.name.lower()}_{right.name.lower()}",
                        text=f"more {right.name}",
                        on_click=ShowFragment(right.name, container),
                    )
                )

    # -- locked activities ----------------------------------------------------------------

    def _build_login_locked(self, reachable: List[str]) -> None:
        host_cycle = itertools.cycle(reachable)
        for index in range(self.plan.login_locked):
            name = f"Locked{index:02d}Activity"
            self.activities.append(
                ActivitySpec(name=name, base_class=self.activity_base,
                             requires_intent_extras=True)
            )
            host = next(host_cycle)
            field_id = f"password_{index:02d}"
            self._extra_widgets[host].extend(
                [
                    WidgetSpec(id=field_id, kind=WidgetKind.EDIT_TEXT,
                               text=""),
                    WidgetSpec(
                        id=f"btn_login_{index:02d}",
                        text="Sign in",
                        on_click=SubmitForm(
                            required={field_id: LOGIN_SECRET},
                            on_success=StartActivity(name),
                            on_failure=ShowDialog("Wrong credentials"),
                        ),
                    ),
                ]
            )
            self._host_hidden_fragment(name, index)

    def _build_input_gated(self, reachable: List[str]) -> None:
        host_cycle = itertools.cycle(reachable)
        for index in range(self.plan.input_gated):
            name = f"Search{index:02d}Activity"
            self.activities.append(
                ActivitySpec(name=name, base_class=self.activity_base,
                             requires_intent_extras=True)
            )
            host = next(host_cycle)
            field_id = f"city_input_{index:02d}"
            self._extra_widgets[host].extend(
                [
                    WidgetSpec(id=field_id, kind=WidgetKind.EDIT_TEXT,
                               text="Enter a city"),
                    WidgetSpec(
                        id=f"btn_search_{index:02d}",
                        text="Search",
                        on_click=SubmitForm(
                            rules={field_id: "city"},
                            on_success=StartActivity(name),
                            on_failure=ShowDialog("No such place"),
                        ),
                    ),
                ]
            )
            self._host_hidden_fragment(name, 3000 + index)

    def _build_popup_locked(self, reachable: List[str]) -> None:
        host_cycle = itertools.cycle(reachable)
        for index in range(self.plan.popup_locked):
            name = f"Overflow{index:02d}Activity"
            self.activities.append(
                ActivitySpec(name=name, base_class=self.activity_base,
                             requires_intent_extras=True)
            )
            host = next(host_cycle)
            self._extra_widgets[host].append(
                WidgetSpec(
                    id=f"btn_overflow_{index:02d}",
                    text="⋮",
                    on_click=ShowPopupMenu(
                        items=(
                            WidgetSpec(
                                id=f"menu_open_{index:02d}",
                                kind=WidgetKind.MENU_ITEM,
                                text=f"Open {name}",
                                on_click=StartActivity(name),
                            ),
                        )
                    ),
                )
            )
            self._host_hidden_fragment(name, 1000 + index)

    def _build_navdrawer(self, reachable: List[str]) -> None:
        plan = self.plan
        count = plan.navdrawer_locked + plan.navdrawer_forced
        if count == 0:
            return
        items = []
        for index in range(count):
            locked = index < plan.navdrawer_locked
            name = (f"Nav{index:02d}Activity" if locked
                    else f"Section{index:02d}Activity")
            self.activities.append(
                ActivitySpec(
                    name=name,
                    base_class=self.activity_base,
                    requires_intent_extras=locked,
                )
            )
            items.append(
                WidgetSpec(
                    id=f"nav_item_{index:02d}",
                    kind=WidgetKind.DRAWER_ITEM,
                    text=name,
                    on_click=StartActivity(name),
                )
            )
            if locked:
                self._host_hidden_fragment(name, 2000 + index)
        main = self._activity(reachable[0])
        main.drawer = DrawerSpec(items=items, navigation_view=True)

    def _host_hidden_fragment(self, locked_activity: str, salt: int) -> None:
        """Attach one of the plan's hidden fragments to a locked host."""
        already = sum(1 for f in self.fragments
                      if f.name.startswith("Hidden"))
        if already >= self.plan.hidden_fragments:
            return
        name = f"Hidden{already:02d}Fragment"
        self.fragments.append(
            FragmentSpec(
                name=name,
                base_class=self.fragment_base,
                widgets=[WidgetSpec(id=f"hidden_row_{already:02d}",
                                    kind=WidgetKind.LIST_ITEM,
                                    text="hidden")],
            )
        )
        host = self._activity(locked_activity)
        host.hosted_fragments.append(name)
        host.initial_fragment = host.initial_fragment or name

    def _distribute_remaining_hidden(self) -> None:
        """When a plan has more hidden fragments than locked activities,
        the extras are stacked onto the locked hosts as tab fragments —
        still statically visible, still dynamically unreachable."""
        locked = [a for a in self.activities if a.requires_intent_extras]
        if not locked:
            return
        cycle = itertools.cycle(locked)
        while (sum(1 for f in self.fragments if f.name.startswith("Hidden"))
               < self.plan.hidden_fragments):
            index = sum(1 for f in self.fragments
                        if f.name.startswith("Hidden"))
            name = f"Hidden{index:02d}Fragment"
            self.fragments.append(
                FragmentSpec(
                    name=name,
                    base_class=self.fragment_base,
                    widgets=[WidgetSpec(id=f"hidden_row_{index:02d}",
                                        kind=WidgetKind.LIST_ITEM,
                                        text="hidden")],
                )
            )
            host = next(cycle)
            host.hosted_fragments.append(name)
            container = host.container_id or "fragment_container"
            host.container_id = container
            if host.initial_fragment is None:
                host.initial_fragment = name
            else:
                host.widgets.append(
                    WidgetSpec(
                        id=f"tab_hidden_{index:02d}",
                        kind=WidgetKind.TAB,
                        text=name,
                        on_click=ShowFragment(name, container),
                    )
                )

    # -- fragment obstacles ---------------------------------------------------------------------

    def _build_args_fragments(self, reachable: List[str]) -> None:
        host_cycle = itertools.cycle(reachable)
        for index in range(self.plan.args_fragments):
            name = f"Detail{index:02d}Fragment"
            self.fragments.append(
                FragmentSpec(
                    name=name,
                    base_class=self.fragment_base,
                    factory=FragmentFactory.NEW_INSTANCE,
                    requires_args=True,
                    widgets=[WidgetSpec(id=f"detail_row_{index:02d}",
                                        kind=WidgetKind.LIST_ITEM,
                                        text="detail")],
                )
            )
            host_name = next(host_cycle)
            host = self._activity(host_name)
            host.hosted_fragments.append(name)
            container = host.container_id or "fragment_container"
            host.container_id = container
            # The only explicit path hides inside a popup menu that the
            # exploration dismisses (Case 3), so reflection — which fails
            # on the required args — is the only attempt FragDroid makes.
            self._extra_widgets[host_name].append(
                WidgetSpec(
                    id=f"btn_detail_menu_{index:02d}",
                    text="…",
                    on_click=ShowPopupMenu(
                        items=(
                            WidgetSpec(
                                id=f"menu_detail_{index:02d}",
                                kind=WidgetKind.MENU_ITEM,
                                text=f"Show {name}",
                                on_click=ShowFragment(name, container),
                            ),
                        )
                    ),
                )
            )

    def _build_unmanaged_fragments(self, reachable: List[str]) -> None:
        host_cycle = itertools.cycle(reachable)
        for index in range(self.plan.unmanaged_fragments):
            name = f"Raw{index:02d}Fragment"
            self.fragments.append(
                FragmentSpec(
                    name=name,
                    base_class=self.fragment_base,
                    managed=False,
                    widgets=[WidgetSpec(id=f"raw_row_{index:02d}",
                                        kind=WidgetKind.LIST_ITEM,
                                        text="raw")],
                )
            )
            host_name = next(host_cycle)
            host = self._activity(host_name)
            host.hosted_fragments.append(name)
            container = host.container_id or "fragment_container"
            host.container_id = container
            self._extra_widgets[host_name].append(
                WidgetSpec(
                    id=f"btn_raw_{index:02d}",
                    text=f"load {name}",
                    on_click=ShowFragment(name, container),
                )
            )

    # -- sensitive APIs ----------------------------------------------------------------------------

    def _apply_api_plan(self, reachable: List[str]) -> None:
        visited_fragments = [
            f for f in self.fragments if f.name.startswith("Pane")
        ]
        activity_cycle = itertools.cycle(reachable)
        fragment_cycle = (itertools.cycle(visited_fragments)
                          if visited_fragments else None)
        for api, placement in self.plan.api_plan:
            if placement in ("A", "B"):
                self._activity(next(activity_cycle)).api_calls.append(api)
            if placement in ("F", "B"):
                if fragment_cycle is None:
                    raise ValueError(
                        f"{self.plan.package}: api plan places {api!r} in a "
                        "fragment but the plan has no visited fragments"
                    )
                next(fragment_cycle).api_calls.append(api)

    def _plant_dark_apis(self) -> None:
        """Locked activities call sensitive APIs in code the exploration
        never reaches — discoverable statically, silent dynamically."""
        cycle = itertools.cycle(DARK_APIS)
        for activity in self.activities:
            if activity.requires_intent_extras:
                activity.api_calls.append(next(cycle))

    # -- finalize -------------------------------------------------------------------------------------

    def _flush_widgets(self) -> None:
        for name, widgets in self._extra_widgets.items():
            self._activity(name).widgets.extend(widgets)
