"""Demo apps for the paper's motivating figures.

* :func:`demo_tabbed_app` — Figure 1: a wallpaper browser whose
  CATEGORIES/RECENT tabs swap Fragments inside one Activity;
* :func:`demo_drawer_app` — Figure 2: two Fragments whose only bridge is
  a hidden slide menu;
* :func:`demo_aftm_example` — Figure 5: a small app exhibiting all three
  AFTM edge kinds (E1, E2, E3).
"""

from __future__ import annotations

from repro.apk.appspec import (
    ActivitySpec,
    AppSpec,
    Chain,
    DrawerSpec,
    FragmentSpec,
    InvokeApi,
    ShowFragment,
    StartActivity,
    WidgetSpec,
)
from repro.types import WidgetKind


def demo_tabbed_app() -> AppSpec:
    """Figure 1: tab clicks transform the Fragment below while the
    Activity stays the same."""
    return AppSpec(
        package="com.example.wallpapers",
        activities=[
            ActivitySpec(
                name="GalleryActivity",
                launcher=True,
                initial_fragment="CategoriesFragment",
                widgets=[
                    WidgetSpec(
                        id="tab_categories", kind=WidgetKind.TAB,
                        text="CATEGORIES",
                        on_click=ShowFragment("CategoriesFragment",
                                              "fragment_container"),
                    ),
                    WidgetSpec(
                        id="tab_recent", kind=WidgetKind.TAB,
                        text="RECENT",
                        on_click=ShowFragment("RecentFragment",
                                              "fragment_container"),
                    ),
                ],
            ),
            ActivitySpec(name="DetailActivity"),
        ],
        fragments=[
            FragmentSpec(
                name="CategoriesFragment",
                widgets=[
                    WidgetSpec(id="category_row", kind=WidgetKind.LIST_ITEM,
                               text="Nature",
                               on_click=StartActivity("DetailActivity")),
                ],
            ),
            FragmentSpec(
                name="RecentFragment",
                api_calls=["internet/Connectivity.getActiveNetworkInfo"],
                widgets=[
                    WidgetSpec(id="recent_row", kind=WidgetKind.LIST_ITEM,
                               text="Yesterday"),
                ],
            ),
        ],
        category="Personalization",
    )


def demo_drawer_app() -> AppSpec:
    """Figure 2: the hidden slide menu is the only bridge between the
    wallpapers Fragment and the favorites Fragment."""
    return AppSpec(
        package="com.example.slidemenu",
        activities=[
            ActivitySpec(
                name="HomeActivity",
                launcher=True,
                initial_fragment="WallpapersFragment",
                drawer=DrawerSpec(
                    items=[
                        WidgetSpec(
                            id="menu_wallpapers",
                            kind=WidgetKind.DRAWER_ITEM,
                            text="Wallpapers",
                            on_click=ShowFragment("WallpapersFragment",
                                                  "fragment_container"),
                        ),
                        WidgetSpec(
                            id="menu_favorites",
                            kind=WidgetKind.DRAWER_ITEM,
                            text="Favorites",
                            on_click=ShowFragment("FavoritesFragment",
                                                  "fragment_container"),
                        ),
                    ]
                ),
            ),
        ],
        fragments=[
            FragmentSpec(
                name="WallpapersFragment",
                widgets=[WidgetSpec(id="wall_grid", kind=WidgetKind.LIST_ITEM,
                                    text="wallpaper")],
            ),
            FragmentSpec(
                name="FavoritesFragment",
                api_calls=["storage/getExternalStorageState"],
                widgets=[WidgetSpec(id="fav_grid", kind=WidgetKind.LIST_ITEM,
                                    text="favorite")],
            ),
        ],
        category="Personalization",
    )


def demo_aftm_example() -> AppSpec:
    """Figure 5: an AFTM exhibiting E1 (A→A), E2 (A→F) and E3 (F→F)."""
    return AppSpec(
        package="com.example.aftm",
        activities=[
            ActivitySpec(
                name="A0Activity", launcher=True,
                initial_fragment="F0Fragment",
                widgets=[
                    WidgetSpec(id="btn_a1", text="to A1",
                               on_click=StartActivity("A1Activity")),
                ],
            ),
            ActivitySpec(
                name="A1Activity",
                initial_fragment="F2Fragment",
                widgets=[
                    WidgetSpec(id="btn_a0", text="back to A0",
                               on_click=StartActivity("A0Activity")),
                ],
            ),
        ],
        fragments=[
            FragmentSpec(
                name="F0Fragment",
                widgets=[
                    WidgetSpec(
                        id="btn_f1", text="to F1",
                        on_click=Chain(
                            actions=(
                                InvokeApi("location/isProviderEnabled"),
                                ShowFragment("F1Fragment",
                                             "fragment_container"),
                            )
                        ),
                    ),
                ],
            ),
            FragmentSpec(
                name="F1Fragment",
                widgets=[WidgetSpec(id="f1_row", kind=WidgetKind.LIST_ITEM,
                                    text="F1")],
            ),
            FragmentSpec(
                name="F2Fragment",
                widgets=[WidgetSpec(id="f2_row", kind=WidgetKind.LIST_ITEM,
                                    text="F2")],
            ),
        ],
    )
