"""The 15 evaluation apps of Tables I and II.

Each plan's component totals match the paper's "Sum" columns exactly,
and the obstacle mix follows the paper's per-app failure narrative
(Section VII-B): adobe.reader's action-bar popups, cnn's NavigationView
drawer, weather's strict inputs, dubsmash's manager-less fragments,
zara's parameterised ``newInstance``, and so on.  The "Visited" numbers
are *not* hard-coded anywhere — they emerge from running FragDroid
against these apps; ``TABLE1_EXPECTED`` records the paper's measurements
for side-by-side comparison in the bench output.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apk.appspec import AppSpec
from repro.corpus.synth import AppPlan, build_app
from repro.corpus.table2_truth import API_PLAN


def _plan(package: str, downloads: str, category: str, **kwargs) -> AppPlan:
    return AppPlan(
        package=package,
        downloads=downloads,
        category=category,
        api_plan=API_PLAN.get(package, []),
        **kwargs,
    )


TABLE1_PLANS: List[AppPlan] = [
    _plan(
        "au.com.digitalstampede.formula", "50,000+", "Entertainment",
        visited_activities=1, login_locked=1,
        visited_fragments=2,
    ),
    _plan(
        "com.adobe.reader", "100,000,000+", "Business Office",
        visited_activities=7, popup_locked=6,
        visited_fragments=5,
    ),
    _plan(
        "com.advancedprocessmanager", "10,000,000+", "Tools",
        visited_activities=5, popup_locked=1, login_locked=1,
        visited_fragments=10,
    ),
    _plan(
        "com.aircrunch.shopalerts", "1,000,000+", "Shopping",
        visited_activities=7, navdrawer_locked=2, popup_locked=1,
        visited_fragments=8, hidden_fragments=2, args_fragments=2,
        unmanaged_fragments=1, use_support=True,
    ),
    _plan(
        "com.c51", "5,000,000+", "Shopping",
        visited_activities=28, navdrawer_locked=3, popup_locked=2,
        login_locked=2,
        visited_fragments=2, args_fragments=1,
    ),
    _plan(
        "com.cnn.mobile.android.phone", "10,000,000+", "News Magazine",
        visited_activities=14, navdrawer_locked=7, navdrawer_forced=2,
        visited_fragments=3, hidden_fragments=4, args_fragments=3,
        use_support=True,
    ),
    _plan(
        "com.happy2.bbmanga", "1,000,000+", "Entertainment",
        visited_activities=2, login_locked=3,
        visited_fragments=3, hidden_fragments=2,
    ),
    _plan(
        "com.inditex.zara", "10,000,000+", "Shopping",
        visited_activities=7, popup_locked=2,
        visited_fragments=7, args_fragments=6, hidden_fragments=2,
        use_support=True,
    ),
    _plan(
        "com.mobilemotion.dubsmash", "100,000,000+", "Entertainment",
        visited_activities=10, login_locked=1,
        unmanaged_fragments=3,
    ),
    _plan(
        "com.ovuline.pregnancy", "1,000,000+", "Health",
        visited_activities=17, navdrawer_locked=4, popup_locked=3,
        login_locked=3,
        visited_fragments=8, hidden_fragments=11, args_fragments=12,
        unmanaged_fragments=6, use_support=True,
    ),
    _plan(
        "com.weather.Weather", "50,000,000+", "Weather",
        visited_activities=13, login_locked=2, input_gated=2,
        visited_fragments=1,
    ),
    _plan(
        "com.where2get.android.app", "500,000+", "Shopping",
        visited_activities=9, popup_locked=4, login_locked=3,
        visited_fragments=4, hidden_fragments=2, args_fragments=2,
    ),
    _plan(
        "imoblife.toolbox.full", "10,000,000+", "Tools",
        visited_activities=14,
        visited_fragments=8, args_fragments=1,
    ),
    _plan(
        "net.aviascanner.aviascanner", "1,000,000+", "Travel",
        visited_activities=7,
        visited_fragments=4,
    ),
    _plan(
        "org.rbc.odb", "1,000,000+", "Books and Reference",
        visited_activities=4, popup_locked=1,
        visited_fragments=5, hidden_fragments=2, args_fragments=1,
    ),
]

# The paper's Table I measurements:
# package -> (act_visited, act_sum, frag_visited, frag_sum,
#             fiva_visited, fiva_sum)
TABLE1_EXPECTED: Dict[str, Tuple[int, int, int, int, int, int]] = {
    "au.com.digitalstampede.formula": (1, 2, 2, 2, 1, 1),
    "com.adobe.reader": (7, 13, 5, 5, 2, 2),
    "com.advancedprocessmanager": (5, 7, 10, 10, 10, 10),
    "com.aircrunch.shopalerts": (7, 10, 8, 13, 4, 6),
    "com.c51": (28, 35, 2, 3, 2, 3),
    "com.cnn.mobile.android.phone": (16, 23, 3, 10, 2, 4),
    "com.happy2.bbmanga": (2, 5, 3, 5, 0, 2),
    "com.inditex.zara": (7, 9, 7, 15, 2, 10),
    "com.mobilemotion.dubsmash": (10, 11, 0, 3, 0, 3),
    "com.ovuline.pregnancy": (17, 27, 8, 37, 8, 26),
    "com.weather.Weather": (13, 17, 1, 1, 1, 1),
    "com.where2get.android.app": (9, 16, 4, 8, 0, 4),
    "imoblife.toolbox.full": (14, 14, 8, 9, 4, 5),
    "net.aviascanner.aviascanner": (7, 7, 4, 4, 4, 4),
    "org.rbc.odb": (4, 5, 5, 8, 2, 3),
}

# Paper-quoted aggregates for the bench summaries.
PAPER_MEAN_ACTIVITY_RATE = 0.7194
PAPER_MEAN_FRAGMENT_RATE = 0.66


def table1_packages() -> List[str]:
    return [plan.package for plan in TABLE1_PLANS]


def plan_for(package: str) -> AppPlan:
    for plan in TABLE1_PLANS:
        if plan.package == package:
            return plan
    raise KeyError(package)


def build_table1_app(package: str) -> AppSpec:
    """Build one of the 15 evaluation apps by package name."""
    return build_app(plan_for(package))
