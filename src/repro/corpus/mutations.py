"""Spec mutations: synthetic "next versions" of an app.

Used by the regression tests and the fragility study
(:mod:`repro.rnr.fragility`): each operator returns a deep-copied spec
with one realistic developer change — a renamed widget or fragment, a
removed handler, a swapped start screen, an added activity, shuffled
widget ids, or a newly introduced crash.  Every operator is
deterministic: the seeded ones (:func:`shuffle_widget_ids`) derive all
choices from an explicit ``random.Random(seed)``.
"""

from __future__ import annotations

import copy
import random
from dataclasses import replace
from typing import Dict, Optional

from repro.apk.appspec import (
    Action,
    ActivitySpec,
    AppSpec,
    Chain,
    Crash,
    ShowDialog,
    ShowFragment,
    ShowPopupMenu,
    SubmitForm,
    WidgetSpec,
)
from repro.errors import ApkError


def _clone(spec: AppSpec) -> AppSpec:
    return copy.deepcopy(spec)


def _find_widget_owner(spec: AppSpec, widget_id: str):
    for activity in spec.activities:
        for index, widget in enumerate(activity.widgets):
            if widget.id == widget_id:
                return activity.widgets, index
        if activity.drawer:
            for index, widget in enumerate(activity.drawer.items):
                if widget.id == widget_id:
                    return activity.drawer.items, index
    for fragment in spec.fragments:
        for index, widget in enumerate(fragment.widgets):
            if widget.id == widget_id:
                return fragment.widgets, index
    raise ApkError(f"no widget {widget_id!r} in {spec.package}")


def rename_widget(spec: AppSpec, widget_id: str, new_id: str) -> AppSpec:
    """The developer renamed a view ID — recorded paths go stale."""
    mutated = _clone(spec)
    widgets, index = _find_widget_owner(mutated, widget_id)
    widgets[index] = replace(widgets[index], id=new_id)
    return mutated


def remove_handler(spec: AppSpec, widget_id: str) -> AppSpec:
    """The click handler was dropped — the path silently dead-ends."""
    mutated = _clone(spec)
    widgets, index = _find_widget_owner(mutated, widget_id)
    widgets[index] = replace(widgets[index], on_click=None)
    return mutated


def inject_crash(spec: AppSpec, widget_id: str,
                 reason: str = "regression") -> AppSpec:
    """The new version crashes where the old one navigated."""
    mutated = _clone(spec)
    widgets, index = _find_widget_owner(mutated, widget_id)
    widgets[index] = replace(widgets[index], on_click=Crash(reason))
    return mutated


def swap_initial_fragment(spec: AppSpec, activity_name: str,
                          fragment_name: str) -> AppSpec:
    """The start screen changed — state identification must follow."""
    mutated = _clone(spec)
    activity = mutated.activity(activity_name)
    if fragment_name not in activity.hosted_fragments:
        activity.hosted_fragments.append(fragment_name)
    activity.initial_fragment = fragment_name
    mutated.validate()
    return mutated


# ---------------------------------------------------------------------------
# App-evolution operators (the fragility study's version stream)
# ---------------------------------------------------------------------------

def _rewrite_action(action: Optional[Action],
                    fragments: Dict[str, str],
                    widgets: Dict[str, str]) -> Optional[Action]:
    """Rewrite fragment/widget-id references inside an action tree."""
    if action is None:
        return None
    if isinstance(action, ShowFragment) and action.fragment in fragments:
        return replace(action, fragment=fragments[action.fragment])
    if isinstance(action, Chain):
        return Chain(actions=tuple(
            _rewrite_action(child, fragments, widgets)
            for child in action.actions))
    if isinstance(action, ShowPopupMenu):
        return ShowPopupMenu(items=tuple(
            _rewrite_widget(item, fragments, widgets)
            for item in action.items))
    if isinstance(action, ShowDialog):
        return replace(action, buttons=tuple(
            _rewrite_widget(button, fragments, widgets)
            for button in action.buttons))
    if isinstance(action, SubmitForm):
        return SubmitForm(
            required={widgets.get(k, k): v
                      for k, v in action.required.items()},
            on_success=_rewrite_action(action.on_success, fragments, widgets),
            on_failure=_rewrite_action(action.on_failure, fragments, widgets),
            rules={widgets.get(k, k): v for k, v in action.rules.items()},
        )
    return action


def _rewrite_widget(widget: WidgetSpec,
                    fragments: Dict[str, str],
                    widgets: Dict[str, str]) -> WidgetSpec:
    return replace(
        widget,
        id=widgets.get(widget.id, widget.id),
        on_click=_rewrite_action(widget.on_click, fragments, widgets),
    )


def _rewrite_spec(mutated: AppSpec,
                  fragments: Dict[str, str],
                  widgets: Dict[str, str]) -> AppSpec:
    """Apply a fragment-class and widget-id renaming consistently."""
    for activity in mutated.activities:
        activity.widgets = [_rewrite_widget(w, fragments, widgets)
                            for w in activity.widgets]
        if activity.drawer:
            activity.drawer.items = [
                _rewrite_widget(w, fragments, widgets)
                for w in activity.drawer.items]
        activity.hosted_fragments = [fragments.get(f, f)
                                     for f in activity.hosted_fragments]
        if activity.initial_fragment:
            activity.initial_fragment = fragments.get(
                activity.initial_fragment, activity.initial_fragment)
        activity.panes = [(container, fragments.get(f, f))
                          for container, f in activity.panes]
    for fragment in mutated.fragments:
        if fragment.name in fragments:
            fragment.name = fragments[fragment.name]
        fragment.widgets = [_rewrite_widget(w, fragments, widgets)
                            for w in fragment.widgets]
    mutated.validate()
    return mutated


def rename_fragment(spec: AppSpec, fragment_name: str,
                    new_name: str) -> AppSpec:
    """The developer renamed a Fragment class — every host reference,
    transaction target and reflection path follows, but recorded
    reflect events (and recorded coverage identity) go stale."""
    mutated = _clone(spec)
    mutated.fragment(fragment_name)  # raises ApkError when unknown
    return _rewrite_spec(mutated, {fragment_name: new_name}, {})


def add_activity(spec: AppSpec, name: str,
                 activity: Optional[ActivitySpec] = None) -> AppSpec:
    """A new Activity shipped in the update — recorded scripts still
    apply, but they cover a smaller share of the new version."""
    mutated = _clone(spec)
    if any(a.name == name for a in mutated.activities):
        raise ApkError(f"{spec.package} already has an activity {name!r}")
    mutated.activities.append(activity or ActivitySpec(name=name))
    mutated.validate()
    return mutated


def shuffle_widget_ids(spec: AppSpec, seed: int = 0) -> AppSpec:
    """A resource-id refactor: every container's widget ids are
    deterministically permuted (references inside handlers follow, so
    the app behaves identically — only the ids recorded scripts key on
    have moved)."""
    mutated = _clone(spec)
    rng = random.Random(seed)
    mapping: Dict[str, str] = {}

    def permute(widgets) -> None:
        ids = [w.id for w in widgets]
        if len(ids) < 2:
            return
        shuffled = list(ids)
        rng.shuffle(shuffled)
        if shuffled == ids:  # force a real change
            shuffled = shuffled[1:] + shuffled[:1]
        mapping.update(zip(ids, shuffled))

    for activity in mutated.activities:
        permute(activity.widgets)
        if activity.drawer:
            permute(activity.drawer.items)
    for fragment in mutated.fragments:
        permute(fragment.widgets)
    return _rewrite_spec(mutated, {}, mapping)
