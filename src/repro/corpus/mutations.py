"""Spec mutations: synthetic "next versions" of an app.

Used by the regression-testing tests and examples: each operator
returns a deep-copied spec with one realistic developer change — a
renamed widget, a removed handler, a swapped start screen, or a newly
introduced crash.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Optional

from repro.apk.appspec import AppSpec, Crash, WidgetSpec
from repro.errors import ApkError


def _clone(spec: AppSpec) -> AppSpec:
    return copy.deepcopy(spec)


def _find_widget_owner(spec: AppSpec, widget_id: str):
    for activity in spec.activities:
        for index, widget in enumerate(activity.widgets):
            if widget.id == widget_id:
                return activity.widgets, index
        if activity.drawer:
            for index, widget in enumerate(activity.drawer.items):
                if widget.id == widget_id:
                    return activity.drawer.items, index
    for fragment in spec.fragments:
        for index, widget in enumerate(fragment.widgets):
            if widget.id == widget_id:
                return fragment.widgets, index
    raise ApkError(f"no widget {widget_id!r} in {spec.package}")


def rename_widget(spec: AppSpec, widget_id: str, new_id: str) -> AppSpec:
    """The developer renamed a view ID — recorded paths go stale."""
    mutated = _clone(spec)
    widgets, index = _find_widget_owner(mutated, widget_id)
    widgets[index] = replace(widgets[index], id=new_id)
    return mutated


def remove_handler(spec: AppSpec, widget_id: str) -> AppSpec:
    """The click handler was dropped — the path silently dead-ends."""
    mutated = _clone(spec)
    widgets, index = _find_widget_owner(mutated, widget_id)
    widgets[index] = replace(widgets[index], on_click=None)
    return mutated


def inject_crash(spec: AppSpec, widget_id: str,
                 reason: str = "regression") -> AppSpec:
    """The new version crashes where the old one navigated."""
    mutated = _clone(spec)
    widgets, index = _find_widget_owner(mutated, widget_id)
    widgets[index] = replace(widgets[index], on_click=Crash(reason))
    return mutated


def swap_initial_fragment(spec: AppSpec, activity_name: str,
                          fragment_name: str) -> AppSpec:
    """The start screen changed — state identification must follow."""
    mutated = _clone(spec)
    activity = mutated.activity(activity_name)
    if fragment_name not in activity.hosted_fragments:
        activity.hosted_fragments.append(fragment_name)
    activity.initial_fragment = fragment_name
    mutated.validate()
    return mutated
