"""Coverage-over-time analytics on a flight record.

The paper's evaluation is about *discovery dynamics* — how fast the
AFTM-guided loop reaches Activities, Fragments and FIVAs versus Monkey
(Table I, the Section VII narratives).  This module turns a recorded
run back into those dynamics offline:

* :func:`coverage_timeline` — the discovery curve, one checkpoint per
  ``state.discovered`` event, tracking activities, fragments,
  fragments-in-visited-activities and sensitive-API invocations;
* :func:`coverage_curve_from_trace` — the same curve derived from an
  :class:`~repro.core.explorer.ExplorationResult` trace (the single
  implementation behind ``repro.core.artifacts.coverage_curve``), so
  the event-log curve and the trace curve agree checkpoint for
  checkpoint;
* :func:`stalls` — plateau detection via events-since-last-discovery;
* :func:`discovery_stats` — time-to-50% / time-to-90% discovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import API_OBSERVED, RUN_END, STATE_DISCOVERED, Event


@dataclass(frozen=True)
class CoveragePoint:
    """Cumulative discovery state at one checkpoint of the run."""

    step: int          # device input-event count at the checkpoint
    activities: int    # distinct activities discovered so far
    fragments: int     # distinct fragments discovered so far
    fivas: int         # discovered fragments whose host activity is too
    apis: int          # sensitive-API invocations observed by this step

    def to_dict(self) -> Dict[str, int]:
        return {
            "step": self.step,
            "activities": self.activities,
            "fragments": self.fragments,
            "fivas": self.fivas,
            "apis": self.apis,
        }


@dataclass(frozen=True)
class Stall:
    """A discovery plateau: a stretch of injected events that found
    nothing new."""

    start_step: int    # the last discovery before the plateau
    end_step: int      # the next discovery (or the end of the run)
    events: int        # events spent inside the plateau

    def to_dict(self) -> Dict[str, int]:
        return {
            "start_step": self.start_step,
            "end_step": self.end_step,
            "events": self.events,
        }


# ---------------------------------------------------------------------------
# Coverage curves
# ---------------------------------------------------------------------------

def coverage_timeline(events: Iterable[Event]) -> List[CoveragePoint]:
    """The discovery curve of a recorded run.

    Checkpoints are exactly the ``state.discovered`` events (plus the
    origin), so the ``(step, activities, fragments)`` projection of
    this curve matches ``repro.core.artifacts.coverage_curve`` on the
    same run checkpoint for checkpoint.
    """
    events = list(events)
    api_steps = sorted(e.step for e in events if e.kind == API_OBSERVED)

    def apis_by(step: int) -> int:
        count = 0
        for api_step in api_steps:
            if api_step > step:
                break
            count += 1
        return count

    points: List[CoveragePoint] = [CoveragePoint(0, 0, 0, 0, 0)]
    visited_activities: set = set()
    fragment_hosts: Dict[str, Tuple[str, ...]] = {}

    def fiva_count() -> int:
        return sum(
            1 for hosts in fragment_hosts.values()
            if any(host in visited_activities for host in hosts)
        )

    for event in events:
        if event.kind != STATE_DISCOVERED:
            continue
        name = str(event.attributes.get("name", ""))
        if event.attributes.get("component") == "activity":
            visited_activities.add(name)
        else:
            fragment_hosts[name] = tuple(
                str(h) for h in event.attributes.get("hosts", ())  # type: ignore[union-attr]
            )
        points.append(CoveragePoint(
            step=event.step,
            activities=len(visited_activities),
            fragments=len(fragment_hosts),
            fivas=fiva_count(),
            apis=apis_by(event.step),
        ))
    return points


def coverage_curve_from_trace(trace: Sequence) -> List[tuple]:
    """Discovery progress derived from an exploration trace: one
    ``(step, activities, fragments)`` tuple per new visit.

    ``trace`` is any sequence of records with ``kind``/``detail``/
    ``step`` attributes (``repro.core.explorer.TraceEvent`` in
    practice; kept duck-typed so the obs layer stays core-free).
    """
    curve: List[tuple] = [(0, 0, 0)]
    activities = 0
    fragments = 0
    for event in trace:
        if event.kind != "visit":
            continue
        if event.detail.startswith("activity "):
            activities += 1
        else:
            fragments += 1
        curve.append((event.step, activities, fragments))
    return curve


# ---------------------------------------------------------------------------
# Stalls & discovery statistics
# ---------------------------------------------------------------------------

def stalls(events: Iterable[Event], min_events: int = 50) -> List[Stall]:
    """Plateaus of at least ``min_events`` injected events with no new
    discovery, longest first.

    The final stretch — from the last discovery to the end of the run
    (the ``run.end`` event, falling back to the latest step seen) —
    counts too: the terminal plateau is usually the one that says the
    budget was spent on nothing.
    """
    events = list(events)
    discovery_steps = [e.step for e in events if e.kind == STATE_DISCOVERED]
    end_step = 0
    for event in events:
        if event.kind == RUN_END:
            end_step = max(end_step, event.step)
        end_step = max(end_step, event.step)
    found: List[Stall] = []
    previous = 0
    for step in discovery_steps + [end_step]:
        gap = step - previous
        if gap >= min_events:
            found.append(Stall(start_step=previous, end_step=step,
                               events=gap))
        previous = max(previous, step)
    found.sort(key=lambda s: (-s.events, s.start_step))
    return found


def time_to_fraction(points: Sequence[CoveragePoint], series: str,
                     fraction: float) -> Optional[int]:
    """The step at which ``series`` ("activities" | "fragments" |
    "fivas" | "apis") first reached ``fraction`` of its final value;
    None when the run discovered nothing on that series."""
    if not points:
        return None
    final = getattr(points[-1], series)
    if final <= 0:
        return None
    threshold = final * fraction
    for point in points:
        if getattr(point, series) >= threshold:
            return point.step
    return None  # pragma: no cover - unreachable (last point qualifies)


def discovery_stats(events: Iterable[Event]) -> Dict[str, Optional[int]]:
    """Time-to-50% and time-to-90% discovery per series, in device
    steps — the "how fast did it get there" half of Table I."""
    points = coverage_timeline(events)
    stats: Dict[str, Optional[int]] = {}
    for series in ("activities", "fragments", "fivas", "apis"):
        stats[f"{series}_t50"] = time_to_fraction(points, series, 0.5)
        stats[f"{series}_t90"] = time_to_fraction(points, series, 0.9)
    return stats
