"""Human-readable views over a set of finished spans.

``aggregate_spans`` groups by span name (count / total / mean /
p50 / p90 / p99 / max); ``top_slowest`` ranks individual spans;
``render_summary`` combines both into the text table the CLI and the
reports embed.  :func:`percentile` (defined in
:mod:`repro.obs.metrics`, re-exported here) is the shared nearest-rank
percentile every consumer (summary tables, histogram snapshots, the
run registry's per-phase self-time percentiles) computes with, so two
views of the same spans never disagree on what "p90" means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.obs.metrics import percentile
from repro.obs.tracer import Span

__all__ = ["percentile", "SpanStat", "aggregate_spans", "top_slowest",
           "timing_rows", "render_summary"]


@dataclass(frozen=True)
class SpanStat:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int
    total: float
    maximum: float
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def aggregate_spans(spans: Iterable[Span]) -> List[SpanStat]:
    """Per-name aggregates, slowest total first."""
    durations: Dict[str, List[float]] = {}
    for span in spans:
        durations.setdefault(span.name, []).append(span.duration)
    stats = [
        SpanStat(
            name=name,
            count=len(values),
            total=float(sum(values)),
            maximum=float(max(values)),
            p50=percentile(values, 0.50),
            p90=percentile(values, 0.90),
            p99=percentile(values, 0.99),
        )
        for name, values in durations.items()
    ]
    stats.sort(key=lambda s: (-s.total, s.name))
    return stats


def top_slowest(spans: Iterable[Span], n: int = 10) -> List[Span]:
    """The n individually slowest spans."""
    return sorted(spans, key=lambda s: -s.duration)[:max(0, n)]


def timing_rows(spans: Iterable[Span]) -> List[List[object]]:
    """Aggregate rows ready for a report table: name, count, total
    seconds, mean/p50/p90/p99/max milliseconds."""
    return [
        [stat.name, stat.count, f"{stat.total:.4f}",
         f"{stat.mean * 1000:.2f}", f"{stat.p50 * 1000:.2f}",
         f"{stat.p90 * 1000:.2f}", f"{stat.p99 * 1000:.2f}",
         f"{stat.maximum * 1000:.2f}"]
        for stat in aggregate_spans(spans)
    ]


def render_summary(spans: Sequence[Span], top: int = 10) -> str:
    """The per-phase aggregate table plus the top-N slowest spans."""
    if not spans:
        return "no spans recorded"
    header = (f"{'span':34} {'count':>7} {'total s':>9} "
              f"{'mean ms':>9} {'p50 ms':>9} {'p90 ms':>9} "
              f"{'p99 ms':>9} {'max ms':>9}")
    lines = [header, "-" * len(header)]
    for stat in aggregate_spans(spans):
        lines.append(
            f"{stat.name:34} {stat.count:>7} {stat.total:>9.4f} "
            f"{stat.mean * 1000:>9.2f} {stat.p50 * 1000:>9.2f} "
            f"{stat.p90 * 1000:>9.2f} {stat.p99 * 1000:>9.2f} "
            f"{stat.maximum * 1000:>9.2f}"
        )
    slowest = top_slowest(spans, top)
    if not slowest:
        return "\n".join(lines)
    lines.append("")
    lines.append(f"top {len(slowest)} slowest spans:")
    for span in slowest:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
        lines.append(
            f"  {span.duration * 1000:>9.2f} ms  {span.name}"
            + (f"  [{attrs}]" if attrs else "")
        )
    return "\n".join(lines)
