"""Structured diff between two run-registry records.

`repro.core.diff` answers "did the *same run* replay identically" at
trace granularity.  This module answers the longitudinal question —
"what changed *between two runs*" — over the persistent
:class:`~repro.obs.registry.RunRecord` shape: per-app coverage deltas,
counter appear/vanish/shift with a tolerance band, per-phase self-time
and peak-memory deltas, plus the comparability facts (config
fingerprint, corpus digest) that say whether the numbers may be
compared at all.

Everything here is pure arithmetic over two records — no clocks, no
filesystem — so the same pair always produces the same
:class:`RecordDiff`, which is what lets :mod:`repro.obs.regress` gate
CI on it deterministically.  (Named ``RecordDiff`` rather than
``RunDiff`` to stay distinct from the replay-comparison class in
``repro.core.diff``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import RunRecord

#: Counters within this relative band of the baseline read as steady.
DEFAULT_TOLERANCE = 0.01

#: Per-app row fields worth diffing (sweep_rows shape).
_APP_FIELDS = ("activities_visited", "activities_sum",
               "fragments_visited", "fragments_sum",
               "apis", "events", "crashes")

APPEARED = "appeared"
VANISHED = "vanished"
SHIFTED = "shifted"
STEADY = "steady"


@dataclass(frozen=True)
class Delta:
    """One scalar compared across the two records.

    ``before``/``after`` are ``None`` on the side where the key does
    not exist — which is a different statement than a value of zero.
    """

    key: str
    before: Optional[float]
    after: Optional[float]
    tolerance: float = 0.0

    @property
    def delta(self) -> Optional[float]:
        if self.before is None or self.after is None:
            return None
        return self.after - self.before

    @property
    def rel(self) -> Optional[float]:
        """Relative change vs the baseline; None when undefined
        (missing on either side, or a zero baseline)."""
        if self.before is None or self.after is None or self.before == 0:
            return None
        return (self.after - self.before) / abs(self.before)

    @property
    def status(self) -> str:
        if self.before is None:
            return APPEARED
        if self.after is None:
            return VANISHED
        if self.before == self.after:
            return STEADY
        rel = self.rel
        if rel is not None and abs(rel) <= self.tolerance:
            return STEADY
        return SHIFTED

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "rel": self.rel,
            "status": self.status,
        }


def diff_numeric(before: Dict[str, float], after: Dict[str, float],
                 tolerance: float = 0.0) -> List[Delta]:
    """Key-union diff of two numeric dicts, sorted by key."""
    out: List[Delta] = []
    for key in sorted(set(before) | set(after)):
        out.append(Delta(
            key=key,
            before=(float(before[key]) if key in before
                    and before[key] is not None else None),
            after=(float(after[key]) if key in after
                   and after[key] is not None else None),
            tolerance=tolerance,
        ))
    return out


@dataclass(frozen=True)
class AppDelta:
    """One app's coverage compared across the two records."""

    package: str
    status: str  # appeared | vanished | shifted | steady
    fields: Tuple[Delta, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "status": self.status,
            "fields": [d.to_dict() for d in self.fields],
        }


def _diff_apps(before_rows: Sequence[Dict], after_rows: Sequence[Dict],
               tolerance: float) -> List[AppDelta]:
    before = {str(r.get("package", "")): r for r in before_rows}
    after = {str(r.get("package", "")): r for r in after_rows}
    out: List[AppDelta] = []
    for package in sorted(set(before) | set(after)):
        if package not in after:
            out.append(AppDelta(package, VANISHED))
            continue
        if package not in before:
            out.append(AppDelta(package, APPEARED))
            continue
        fields = tuple(
            Delta(name,
                  float(before[package].get(name, 0) or 0),
                  float(after[package].get(name, 0) or 0),
                  tolerance)
            for name in _APP_FIELDS
        )
        status = (SHIFTED if any(d.status == SHIFTED for d in fields)
                  else STEADY)
        out.append(AppDelta(package, status, fields))
    return out


@dataclass
class RecordDiff:
    """Everything that changed between a baseline and a candidate."""

    baseline_id: str
    candidate_id: str
    baseline_label: str = ""
    candidate_label: str = ""
    same_config: bool = True
    same_corpus: bool = True
    notes: List[str] = field(default_factory=list)
    coverage: List[Delta] = field(default_factory=list)
    counters: List[Delta] = field(default_factory=list)
    apps: List[AppDelta] = field(default_factory=list)
    phase_time: List[Delta] = field(default_factory=list)   # seconds
    phase_mem: List[Delta] = field(default_factory=list)    # KiB

    @property
    def comparable(self) -> bool:
        return self.same_config and self.same_corpus

    def changed(self) -> Dict[str, List]:
        """Only the non-steady entries of every section."""
        return {
            "coverage": [d for d in self.coverage if d.status != STEADY],
            "counters": [d for d in self.counters if d.status != STEADY],
            "apps": [a for a in self.apps if a.status != STEADY],
            "phase_time": [d for d in self.phase_time
                           if d.status != STEADY],
            "phase_mem": [d for d in self.phase_mem if d.status != STEADY],
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline_id": self.baseline_id,
            "candidate_id": self.candidate_id,
            "baseline_label": self.baseline_label,
            "candidate_label": self.candidate_label,
            "comparable": self.comparable,
            "same_config": self.same_config,
            "same_corpus": self.same_corpus,
            "notes": list(self.notes),
            "coverage": [d.to_dict() for d in self.coverage],
            "counters": [d.to_dict() for d in self.counters],
            "apps": [a.to_dict() for a in self.apps],
            "phase_time": [d.to_dict() for d in self.phase_time],
            "phase_mem": [d.to_dict() for d in self.phase_mem],
        }

    # -- text rendering ----------------------------------------------------

    def render_text(self, changed_only: bool = True) -> str:
        lines = [
            f"run diff: {self.candidate_id} ({self.candidate_label}) "
            f"vs baseline {self.baseline_id} ({self.baseline_label})"
        ]
        for note in self.notes:
            lines.append(f"  ! {note}")
        sections = (
            self.changed() if changed_only else {
                "coverage": self.coverage, "counters": self.counters,
                "apps": self.apps, "phase_time": self.phase_time,
                "phase_mem": self.phase_mem,
            }
        )
        units = {"phase_time": " s", "phase_mem": " KiB"}
        any_change = False
        for section in ("coverage", "apps", "counters",
                        "phase_time", "phase_mem"):
            entries = sections[section]
            if not entries:
                continue
            any_change = True
            lines.append("")
            lines.append(f"{section.replace('_', ' ')}:")
            for entry in entries:
                if isinstance(entry, AppDelta):
                    lines.append(f"  {entry.package:36} {entry.status}")
                    for delta in entry.fields:
                        if changed_only and delta.status == STEADY:
                            continue
                        lines.append("    " + _delta_line(delta, ""))
                else:
                    lines.append(
                        "  " + _delta_line(entry, units.get(section, "")))
        if changed_only and not any_change:
            lines.append("  no changes outside tolerance")
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:g}"


def _delta_line(delta: Delta, unit: str) -> str:
    text = (f"{delta.key:34} {_fmt(delta.before):>12} -> "
            f"{_fmt(delta.after):>12}{unit}  [{delta.status}")
    rel = delta.rel
    if rel is not None and delta.status == SHIFTED:
        text += f" {rel:+.1%}"
    return text + "]"


def diff_records(baseline: RunRecord, candidate: RunRecord,
                 tolerance: float = DEFAULT_TOLERANCE) -> RecordDiff:
    """The structured diff of two records, candidate vs baseline.

    ``tolerance`` is the relative band within which counters and
    per-app fields read as steady; coverage aggregates and phase
    times always report their exact deltas (status still honours the
    band, so noisy totals don't drown the rendering).
    """
    diff = RecordDiff(
        baseline_id=baseline.run_id or baseline.compute_id(),
        candidate_id=candidate.run_id or candidate.compute_id(),
        baseline_label=baseline.label,
        candidate_label=candidate.label,
    )
    if baseline.config != candidate.config:
        diff.same_config = False
        changed_keys = sorted(
            key for key in set(baseline.config) | set(candidate.config)
            if baseline.config.get(key) != candidate.config.get(key)
        )
        diff.notes.append(
            "config fingerprints differ: " + ", ".join(changed_keys))
    if (baseline.corpus_digest and candidate.corpus_digest
            and baseline.corpus_digest != candidate.corpus_digest):
        diff.same_corpus = False
        diff.notes.append(
            f"corpus digests differ: {baseline.corpus_digest[:12]} vs "
            f"{candidate.corpus_digest[:12]}")
    diff.coverage = diff_numeric(baseline.coverage, candidate.coverage,
                                 tolerance)
    diff.counters = diff_numeric(baseline.counters, candidate.counters,
                                 tolerance)
    diff.apps = _diff_apps(baseline.apps, candidate.apps, tolerance)
    diff.phase_time = diff_numeric(
        {name: stats.get("self_total_s", 0.0)
         for name, stats in baseline.phases.items()},
        {name: stats.get("self_total_s", 0.0)
         for name, stats in candidate.phases.items()},
        tolerance,
    )
    diff.phase_mem = diff_numeric(
        {name: stats["mem_peak_kb"]
         for name, stats in baseline.phases.items()
         if "mem_peak_kb" in stats},
        {name: stats["mem_peak_kb"]
         for name, stats in candidate.phases.items()
         if "mem_peak_kb" in stats},
        tolerance,
    )
    return diff
