"""Record sinks: where finished spans and flight-recorder events go.

* :class:`InMemorySink` — a list, for tests and in-process inspection;
* :class:`JsonlSink` — one JSON object per line, the format
  ``python -m repro trace-summary`` and ``repro dashboard`` read back.

A :class:`JsonlSink` accepts anything with a ``to_dict()`` — spans from
a :class:`~repro.obs.tracer.Tracer` and events from an
:class:`~repro.obs.events.EventLog` alike — and flushes after every
line, so a run that crashes mid-flight still leaves a complete record
of everything emitted before the crash.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import IO, Callable, List, Union

from repro.obs.events import Event
from repro.obs.tracer import Span

Source = Union[str, pathlib.Path, IO[str]]


class SpanSink:
    """Interface: ``emit`` each finished record; ``close`` when done."""

    def emit(self, record) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class InMemorySink(SpanSink):
    """Collects records into ``self.spans`` (thread-safe append)."""

    def __init__(self) -> None:
        self.spans: List = []
        self._lock = threading.Lock()

    def emit(self, record) -> None:
        with self._lock:
            self.spans.append(record)


class JsonlSink(SpanSink):
    """Writes each record as one JSON line to a path or open handle.

    Every line is flushed as it is written: a crash mid-run loses at
    most the line being formatted, never the buffered tail of the
    record (the property the flight recorder exists to provide).
    """

    def __init__(self, target: Union[str, pathlib.Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        self._lock = threading.Lock()

    def emit(self, record) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()


def _read_jsonl(source: Source, parse: Callable, what: str) -> List:
    """Parse a JSONL file of records, reporting the file and 1-based
    line number of any malformed line instead of a raw decoder error."""
    if hasattr(source, "read"):
        name = getattr(source, "name", "<stream>")
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        name = str(source)
        lines = pathlib.Path(source).read_text(encoding="utf-8").splitlines()
    records = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{name}:{lineno}: malformed JSON in {what} file: {exc.msg}"
            ) from exc
        records.append(parse(data))
    return records


def read_spans(source: Source) -> List[Span]:
    """Load the spans back from a JSONL file (the round-trip of
    :class:`JsonlSink` attached to a tracer)."""
    return _read_jsonl(source, Span.from_dict, "span")


def read_events(source: Source) -> List[Event]:
    """Load flight-recorder events back from a JSONL file (the
    round-trip of :class:`JsonlSink` attached to an event log)."""
    return _read_jsonl(source, Event.from_dict, "event")
