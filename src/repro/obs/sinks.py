"""Span sinks: where finished spans go.

* :class:`InMemorySink` — a list, for tests and in-process inspection;
* :class:`JsonlSink` — one JSON object per line, the format
  ``python -m repro trace-summary`` reads back.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import IO, List, Optional, Union

from repro.obs.tracer import Span


class SpanSink:
    """Interface: ``emit`` each finished span; ``close`` when done."""

    def emit(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class InMemorySink(SpanSink):
    """Collects spans into ``self.spans`` (thread-safe append)."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._lock = threading.Lock()

    def emit(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)


class JsonlSink(SpanSink):
    """Writes each span as one JSON line to a path or open handle."""

    def __init__(self, target: Union[str, pathlib.Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        self._lock = threading.Lock()

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()


def read_spans(source: Union[str, pathlib.Path, IO[str]]) -> List[Span]:
    """Load the spans back from a JSONL file (the round-trip of
    :class:`JsonlSink`)."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        lines = pathlib.Path(source).read_text(encoding="utf-8").splitlines()
    spans = []
    for line in lines:
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans
