"""Coverage attribution: a typed cause for every unreached target.

The rest of the observability stack reports *what* a run covered; this
module answers the complementary question — **why the rest wasn't**.
It joins the static universe (AFTM nodes, activities, fragments,
sensitive APIs from ``StaticInfo``) against the dynamic record (the
flight-recorder events, the visited sets, quarantine/fault/degradation
data) and classifies every unreached target into one cause from a
closed taxonomy:

``worker-died``
    the whole app's sweep chunk died with its worker process;
``blocked-by-fault``
    the app's run failed, or injected faults interrupted the item that
    would have reached the target;
``not-exported``
    an activity with no static witness path whose manifest entry is not
    exported, in a run that never used instrumented forced starts;
``no-static-path``
    no transition path from the entry reaches the target's node (or the
    target is not a working AFTM node at all);
``blocked-by-quarantine``
    the widget firing the first blocking edge was circuit-broken;
``action-diverged``
    that widget *was* clicked, but the expected transition never
    followed (login gates, input-validated forms, unidentifiable
    fragment attaches);
``frontier-never-expanded``
    a witness path exists and nothing blocked it — the event budget ran
    out before the frontier reached it;
``widget-never-clicked``
    the trigger was never operated: a bound widget the sweep never got
    to, or a listener never bound to any view (popup-menu items,
    drawer adapters — recovered by ``repro.static.triggers``);
``api-silent``
    a sensitive API whose host component was visited yet the API never
    fired;
``unclassified``
    the fallback that should never fire (CI asserts zero of these on
    the Table-I corpus).

Every classification carries **evidence**: the shortest static witness
path (``AFTM.path_to``), the nearest visited ancestor on it, and the
blocking widget when one is known.  The result is a
:class:`CoverageExplanation` — schema-versioned and content-addressed
under the exact :class:`~repro.obs.registry.RunRecord` discipline — so
explanations persist, diff, and round-trip like any other run artifact.

Everything here is pure post-hoc analysis: nothing is computed unless
asked, so default runs stay byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import (
    API_OBSERVED,
    ATTRIBUTION_COMPUTED,
    ATTRIBUTION_MISS,
    FORCED_START,
    QUARANTINE,
    RUN_END,
    WIDGET_CLICKED,
)

#: Bump whenever the explanation shape changes; foreign schemas are
#: rejected on read, mirroring ``RECORD_SCHEMA``.
EXPLANATION_SCHEMA = 1

# -- the cause taxonomy, ranked most severe first ---------------------------

CAUSE_WORKER_DIED = "worker-died"
CAUSE_BLOCKED_BY_FAULT = "blocked-by-fault"
CAUSE_NOT_EXPORTED = "not-exported"
CAUSE_NO_STATIC_PATH = "no-static-path"
CAUSE_BLOCKED_BY_QUARANTINE = "blocked-by-quarantine"
CAUSE_ACTION_DIVERGED = "action-diverged"
CAUSE_FRONTIER_NEVER_EXPANDED = "frontier-never-expanded"
CAUSE_WIDGET_NEVER_CLICKED = "widget-never-clicked"
CAUSE_API_SILENT = "api-silent"
CAUSE_UNCLASSIFIED = "unclassified"

#: The closed taxonomy, severity-ordered (render order, diff order).
CAUSES = (
    CAUSE_WORKER_DIED,
    CAUSE_BLOCKED_BY_FAULT,
    CAUSE_NOT_EXPORTED,
    CAUSE_NO_STATIC_PATH,
    CAUSE_BLOCKED_BY_QUARANTINE,
    CAUSE_ACTION_DIVERGED,
    CAUSE_FRONTIER_NEVER_EXPANDED,
    CAUSE_WIDGET_NEVER_CLICKED,
    CAUSE_API_SILENT,
    CAUSE_UNCLASSIFIED,
)

_CAUSE_RANK = {cause: rank for rank, cause in enumerate(CAUSES)}

#: AFTM triggers that are mechanisms, not widget resource names.
_NON_WIDGET_TRIGGERS = ("static", "reflection", "forced-start")


# ---------------------------------------------------------------------------
# The per-target verdict
# ---------------------------------------------------------------------------

@dataclass
class MissTarget:
    """One unreached target and why it stayed unreached."""

    package: str
    kind: str                   # "activity" | "fragment" | "api" | "app"
    name: str
    cause: str
    #: The shortest static witness path, entry -> target, as edge dicts
    #: (src/dst/kind/trigger); empty when no path exists.
    witness: List[Dict[str, object]] = field(default_factory=list)
    nearest_visited: Optional[str] = None
    blocking_widget: Optional[str] = None
    evidence: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "package": self.package,
            "kind": self.kind,
            "name": self.name,
            "cause": self.cause,
            "witness": self.witness,
            "nearest_visited": self.nearest_visited,
            "blocking_widget": self.blocking_widget,
            "evidence": self.evidence,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MissTarget":
        return cls(
            package=str(data.get("package", "")),
            kind=str(data.get("kind", "")),
            name=str(data.get("name", "")),
            cause=str(data.get("cause", CAUSE_UNCLASSIFIED)),
            witness=[dict(e) for e in data.get("witness") or ()],
            nearest_visited=data.get("nearest_visited"),
            blocking_widget=data.get("blocking_widget"),
            evidence=str(data.get("evidence", "")),
        )

    @property
    def simple_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def sort_key(self) -> Tuple:
        return (self.package,
                _CAUSE_RANK.get(self.cause, len(CAUSES)),
                self.kind, self.name)


# ---------------------------------------------------------------------------
# The persistent artifact
# ---------------------------------------------------------------------------

@dataclass
class CoverageExplanation:
    """One run's attribution verdicts, persisted like a ``RunRecord``.

    Content-addressed over everything except ``meta``; the explanation
    for the same run record is byte-identical whichever sweep backend
    produced the run.
    """

    label: str = "explanation"
    #: The run record this explanation is about (its content id).
    source_run_id: str = ""
    #: Per-app summary rows: package, ok, reached/missed counts, causes.
    apps: List[Dict] = field(default_factory=list)
    #: Every unreached target, sorted by (package, severity, kind, name).
    targets: List[Dict] = field(default_factory=list)
    #: Cause -> count over all targets.
    cause_census: Dict[str, int] = field(default_factory=dict)
    #: Unhashed context (backend, worker count, ...). Deliberately not
    #: auto-stamped with a timestamp: byte-identical by default.
    meta: Dict[str, object] = field(default_factory=dict)
    schema: int = EXPLANATION_SCHEMA
    explanation_id: str = ""

    # -- content addressing ------------------------------------------------

    def payload(self) -> Dict:
        return {
            "schema": self.schema,
            "label": self.label,
            "source_run_id": self.source_run_id,
            "apps": self.apps,
            "targets": self.targets,
            "cause_census": self.cause_census,
        }

    def compute_id(self) -> str:
        canonical = json.dumps(self.payload(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict:
        data = self.payload()
        data["explanation_id"] = self.explanation_id or self.compute_id()
        data["meta"] = self.meta
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict) -> "CoverageExplanation":
        schema = int(data.get("schema", -1))
        if schema != EXPLANATION_SCHEMA:
            raise ValueError(
                f"unsupported coverage-explanation schema {schema!r} "
                f"(this build reads {EXPLANATION_SCHEMA})")
        return cls(
            label=str(data.get("label", "explanation")),
            source_run_id=str(data.get("source_run_id", "")),
            apps=[dict(r) for r in data.get("apps") or ()],
            targets=[dict(t) for t in data.get("targets") or ()],
            cause_census=dict(data.get("cause_census") or {}),
            meta=dict(data.get("meta") or {}),
            schema=schema,
            explanation_id=str(data.get("explanation_id", "")),
        )

    # -- views -------------------------------------------------------------

    def miss_targets(self) -> List[MissTarget]:
        return [MissTarget.from_dict(t) for t in self.targets]

    def targets_of(self, package: str) -> List[MissTarget]:
        return [t for t in self.miss_targets() if t.package == package]

    def unclassified(self) -> List[MissTarget]:
        return [t for t in self.miss_targets()
                if t.cause == CAUSE_UNCLASSIFIED]


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

class _DynamicRecord:
    """The dynamic facts the classifier consults, pre-indexed.

    Reads events in place (live ``Event`` objects or replayed dicts)
    without materializing intermediate rows — this runs once per app
    per explanation and is on the benchmark-pinned path.
    """

    def __init__(self, events: Iterable, degradation=None) -> None:
        self.clicked: Dict[str, int] = {}
        self.quarantined: set = set()
        self.termination: Optional[str] = None
        self.forced_start_used = False
        self.observed_apis: set = set()
        for event in events or ():
            if isinstance(event, dict):
                kind = event.get("kind")
                attrs = event.get("attributes") or {}
                step = event.get("step", 0)
            else:
                kind = event.kind
                attrs = event.attributes or {}
                step = event.step
            if kind == WIDGET_CLICKED:
                widget = str(attrs.get("widget", ""))
                if widget and widget not in self.clicked:
                    self.clicked[widget] = int(step)
            elif kind == QUARANTINE:
                self.quarantined.add(str(attrs.get("widget", "")))
            elif kind == RUN_END:
                self.termination = attrs.get("termination")
            elif kind == FORCED_START:
                self.forced_start_used = True
            elif kind == API_OBSERVED:
                self.observed_apis.add(
                    (str(attrs.get("component", "")), str(attrs.get("api", ""))))
        self.faults_present = False
        if degradation is not None:
            quarantined = getattr(degradation, "quarantined", None) or ()
            self.quarantined.update(str(w) for w in quarantined)
            faults = getattr(degradation, "faults", None) or {}
            self.faults_present = bool(faults) or bool(
                getattr(degradation, "abandoned_items", 0))


def _witness_dicts(path) -> List[Dict[str, object]]:
    return [
        {
            "src": edge.src.name,
            "src_kind": edge.src.kind.value,
            "dst": edge.dst.name,
            "dst_kind": edge.dst.kind.value,
            "kind": edge.kind.name,
            "trigger": edge.trigger,
        }
        for edge in path
    ]


def classify_app(package: str,
                 aftm,
                 activities: Sequence[str],
                 fragments: Sequence[str],
                 visited: Iterable[str],
                 events: Iterable = (),
                 degradation=None,
                 static_api_map: Optional[Dict[str, List[str]]] = None,
                 api_invocations: Iterable = (),
                 trigger_map=None,
                 manifest=None,
                 ok: bool = True,
                 fault_kind: Optional[str] = None,
                 ) -> List[MissTarget]:
    """Classify every unreached target of one app.

    Deterministic: targets are produced in sorted universe order and
    the verdict depends only on the AFTM, the (order-independent) event
    facts and the degradation record — never on wall time or backend.
    """
    visited_set = set(visited)
    record = _DynamicRecord(events, degradation)
    misses: List[MissTarget] = []
    component_misses: Dict[str, MissTarget] = {}

    for kind, names in (("activity", activities), ("fragment", fragments)):
        for name in sorted(names):
            if name in visited_set:
                continue
            if not ok:
                miss = _app_failure_target(package, kind, name, fault_kind)
            else:
                miss = _classify_component(
                    package, kind, name, aftm, visited_set, record,
                    trigger_map, manifest)
            misses.append(miss)
            component_misses[name] = miss

    observed = set(record.observed_apis)
    for inv in api_invocations or ():
        component = getattr(getattr(inv, "component", None), "cls", None)
        api = getattr(inv, "api", None)
        if component and api:
            observed.add((str(component), str(api)))
    for owner in sorted(static_api_map or {}):
        for api in sorted((static_api_map or {})[owner]):
            if (owner, api) in observed:
                continue
            misses.append(_classify_api(
                package, owner, api, visited_set, component_misses,
                ok, fault_kind))
    return misses


def _app_failure_target(package: str, kind: str, name: str,
                        fault_kind: Optional[str]) -> MissTarget:
    if fault_kind == "worker-died":
        return MissTarget(package, kind, name, CAUSE_WORKER_DIED,
                          evidence="the app's sweep worker died before "
                                   "any exploration finished")
    return MissTarget(package, kind, name, CAUSE_BLOCKED_BY_FAULT,
                      evidence=f"the app's run failed"
                               f" ({fault_kind or 'error'})")


def _classify_component(package: str, kind: str, name: str, aftm,
                        visited: set, record: _DynamicRecord,
                        trigger_map, manifest) -> MissTarget:
    node = aftm.node(name) if aftm is not None else None
    path = aftm.path_to(node) if node is not None else None
    if path is None:
        return _no_path_target(package, kind, name, node, record, manifest)

    blocking = next((e for e in path if e.dst.name not in visited), None)
    witness = _witness_dicts(path)
    if blocking is None:
        # Every edge dst visited yet the target itself was not — the
        # path ends elsewhere (shouldn't happen); keep it honest.
        blocking = path[-1] if path else None
    nearest = None
    widget = None
    unbound = None
    if blocking is not None:
        if blocking.src.name in visited:
            nearest = blocking.src.name
        if blocking.trigger not in _NON_WIDGET_TRIGGERS:
            widget = blocking.trigger
        elif trigger_map is not None:
            widget = trigger_map.widget_for(blocking.src.name,
                                            blocking.dst.name)
            if widget is None:
                unbound = trigger_map.unbound_for(blocking.src.name,
                                                  blocking.dst.name)

    if widget is not None and widget in record.quarantined:
        return MissTarget(
            package, kind, name, CAUSE_BLOCKED_BY_QUARANTINE,
            witness=witness, nearest_visited=nearest, blocking_widget=widget,
            evidence=f"widget {widget!r} was quarantined by the circuit "
                     f"breaker before the transition could fire")
    if widget is not None and widget in record.clicked:
        step = record.clicked[widget]
        return MissTarget(
            package, kind, name, CAUSE_ACTION_DIVERGED,
            witness=witness, nearest_visited=nearest, blocking_widget=widget,
            evidence=f"widget {widget!r} was clicked (step {step}) but the "
                     f"expected transition never followed")
    if record.termination == "budget-exhausted":
        return MissTarget(
            package, kind, name, CAUSE_FRONTIER_NEVER_EXPANDED,
            witness=witness, nearest_visited=nearest, blocking_widget=widget,
            evidence="a witness path exists; the event budget ran out "
                     "before the frontier expanded this far")
    if record.faults_present:
        return MissTarget(
            package, kind, name, CAUSE_BLOCKED_BY_FAULT,
            witness=witness, nearest_visited=nearest, blocking_widget=widget,
            evidence="injected faults degraded the run before the "
                     "transition was exercised")
    if widget is not None:
        return MissTarget(
            package, kind, name, CAUSE_WIDGET_NEVER_CLICKED,
            witness=witness, nearest_visited=nearest, blocking_widget=widget,
            evidence=f"widget {widget!r} is statically bound to the "
                     f"blocking edge but was never operated")
    if unbound is not None:
        return MissTarget(
            package, kind, name, CAUSE_WIDGET_NEVER_CLICKED,
            witness=witness, nearest_visited=nearest,
            evidence=f"the only trigger is listener {unbound.listener!r}, "
                     f"never bound to a view — it hides behind a popup "
                     f"menu or adapter callback the click sweep dismisses")
    if record.termination == "queue-drained" or record.termination is None:
        return MissTarget(
            package, kind, name, CAUSE_WIDGET_NEVER_CLICKED,
            witness=witness, nearest_visited=nearest,
            evidence="the queue drained with no operable trigger bound "
                     "to the blocking edge")
    return MissTarget(package, kind, name, CAUSE_UNCLASSIFIED,
                      witness=witness, nearest_visited=nearest,
                      blocking_widget=widget)


def _no_path_target(package: str, kind: str, name: str, node,
                    record: _DynamicRecord, manifest) -> MissTarget:
    if kind == "activity" and manifest is not None \
            and not record.forced_start_used:
        decl = manifest.activity(name)
        if decl is not None and not decl.exported:
            return MissTarget(
                package, kind, name, CAUSE_NOT_EXPORTED,
                evidence="no static path reaches the activity and its "
                         "manifest entry is not exported; without "
                         "instrumented forced starts it cannot be "
                         "launched externally")
    if node is None:
        evidence = "not a working node of the AFTM (isolated or unknown)"
    else:
        evidence = "no transition path from the entry reaches this node"
    return MissTarget(package, kind, name, CAUSE_NO_STATIC_PATH,
                      evidence=evidence)


def _classify_api(package: str, owner: str, api: str, visited: set,
                  component_misses: Dict[str, MissTarget], ok: bool,
                  fault_kind: Optional[str]) -> MissTarget:
    name = f"{owner}#{api}"
    if not ok:
        return _app_failure_target(package, "api", name, fault_kind)
    if owner in visited:
        return MissTarget(
            package, "api", name, CAUSE_API_SILENT,
            nearest_visited=owner,
            evidence=f"host {owner.rsplit('.', 1)[-1]} was visited but "
                     f"{api} never fired — the invoking action was not "
                     f"triggered")
    host_miss = component_misses.get(owner)
    if host_miss is not None:
        return MissTarget(
            package, "api", name, host_miss.cause,
            witness=list(host_miss.witness),
            nearest_visited=host_miss.nearest_visited,
            blocking_widget=host_miss.blocking_widget,
            evidence=f"inherited from unreached host "
                     f"{owner.rsplit('.', 1)[-1]}: {host_miss.evidence}")
    return MissTarget(
        package, "api", name, CAUSE_NO_STATIC_PATH,
        evidence=f"owner {owner.rsplit('.', 1)[-1]} is not a working "
                 f"component of the AFTM")


# ---------------------------------------------------------------------------
# Whole-run explanation builders
# ---------------------------------------------------------------------------

def _app_row(package: str, ok: bool, reached_activities: int,
             reached_fragments: int,
             misses: List[MissTarget]) -> Dict[str, object]:
    causes: Dict[str, int] = {}
    for miss in misses:
        causes[miss.cause] = causes.get(miss.cause, 0) + 1
    return {
        "package": package,
        "ok": ok,
        "reached_activities": reached_activities,
        "reached_fragments": reached_fragments,
        "missed": len(misses),
        "causes": {c: causes[c] for c in sorted(causes)},
    }


def _assemble(label: str, source_run_id: str,
              rows: List[Dict], misses: List[MissTarget],
              meta: Optional[Dict] = None,
              event_log=None) -> CoverageExplanation:
    misses = sorted(misses, key=lambda m: m.sort_key())
    census: Dict[str, int] = {}
    for miss in misses:
        census[miss.cause] = census.get(miss.cause, 0) + 1
    explanation = CoverageExplanation(
        label=label,
        source_run_id=source_run_id,
        apps=sorted(rows, key=lambda r: str(r.get("package", ""))),
        targets=[m.to_dict() for m in misses],
        cause_census={c: census[c] for c in sorted(census)},
        meta=dict(meta or {}),
    )
    explanation.explanation_id = explanation.compute_id()
    if event_log is not None and getattr(event_log, "enabled", False):
        for row in explanation.apps:
            event_log.emit(ATTRIBUTION_COMPUTED, app=str(row["package"]),
                           missed=row["missed"], causes=row["causes"])
        for miss in misses:
            event_log.emit(ATTRIBUTION_MISS, app=miss.package,
                           target_kind=miss.kind, target=miss.name,
                           cause=miss.cause)
    return explanation


def explain_result(result, label: str = "run", source_run_id: str = "",
                   meta: Optional[Dict] = None,
                   event_log=None) -> CoverageExplanation:
    """Explain one in-memory :class:`ExplorationResult`."""
    misses = classify_result(result)
    row = _app_row(result.package, True,
                   len(result.visited_activities),
                   len(result.visited_fragments), misses)
    return _assemble(label, source_run_id, [row], misses, meta, event_log)


def classify_result(result) -> List[MissTarget]:
    """The per-target verdicts for one :class:`ExplorationResult`."""
    from repro.static.triggers import trigger_map_of

    info = result.info
    decoded = getattr(info, "decoded", None)
    return classify_app(
        package=result.package,
        aftm=result.aftm,
        activities=info.activities,
        fragments=info.fragments,
        visited=set(result.visited_activities) | set(result.visited_fragments),
        events=result.events,
        degradation=result.degradation,
        static_api_map=info.static_api_map,
        api_invocations=result.api_invocations,
        trigger_map=trigger_map_of(info),
        manifest=decoded.manifest if decoded is not None else None,
    )


def explain_outcomes(outcomes: Dict[str, object],
                     label: str = "sweep", source_run_id: str = "",
                     meta: Optional[Dict] = None,
                     event_log=None) -> CoverageExplanation:
    """Explain a whole sweep (``explore_many`` outcomes, by package).

    Apps that produced a result are fully classified; apps that failed
    before producing one have no recoverable static universe, so they
    contribute one app-level target carrying the failure cause.
    """
    rows: List[Dict] = []
    misses: List[MissTarget] = []
    for package in sorted(outcomes):
        outcome = outcomes[package]
        result = getattr(outcome, "result", None)
        if result is not None:
            app_misses = classify_result(result)
            rows.append(_app_row(package, True,
                                 len(result.visited_activities),
                                 len(result.visited_fragments), app_misses))
            misses.extend(app_misses)
            continue
        fault_kind = getattr(outcome, "fault_kind", None)
        miss = _app_failure_target(package, "app", package, fault_kind)
        miss.evidence += "; its static universe is unknown"
        rows.append(_app_row(package, False, 0, 0, [miss]))
        misses.append(miss)
    return _assemble(label, source_run_id, rows, misses, meta, event_log)


def explain_run_dir(run_dir,
                    label: str = "run-dir",
                    source_run_id: str = "",
                    meta: Optional[Dict] = None) -> CoverageExplanation:
    """Explain a saved run directory (``explore --save DIR``).

    Works from ``report.json`` + ``aftm.json`` + ``events.jsonl``; the
    sensitive-API universe is not part of the saved report, so run-dir
    explanations cover activities and fragments (in-memory paths cover
    APIs too).
    """
    from repro.core.report import aftm_from_json
    from repro.obs.sinks import read_events

    directory = pathlib.Path(run_dir)
    report = json.loads((directory / "report.json").read_text(
        encoding="utf-8"))
    aftm = aftm_from_json((directory / "aftm.json").read_text(
        encoding="utf-8"))
    events: List = []
    events_path = directory / "events.jsonl"
    if events_path.exists():
        events = read_events(events_path)
    package = str(report.get("package", aftm.package))
    coverage = report.get("coverage") or {}
    visited_activities = list(
        (coverage.get("activities") or {}).get("visited") or ())
    visited_fragments = list(
        (coverage.get("fragments") or {}).get("visited") or ())
    degradation = report.get("degradation")
    misses = classify_app(
        package=package,
        aftm=aftm,
        activities=sorted(n.name for n in aftm.activities),
        fragments=sorted(n.name for n in aftm.fragments),
        visited=set(visited_activities) | set(visited_fragments),
        events=events,
        degradation=_DegradationView(degradation) if degradation else None,
    )
    row = _app_row(package, True, len(visited_activities),
                   len(visited_fragments), misses)
    return _assemble(label, source_run_id, [row], misses, meta)


class _DegradationView:
    """Duck-typed view over a serialized degradation dict."""

    def __init__(self, data: Dict) -> None:
        self.quarantined = list(data.get("quarantined") or ())
        self.faults = dict(data.get("faults") or {})
        self.abandoned_items = int(data.get("abandoned_items", 0))


# ---------------------------------------------------------------------------
# Persistence: the explanation store
# ---------------------------------------------------------------------------

class ExplanationStore:
    """Explanations under a run-registry directory, keyed by run id.

    One ``explanations/<run_id>.json`` per explained record, written
    with the registry's atomic-rename discipline.  Keyed by the *source
    run id* so the lookup from a record (or a serve job) is O(1); the
    content-addressed ``explanation_id`` inside the file makes
    tampering detectable, exactly like ``RunRecord``.
    """

    SUBDIR = "explanations"

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory) / self.SUBDIR

    def path_of(self, run_id: str) -> pathlib.Path:
        return self.directory / f"{run_id}.json"

    def save(self, explanation: CoverageExplanation) -> str:
        if not explanation.source_run_id:
            raise ValueError("an explanation needs a source_run_id to be "
                             "stored (it keys the file)")
        if not explanation.explanation_id:
            explanation.explanation_id = explanation.compute_id()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(self.path_of(explanation.source_run_id),
                           explanation.to_json())
        return explanation.explanation_id

    def _atomic_write(self, path: pathlib.Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self, ref: str) -> CoverageExplanation:
        """Load by source run id or explanation id (unique prefixes work)."""
        path = self.path_of(ref)
        if not path.exists():
            matches = [p for p in self.ids() if p.startswith(ref)]
            if not matches:
                # Users paste the explanation id from the status line
                # just as often as the run id; match it too.
                matches = [run_id for run_id in self.ids()
                           if self._read(run_id).explanation_id
                           .startswith(ref)]
            if len(matches) == 1:
                path = self.path_of(matches[0])
            elif len(matches) > 1:
                raise KeyError(f"id prefix {ref!r} is ambiguous: "
                               f"{', '.join(matches)}")
            else:
                raise KeyError(f"no explanation for {ref!r} under "
                               f"{self.directory}")
        return CoverageExplanation.from_dict(
            json.loads(path.read_text(encoding="utf-8")))

    def _read(self, run_id: str) -> CoverageExplanation:
        return CoverageExplanation.from_dict(json.loads(
            self.path_of(run_id).read_text(encoding="utf-8")))

    def ids(self) -> List[str]:
        if not self.directory.is_dir():
            return []
        return sorted(path.stem for path in self.directory.glob("*.json")
                      if not path.name.startswith("."))


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_explanation(explanation: CoverageExplanation,
                       target: Optional[str] = None,
                       top: int = 0) -> str:
    """The ranked miss table (and per-target drill-down) as text."""
    lines: List[str] = []
    misses = explanation.miss_targets()
    lines.append(f"coverage explanation {explanation.explanation_id}"
                 + (f" (run {explanation.source_run_id})"
                    if explanation.source_run_id else ""))
    reached_a = sum(int(r.get("reached_activities", 0))
                    for r in explanation.apps)
    reached_f = sum(int(r.get("reached_fragments", 0))
                    for r in explanation.apps)
    lines.append(f"apps: {len(explanation.apps)}  "
                 f"reached: {reached_a} activities, {reached_f} fragments  "
                 f"unreached targets: {len(misses)}")
    if explanation.cause_census:
        lines.append("cause census:")
        for cause in CAUSES:
            count = explanation.cause_census.get(cause)
            if count:
                lines.append(f"  {cause:24} {count}")
    if target is not None:
        matched = [m for m in misses
                   if m.name == target or m.simple_name == target
                   or m.name.endswith(f"#{target}")]
        if not matched:
            lines.append(f"target {target!r}: not among the unreached "
                         f"targets (reached, or unknown)")
        for miss in matched:
            lines.extend(_drill_down(miss))
        return "\n".join(lines) + "\n"
    shown = misses[:top] if top else misses
    if shown:
        lines.append("")
        lines.append(f"{'cause':24} {'kind':8} {'target':40} "
                     f"{'widget':16} nearest visited")
        for miss in shown:
            name = miss.simple_name if miss.kind != "api" \
                else miss.name.rsplit(".", 1)[-1]
            nearest = (miss.nearest_visited or "-").rsplit(".", 1)[-1]
            lines.append(f"{miss.cause:24} {miss.kind:8} {name:40} "
                         f"{miss.blocking_widget or '-':16} {nearest}")
        if top and len(misses) > top:
            lines.append(f"... and {len(misses) - top} more "
                         f"(use --target NAME for one, --top 0 for all)")
    return "\n".join(lines) + "\n"


def _drill_down(miss: MissTarget) -> List[str]:
    lines = [
        "",
        f"{miss.kind} {miss.name}",
        f"  cause: {miss.cause}",
        f"  evidence: {miss.evidence}" if miss.evidence else "  evidence: -",
    ]
    if miss.blocking_widget:
        lines.append(f"  blocking widget: {miss.blocking_widget}")
    if miss.nearest_visited:
        lines.append(f"  nearest visited ancestor: {miss.nearest_visited}")
    if miss.witness:
        lines.append("  witness path:")
        for edge in miss.witness:
            src = str(edge.get("src", "?")).rsplit(".", 1)[-1]
            dst = str(edge.get("dst", "?")).rsplit(".", 1)[-1]
            trigger = edge.get("trigger", "static")
            lines.append(f"    {src} --[{trigger}]--> {dst}")
    else:
        lines.append("  witness path: none (no static path)")
    return lines


# ---------------------------------------------------------------------------
# Fleet aggregation (dashboard / diff helpers)
# ---------------------------------------------------------------------------

def fleet_cause_census(explanations: Iterable[CoverageExplanation]
                       ) -> Dict[str, int]:
    census: Dict[str, int] = {}
    for explanation in explanations:
        for cause, count in explanation.cause_census.items():
            census[cause] = census.get(cause, 0) + int(count)
    return {c: census[c] for c in sorted(census)}


def top_blocking_widgets(explanations: Iterable[CoverageExplanation],
                         top: int = 10) -> List[Tuple[str, int]]:
    """Widgets blocking the most targets across a fleet, descending."""
    counts: Dict[str, int] = {}
    for explanation in explanations:
        for miss in explanation.miss_targets():
            if miss.blocking_widget:
                counts[miss.blocking_widget] = (
                    counts.get(miss.blocking_widget, 0) + 1)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top] if top else ranked


def newly_unreached(baseline: CoverageExplanation,
                    candidate: CoverageExplanation) -> List[MissTarget]:
    """Targets unreached in the candidate but not in the baseline —
    the names a coverage regression should print."""
    before = {(t.package, t.kind, t.name) for t in baseline.miss_targets()}
    return [t for t in candidate.miss_targets()
            if (t.package, t.kind, t.name) not in before]
