"""Span-tree analytics: self-time, critical path, flamegraph output.

A traced run records a flat list of spans with parent pointers; this
module folds them back into trees and answers the profiler questions:

* :func:`build_trees` — one :class:`FlameNode` tree per trace root;
* :func:`self_times` — per-name *self* time (a span's duration minus
  its children's), the quantity the flamegraph bars show;
* :func:`critical_path` — the chain of slowest descendants from a
  root, i.e. where an optimisation would actually shorten the run;
* :func:`collapsed_stacks` — classic ``a;b;c <value>`` collapsed-stack
  lines (value = self time in microseconds), the input format of every
  flamegraph renderer; the values over a tree sum to its root span's
  duration exactly (self time telescopes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.obs.tracer import Span


@dataclass
class FlameNode:
    """One span plus its children, in start order."""

    span: Span
    children: List["FlameNode"] = field(default_factory=list)

    @property
    def self_time(self) -> float:
        """Duration not accounted for by any child span."""
        return self.span.duration - sum(c.span.duration
                                        for c in self.children)

    def walk(self) -> Iterable["FlameNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_trees(spans: Sequence[Span]) -> List[FlameNode]:
    """Reconstruct the span forest: one tree per trace root.

    Orphans (spans whose parent never finished — a crashed run) are
    promoted to roots so no recorded time is dropped.
    """
    nodes: Dict[int, FlameNode] = {
        span.span_id: FlameNode(span) for span in spans
    }
    roots: List[FlameNode] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = (nodes.get(span.parent_id)
                  if span.parent_id is not None else None)
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.span.start)
    roots.sort(key=lambda n: n.span.start)
    return roots


def self_times(spans: Sequence[Span]) -> Dict[str, float]:
    """Total self time per span name, the flamegraph aggregation."""
    totals: Dict[str, float] = {}
    for root in build_trees(spans):
        for node in root.walk():
            name = node.span.name
            totals[name] = totals.get(name, 0.0) + node.self_time
    return totals


def critical_path(spans: Sequence[Span]) -> List[Span]:
    """The chain of slowest descendants from the slowest root.

    This is the sequence of spans an optimisation has to shorten to
    shorten the run; everything off this path is hidden behind it.
    """
    roots = build_trees(spans)
    if not roots:
        return []
    node = max(roots, key=lambda n: n.span.duration)
    path = [node.span]
    while node.children:
        node = max(node.children, key=lambda n: n.span.duration)
        path.append(node.span)
    return path


def collapsed_stacks(spans: Sequence[Span]) -> List[str]:
    """Collapsed-stack lines, ``name;name;... <self-time µs>``.

    Equal stacks aggregate; the per-line values over one trace sum to
    the root span's duration (in µs) within floating-point error, so a
    flamegraph rendered from these lines has the run's true width.
    """
    totals: Dict[str, float] = {}

    def visit(node: FlameNode, prefix: str) -> None:
        stack = f"{prefix};{node.span.name}" if prefix else node.span.name
        totals[stack] = totals.get(stack, 0.0) + node.self_time
        for child in node.children:
            visit(child, stack)

    for root in build_trees(spans):
        visit(root, "")
    return [f"{stack} {seconds * 1e6:.3f}"
            for stack, seconds in sorted(totals.items())]
