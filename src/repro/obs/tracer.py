"""Nestable wall-clock spans.

A :class:`Tracer` hands out spans as context managers::

    with tracer.span("static.extract", app=apk.package) as span:
        ...
        span.set_attribute("activities", len(activities))

Spans nest through a per-thread stack, so a parallel sweep produces one
independent trace per worker: the first span opened on a thread becomes
a trace root and every descendant carries its ``trace_id``.  Finished
spans are kept on the tracer (``finished_spans()``) and forwarded to
any attached sinks.

The default tracer everywhere is :data:`NULL_TRACER`: its ``span()``
returns one shared reusable no-op context manager and its counters
discard writes, so instrumented code costs nearly nothing when
observability is off.
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import NULL_METRICS, Metrics


class Span:
    """One timed region of the pipeline."""

    __slots__ = ("name", "span_id", "trace_id", "parent_id", "depth",
                 "start", "duration", "attributes")

    def __init__(self, name: str, span_id: int, trace_id: int,
                 parent_id: Optional[int], depth: int, start: float,
                 duration: float = 0.0,
                 attributes: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = start
        self.duration = duration
        self.attributes = dict(attributes) if attributes else {}

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(
            name=str(data["name"]),
            span_id=int(data["span_id"]),
            trace_id=int(data["trace_id"]),
            parent_id=(None if data.get("parent_id") is None
                       else int(data["parent_id"])),  # type: ignore[arg-type]
            depth=int(data.get("depth", 0)),  # type: ignore[arg-type]
            start=float(data.get("start", 0.0)),  # type: ignore[arg-type]
            duration=float(data.get("duration", 0.0)),  # type: ignore[arg-type]
            attributes=dict(data.get("attributes") or {}),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"duration={self.duration:.6f}, attrs={self.attributes})")


class _ActiveSpan:
    """Context manager binding one Span to the tracer's thread stack."""

    __slots__ = ("_tracer", "_span", "_mem0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._mem0: Optional[int] = None

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._mem0 = self._tracer._mem_enter()
        self._span.start = perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> None:
        span = self._span
        span.duration = perf_counter() - span.start
        self._tracer._mem_exit(span, self._mem0)
        if exc is not None:
            span.attributes.setdefault("error", repr(exc))
        self._tracer._pop(span)
        self._tracer._record(span)
        return None


class _NullSpan:
    """The span the null tracer yields: attribute writes vanish."""

    __slots__ = ()
    name = ""
    span_id = 0
    trace_id = 0
    parent_id = None
    depth = 0
    start = 0.0
    duration = 0.0
    attributes: Dict[str, object] = {}

    def set_attribute(self, key: str, value: object) -> None:
        pass


class _NullSpanContext:
    __slots__ = ("_span",)

    def __init__(self) -> None:
        self._span = _NullSpan()

    def __enter__(self) -> _NullSpan:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class Tracer:
    """Span factory + finished-span store + metrics front-end.

    ``memory=True`` additionally samples peak traced memory per span
    through :mod:`tracemalloc`: each finished span carries a
    ``mem_peak_kb`` attribute — the growth of the interpreter's traced
    peak over the span's own starting allocation.  The peak is
    process-global since tracing started, so nested spans can share a
    peak; treat the values as *samples* of where memory went, not an
    exact per-phase attribution.  The tracer starts tracemalloc if it
    is not already running and stops it again on :meth:`close` (only
    when it was the one to start it).
    """

    enabled = True

    def __init__(self, sinks: Iterable = (),
                 metrics: Optional[Metrics] = None,
                 memory: bool = False) -> None:
        self.sinks = list(sinks)
        self.metrics = metrics if metrics is not None else Metrics()
        self.memory = memory
        self._mem_started = False
        if memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._mem_started = True
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._finished: List[Span] = []
        self._local = threading.local()

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attributes: object) -> _ActiveSpan:
        parent = self.current_span()
        span_id = next(self._ids)
        return _ActiveSpan(self, Span(
            name=name,
            span_id=span_id,
            trace_id=parent.trace_id if parent else span_id,
            parent_id=parent.span_id if parent else None,
            depth=parent.depth + 1 if parent else 0,
            start=0.0,
            attributes=attributes,
        ))

    def trace_span(self, name: str, trace_id: Optional[int],
                   **attributes: object) -> _ActiveSpan:
        """A span bound to an *explicit* trace.

        The serve scheduler correlates everything one job does — across
        scheduler rounds, sweep threads and worker processes — under the
        job's ``trace_id``.  When the thread already has an open parent
        span the parent wins (nesting stays intact); otherwise the span
        becomes a root of the given trace instead of starting a fresh
        one.  ``trace_id=None`` behaves exactly like :meth:`span`.
        """
        active = self.span(name, **attributes)
        span = active._span
        if trace_id is not None and span.parent_id is None:
            span.trace_id = trace_id
        return active

    def record_span(self, name: str, duration: float,
                    trace_id: Optional[int] = None,
                    start: float = 0.0,
                    **attributes: object) -> Span:
        """Record a span retrospectively, from timestamps already taken.

        Queue wait is the canonical case: the interval between a job's
        submission and its pickup is only known once the scheduler takes
        the job, after the fact — there is no code region to wrap.  The
        span lands as a root of ``trace_id`` (or of its own fresh trace)
        and flows to the finished store and sinks like any other.
        """
        span_id = next(self._ids)
        span = Span(
            name=name,
            span_id=span_id,
            trace_id=trace_id if trace_id is not None else span_id,
            parent_id=None,
            depth=0,
            start=start,
            duration=max(0.0, float(duration)),
            attributes=attributes,
        )
        self._record(span)
        return span

    def current_span(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)
        for sink in self.sinks:
            sink.emit(span)

    # -- peak-memory sampling ----------------------------------------------

    def _mem_enter(self) -> Optional[int]:
        """Traced bytes at span start, or None when sampling is off."""
        if not self.memory:
            return None
        import tracemalloc

        if not tracemalloc.is_tracing():  # stopped externally mid-run
            return None
        return tracemalloc.get_traced_memory()[0]

    def _mem_exit(self, span: Span, mem0: Optional[int]) -> None:
        if mem0 is None:
            return
        import tracemalloc

        if not tracemalloc.is_tracing():
            return
        current, peak = tracemalloc.get_traced_memory()
        span.attributes["mem_peak_kb"] = round(
            max(0, max(current, peak) - mem0) / 1024.0, 1)

    # -- reading -----------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    def spans_in_trace(self, trace_id: int) -> List[Span]:
        with self._lock:
            return [s for s in self._finished if s.trace_id == trace_id]

    # -- merging -----------------------------------------------------------

    def absorb(self, spans: Iterable[Span],
               into_trace: Optional[int] = None) -> List[Span]:
        """Fold spans recorded by another tracer into this one.

        The process-pool sweep backend gives each worker its own in-memory
        tracer; on join the parent absorbs each worker's record so its
        finished-span store and sinks see the whole fleet.  Span, trace
        and parent ids are remapped into this tracer's id space (the
        worker counted from 1 too), preserving the tree structure.
        ``into_trace`` re-homes every absorbed span onto an existing
        trace in *this* tracer's id space — the serve scheduler passes
        the job's trace id so worker spans correlate with the submit /
        queue / round spans recorded parent-side.  Returns the remapped
        spans, in worker recording order.
        """
        spans = list(spans)
        if not spans:
            return []
        peak = max(max(s.span_id, s.trace_id) for s in spans)
        with self._lock:
            base = next(self._ids)
            self._ids = itertools.count(base + peak + 1)
        absorbed: List[Span] = []
        for span in spans:
            absorbed.append(Span(
                name=span.name,
                span_id=span.span_id + base,
                trace_id=(into_trace if into_trace is not None
                          else span.trace_id + base),
                parent_id=(None if span.parent_id is None
                           else span.parent_id + base),
                depth=span.depth,
                start=span.start,
                duration=span.duration,
                attributes=span.attributes,
            ))
        for span in absorbed:
            self._record(span)
        return absorbed

    # -- plumbing ----------------------------------------------------------

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def inc(self, name: str, value: float = 1) -> None:
        self.metrics.inc(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
        self.metrics.clear()

    def close(self) -> None:
        """Close every sink that supports closing (flushes files), and
        stop tracemalloc if this tracer was the one to start it."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
        if self._mem_started:
            import tracemalloc

            if tracemalloc.is_tracing():
                tracemalloc.stop()
            self._mem_started = False


class NullTracer(Tracer):
    """The default: every operation is a constant-time no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(metrics=NULL_METRICS)
        self._null_context = _NullSpanContext()

    def span(self, name: str, **attributes: object) -> _NullSpanContext:  # type: ignore[override]
        return self._null_context

    def trace_span(self, name: str, trace_id: Optional[int],
                   **attributes: object) -> _NullSpanContext:  # type: ignore[override]
        return self._null_context

    def record_span(self, name: str, duration: float,
                    trace_id: Optional[int] = None,
                    start: float = 0.0,
                    **attributes: object) -> _NullSpan:  # type: ignore[override]
        return self._null_context._span

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def absorb(self, spans: Iterable[Span],
               into_trace: Optional[int] = None) -> List[Span]:
        return list(spans)

    def _record(self, span: Span) -> None:  # pragma: no cover - unreachable
        pass


NULL_TRACER = NullTracer()
