"""Longitudinal run registry: persistent, content-addressed run records.

A single run can be traced, metered and replayed (PRs 1 and 3), but the
moment a sweep ends its coverage, timing and fault census vanish with
the process — nothing observes the system *across* runs.  This module
is that memory: one JSON record per run, append-only, under a store
directory you choose.

A :class:`RunRecord` snapshots everything the longitudinal questions
need:

* the **config fingerprint** (mechanism flags, budgets, fault profile)
  and the **corpus digest** (SHA-256 over the per-app
  :meth:`~repro.apk.package.ApkPackage.digest` values), so two records
  are known-comparable before any number is compared;
* per-app **coverage rows** (the ``sweep_rows`` shape) plus derived
  aggregates (mean activity/fragment rates, API/event/crash totals);
* the **counters and histogram aggregates** of the run's metrics
  registry and the **fault census** of the sweep;
* per-phase **span self-time percentiles** (p50/p90/p99 over each span
  name's self time, via :func:`repro.obs.summary.percentile`) and —
  when the tracer samples memory (``Tracer(memory=True)``) — the peak
  **tracemalloc** growth per phase;
* per-app **discovery statistics** from the flight-recorder timeline
  (final coverage checkpoint, t50/t90 per series) when the event log
  was enabled.

Records are content-addressed: ``run_id`` is a SHA-256 prefix over the
canonical JSON of the measurement payload (``meta`` — timestamps,
backend, worker count — is deliberately outside the hash), so a record
can never be silently edited in place and identical measurements share
an id.  Writes are atomic (temp file + ``os.replace``, the
:class:`~repro.static.cache.StaticCache` discipline), so concurrent
sweeps sharing one store never interleave bytes; a corrupted or
truncated record file is *skipped with a warning*, never fatal.

``RunRegistry.pin`` marks one record as the baseline the regression
gate (:mod:`repro.obs.regress`) compares candidates against; ``gc``
keeps the newest N records but never deletes the pinned baseline.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.flame import build_trees
from repro.obs.summary import percentile
from repro.obs.timeline import coverage_timeline, discovery_stats

#: Bump whenever the record shape changes; records written by another
#: schema version are skipped with a warning instead of mis-parsing.
RECORD_SCHEMA = 1

#: The pin marker inside a registry directory: its content is the
#: run id of the baseline record `repro regress` compares against.
PIN_FILE = "BASELINE"

#: Config fields that make two runs comparable.  Live observers, fault
#: plans and caches are execution vehicles, not semantics, and stay out.
_FINGERPRINT_FIELDS = (
    "enable_reflection", "enable_forced_start", "enable_input_file",
    "enable_click_exploration", "input_strategy", "queue_order",
    "max_events", "max_queue_items", "max_restarts_per_item",
    "fault_profile", "fault_seed", "quarantine_threshold",
)


def default_registry_dir() -> pathlib.Path:
    """``$FRAGDROID_RUNS_DIR`` or ``~/.cache/fragdroid/runs``."""
    env = os.environ.get("FRAGDROID_RUNS_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "fragdroid" / "runs"


# ---------------------------------------------------------------------------
# The record
# ---------------------------------------------------------------------------

@dataclass
class RunRecord:
    """One run's persistent observability snapshot."""

    label: str = "run"
    config: Dict[str, object] = field(default_factory=dict)
    corpus_digest: str = ""
    # Per-app coverage rows, the repro.bench.parallel.sweep_rows shape.
    apps: List[Dict] = field(default_factory=list)
    # Derived numeric aggregates (mean rates, totals); generic keys so
    # non-sweep runs (usage study, ingested benches) fit the same slot.
    coverage: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    # Histogram aggregates (count/total/min/max/mean per name).
    histograms: Dict[str, Dict] = field(default_factory=dict)
    fault_census: Dict[str, int] = field(default_factory=dict)
    # Span name -> {count, self_total_s, self_p50_ms, self_p90_ms,
    # self_p99_ms[, mem_peak_kb]}.
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # App -> flight-recorder discovery stats (final checkpoint + t50/t90).
    timeline: Dict[str, Dict] = field(default_factory=dict)
    # Unhashed context: created timestamp, backend, worker count, ...
    meta: Dict[str, object] = field(default_factory=dict)
    schema: int = RECORD_SCHEMA
    run_id: str = ""

    # -- content addressing ------------------------------------------------

    def payload(self) -> Dict:
        """The hashed measurement payload — everything except the id
        itself and the unhashed ``meta`` context."""
        return {
            "schema": self.schema,
            "label": self.label,
            "config": self.config,
            "corpus_digest": self.corpus_digest,
            "apps": self.apps,
            "coverage": self.coverage,
            "counters": self.counters,
            "histograms": self.histograms,
            "fault_census": self.fault_census,
            "phases": self.phases,
            "timeline": self.timeline,
        }

    def compute_id(self) -> str:
        canonical = json.dumps(self.payload(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> Dict:
        data = self.payload()
        data["run_id"] = self.run_id or self.compute_id()
        data["meta"] = self.meta
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict) -> "RunRecord":
        schema = int(data.get("schema", -1))
        if schema != RECORD_SCHEMA:
            raise ValueError(f"unsupported run-record schema {schema!r} "
                             f"(this build reads {RECORD_SCHEMA})")
        return cls(
            label=str(data.get("label", "run")),
            config=dict(data.get("config") or {}),
            corpus_digest=str(data.get("corpus_digest", "")),
            apps=[dict(r) for r in data.get("apps") or ()],
            coverage=dict(data.get("coverage") or {}),
            counters=dict(data.get("counters") or {}),
            histograms=dict(data.get("histograms") or {}),
            fault_census=dict(data.get("fault_census") or {}),
            phases=dict(data.get("phases") or {}),
            timeline=dict(data.get("timeline") or {}),
            meta=dict(data.get("meta") or {}),
            schema=schema,
            run_id=str(data.get("run_id", "")),
        )

    # -- views -------------------------------------------------------------

    @property
    def created(self) -> float:
        try:
            return float(self.meta.get("created", 0.0))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 0.0

    def total_phase_time(self) -> float:
        """Total self time across every phase, in seconds."""
        return float(sum(stats.get("self_total_s", 0.0)
                         for stats in self.phases.values()))

    def summary_row(self) -> Dict[str, object]:
        """The ``repro runs list`` row."""
        return {
            "run_id": self.run_id or self.compute_id(),
            "label": self.label,
            "created": self.created,
            "apps": int(self.coverage.get("apps_total", len(self.apps))),
            "apps_ok": int(self.coverage.get("apps_ok", len(self.apps))),
            "mean_activity_rate": self.coverage.get("mean_activity_rate"),
            "mean_fragment_rate": self.coverage.get("mean_fragment_rate"),
            "apis": self.coverage.get("apis"),
            "phase_s": round(self.total_phase_time(), 4),
            "faults": sum(self.fault_census.values()),
        }


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------

def config_fingerprint(config) -> Dict[str, object]:
    """The semantic config fields as a comparable, JSON-ready dict.

    Analyst input values are folded to a digest: their content matters
    for comparability, their secrets don't belong in a run record.
    """
    if config is None:
        return {}
    fingerprint: Dict[str, object] = {
        name: getattr(config, name)
        for name in _FINGERPRINT_FIELDS if hasattr(config, name)
    }
    values = getattr(config, "input_values", None)
    if values:
        canonical = json.dumps(sorted(values.items()),
                               separators=(",", ":"))
        fingerprint["input_values_digest"] = hashlib.sha256(
            canonical.encode("utf-8")).hexdigest()[:16]
    return fingerprint


def phase_stats(spans) -> Dict[str, Dict[str, float]]:
    """Per-phase (span-name) self-time stats with p50/p90/p99, plus the
    peak tracemalloc growth when the tracer sampled memory."""
    self_times: Dict[str, List[float]] = {}
    mem_peaks: Dict[str, List[float]] = {}
    for root in build_trees(list(spans)):
        for node in root.walk():
            name = node.span.name
            self_times.setdefault(name, []).append(node.self_time)
            mem = node.span.attributes.get("mem_peak_kb")
            if isinstance(mem, (int, float)) and not isinstance(mem, bool):
                mem_peaks.setdefault(name, []).append(float(mem))
    stats: Dict[str, Dict[str, float]] = {}
    for name, values in self_times.items():
        entry: Dict[str, float] = {
            "count": len(values),
            "self_total_s": round(sum(values), 6),
            "self_p50_ms": round(percentile(values, 0.50) * 1000, 3),
            "self_p90_ms": round(percentile(values, 0.90) * 1000, 3),
            "self_p99_ms": round(percentile(values, 0.99) * 1000, 3),
        }
        if name in mem_peaks:
            entry["mem_peak_kb"] = max(mem_peaks[name])
        stats[name] = entry
    return stats


def coverage_from_rows(rows: Sequence[Dict]) -> Dict[str, float]:
    """Aggregate coverage over per-app sweep rows (ok apps only for
    the visited tallies; failures still count in ``apps_total``)."""
    rows = [dict(r) for r in rows]
    ok = [r for r in rows if r.get("ok", True)]

    def rate(row: Dict, kind: str) -> float:
        total = row.get(f"{kind}_sum", 0) or 0
        return (row.get(f"{kind}_visited", 0) / total) if total else 0.0

    coverage: Dict[str, float] = {
        "apps_total": len(rows),
        "apps_ok": len(ok),
        "activities_visited": sum(r.get("activities_visited", 0)
                                  for r in ok),
        "activities_sum": sum(r.get("activities_sum", 0) for r in ok),
        "fragments_visited": sum(r.get("fragments_visited", 0) for r in ok),
        "fragments_sum": sum(r.get("fragments_sum", 0) for r in ok),
        "apis": sum(r.get("apis", 0) for r in ok),
        "events": sum(r.get("events", 0) for r in ok),
        "crashes": sum(r.get("crashes", 0) for r in ok),
    }
    if ok:
        coverage["mean_activity_rate"] = round(
            sum(rate(r, "activities") for r in ok) / len(ok), 6)
        coverage["mean_fragment_rate"] = round(
            sum(rate(r, "fragments") for r in ok) / len(ok), 6)
    return coverage


def _timeline_stats(event_log) -> Dict[str, Dict]:
    """Per-app discovery statistics out of the flight record."""
    apps = sorted({e.app for e in event_log.events() if e.app})
    out: Dict[str, Dict] = {}
    for app in apps:
        events = event_log.events(app=app)
        points = coverage_timeline(events)
        final = points[-1]
        entry: Dict[str, object] = {
            "checkpoints": len(points) - 1,
            "activities": final.activities,
            "fragments": final.fragments,
            "fivas": final.fivas,
            "apis": final.apis,
        }
        entry.update(discovery_stats(events))
        out[app] = entry
    return out


def capture_run_record(label: str,
                       config=None,
                       apps: Sequence[Dict] = (),
                       fault_census: Optional[Dict[str, int]] = None,
                       coverage: Optional[Dict[str, float]] = None,
                       corpus_digest: str = "",
                       meta: Optional[Dict[str, object]] = None,
                       ) -> RunRecord:
    """Snapshot a finished run into a :class:`RunRecord`.

    ``config`` is duck-typed as a
    :class:`~repro.core.config.FragDroidConfig`: its tracer contributes
    counters, histogram aggregates and per-phase self-time/memory
    stats, its event log the per-app discovery timeline — each only
    when enabled, so an unobserved run still records its coverage.
    ``apps`` are per-app rows in the ``sweep_rows`` shape; ``coverage``
    overrides the aggregates derived from them (for runs without
    per-app rows, e.g. the usage study).
    """
    rows = sorted((dict(r) for r in apps),
                  key=lambda r: str(r.get("package", "")))
    record = RunRecord(
        label=label,
        config=config_fingerprint(config),
        corpus_digest=corpus_digest,
        apps=rows,
        coverage=(dict(coverage) if coverage is not None
                  else coverage_from_rows(rows)),
        fault_census=dict(fault_census or {}),
        meta=dict(meta or {}),
    )
    if config is not None:
        tracer = getattr(config, "tracer", None)
        if tracer is not None and getattr(tracer, "enabled", False):
            record.counters = tracer.metrics.counters()
            record.histograms = tracer.metrics.snapshot()["histograms"]
            record.phases = phase_stats(tracer.finished_spans())
        event_log = getattr(config, "event_log", None)
        if event_log is not None and getattr(event_log, "enabled", False):
            record.timeline = _timeline_stats(event_log)
    record.meta.setdefault("created", round(time.time(), 3))
    record.run_id = record.compute_id()
    return record


def corpus_digest_of(digests: Dict[str, Optional[str]]) -> str:
    """One digest over a corpus: SHA-256 of the sorted
    ``package:apk-digest`` lines (apps whose digest is unknown — e.g.
    failed before the build finished — contribute their package alone,
    so the corpus identity still reflects their presence)."""
    lines = sorted(
        f"{package}:{digest or ''}" for package, digest in digests.items()
    )
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

def load_record(path) -> RunRecord:
    """Read one record file (e.g. a committed CI baseline)."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return RunRecord.from_dict(data)


class RunRegistry:
    """Append-only store of run records under one directory.

    One ``<run_id>.json`` per record, written atomically; a ``BASELINE``
    marker file pins the regression baseline.  Corrupt or truncated
    record files are skipped with a warning (collected on
    ``self.skipped``), mirroring the static cache's corrupt-entry
    semantics — a damaged store degrades, it never aborts.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = (pathlib.Path(directory)
                          if directory is not None
                          else default_registry_dir())
        #: (file name, reason) of records skipped by the last list().
        self.skipped: List[Tuple[str, str]] = []

    # -- writing -----------------------------------------------------------

    def record(self, record: RunRecord) -> str:
        """Persist a record; returns its (content-addressed) run id."""
        if not record.run_id:
            record.run_id = record.compute_id()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(self.path_of(record.run_id), record.to_json())
        return record.run_id

    def _atomic_write(self, path: pathlib.Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                   prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- reading -----------------------------------------------------------

    def path_of(self, run_id: str) -> pathlib.Path:
        return self.directory / f"{run_id}.json"

    def ids(self) -> List[str]:
        if not self.directory.is_dir():
            return []
        return sorted(path.stem for path in self.directory.glob("*.json")
                      if not path.name.startswith("."))

    def load(self, run_id: str) -> RunRecord:
        """A record by id (unique prefixes accepted)."""
        path = self.path_of(run_id)
        if not path.exists():
            matches = [i for i in self.ids() if i.startswith(run_id)]
            if len(matches) == 1:
                path = self.path_of(matches[0])
            elif len(matches) > 1:
                raise KeyError(
                    f"run id prefix {run_id!r} is ambiguous: "
                    f"{', '.join(matches)}"
                )
            else:
                raise KeyError(f"no run record {run_id!r} under "
                               f"{self.directory}")
        return RunRecord.from_dict(
            json.loads(path.read_text(encoding="utf-8")))

    def list(self) -> List[RunRecord]:
        """Every readable record, oldest first (created, then id).

        Unreadable files — truncated writes, foreign schemas, plain
        corruption — are skipped with a warning and tallied on
        ``self.skipped``.
        """
        self.skipped = []
        records: List[RunRecord] = []
        if not self.directory.is_dir():
            return records
        for path in sorted(self.directory.glob("*.json")):
            if path.name.startswith("."):
                continue  # in-flight temp files
            try:
                records.append(RunRecord.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                reason = str(exc)
                self.skipped.append((path.name, reason))
                warnings.warn(
                    f"skipping unreadable run record {path.name}: {reason}",
                    RuntimeWarning, stacklevel=2)
        records.sort(key=lambda r: (r.created, r.run_id))
        return records

    def latest(self, n: int) -> List[RunRecord]:
        """The newest ``n`` records, oldest of them first."""
        records = self.list()
        return records[-max(0, n):] if n else []

    # -- baseline pinning --------------------------------------------------

    def pin(self, run_id: str) -> str:
        """Mark a record as the regression baseline; returns its full
        id (prefixes accepted, the record must exist)."""
        record = self.load(run_id)
        full_id = record.run_id or record.compute_id()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(self.directory / PIN_FILE, full_id + "\n")
        # _atomic_write leaves a ".json" suffix on the temp only; the
        # final name carries none, so ids() never lists the pin.
        return full_id

    def pinned(self) -> Optional[str]:
        try:
            text = (self.directory / PIN_FILE).read_text(
                encoding="utf-8").strip()
            return text or None
        except OSError:
            return None

    # -- maintenance -------------------------------------------------------

    def gc(self, keep: int = 10) -> List[str]:
        """Delete all but the newest ``keep`` records; the pinned
        baseline is never deleted regardless of age.  Returns the
        removed run ids."""
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep!r}")
        records = self.list()
        pinned = self.pinned()
        keepers = {r.run_id for r in (records[-keep:] if keep else [])}
        if pinned:
            keepers.add(pinned)
        removed: List[str] = []
        for record in records:
            if record.run_id in keepers:
                continue
            try:
                self.path_of(record.run_id).unlink()
            except OSError:
                continue
            removed.append(record.run_id)
        return removed

    # -- bench ingestion ---------------------------------------------------

    def ingest_bench(self, path) -> RunRecord:
        """Turn one ``benchmarks/results/*.json`` file (the
        ``write_result_json`` schema) into a recorded run.

        Numeric leaves are flattened to dotted keys in ``coverage``, so
        bench trajectories diff with the same machinery as sweeps.
        """
        record = record_from_bench(path)
        self.record(record)
        return record


def record_from_bench(path) -> RunRecord:
    """A :class:`RunRecord` view of one bench-result JSON file, without
    storing it — the same flattening :meth:`RunRegistry.ingest_bench`
    applies, so a committed bench baseline and an ingested candidate
    always carry comparable coverage keys."""
    source = pathlib.Path(path)
    payload = json.loads(source.read_text(encoding="utf-8"))
    name = str(payload.get("bench", source.stem))
    data = payload.get("data")
    if not isinstance(data, dict):
        raise ValueError(f"{source}: not a bench result file "
                         "(no 'data' object)")
    record = RunRecord(
        label=f"bench:{name}",
        coverage=_flatten_numeric(data),
        meta={
            "source": source.name,
            "bench_schema": payload.get("schema"),
            "created": round(source.stat().st_mtime, 3),
        },
    )
    record.run_id = record.compute_id()
    return record


def _flatten_numeric(data: Dict, prefix: str = "") -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key in sorted(data):
        value = data[key]
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(_flatten_numeric(value, name))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[name] = float(value)
    return out
