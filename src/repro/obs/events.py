"""The flight recorder: a typed, sequenced event log of one run.

Spans (``repro.obs.tracer``) answer *where the time went*; the event
log answers *what happened, in what order* — every state discovery,
widget click, Case-1/2/3 decision, reflection switch, forced start,
generated input, injected fault, retry, quarantine and crash recovery,
stamped with the device step at which it happened.  It is the record
the timeline analytics (``repro.obs.timeline``) and the run dashboard
(``repro.obs.dashboard``) replay offline.

The contract mirrors the tracer's: the default everywhere is
:data:`NULL_EVENT_LOG`, whose ``emit`` is a constant-time no-op, so the
instrumented call sites cost nothing and untraced output stays
byte-identical.  A real :class:`EventLog` keeps every event in memory
(``events()``) and forwards each one to its sinks — attach a
:class:`~repro.obs.sinks.JsonlSink` and the run streams to disk as one
JSON object per line, crash-durable because the sink flushes per line.
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter
from typing import Dict, Iterable, List, Optional

# -- typed event kinds -------------------------------------------------------
#
# Every emit names one of these; consumers switch on them.

RUN_START = "run.start"              # exploration begins (app)
RUN_END = "run.end"                  # exploration ends (termination)
STATE_DISCOVERED = "state.discovered"  # first visit (component, name)
WIDGET_CLICKED = "widget.clicked"    # Case 3 tap (widget)
CASE_DECISION = "case.decision"      # Section VI-A decision (case=1|2|3)
REFLECTION_SWITCH = "reflection.switch"  # reflection item succeeded
FORCED_START = "forced.start"        # Section VI-C empty-Intent start
INPUT_GENERATED = "input.generated"  # an EditText was filled (widget, value)
TRANSITION = "transition"            # interface change (src, dst, widget)
FAULT_INJECTED = "fault.injected"    # repro.faults hit the run (fault, op)
RETRY = "retry"                      # a retry policy re-attempt (error)
QUARANTINE = "quarantine"            # widget circuit breaker tripped
CRASH_RECOVERY = "crash.recovery"    # requeue / replay / abandon after a crash
API_OBSERVED = "api.observed"        # a sensitive API fired (api, component)

# Service-mode job lifecycle (repro.serve): every event carries a
# ``job`` attribute, so /jobs/<id>/logs slices one job's stream out of
# the shared fleet log.
JOB_STATE = "job.state"              # lifecycle transition (job, state)
JOB_APP_DONE = "job.app.done"        # one app's outcome journaled (job, ok)
JOB_WORKER_DIED = "job.worker.died"  # a sweep worker died (job, strikes)
JOB_READMITTED = "job.readmitted"    # dead-chunk app re-admitted (job)
JOB_ROUND = "job.round"              # one scheduler round swept (job, round)

# Coverage attribution (repro.obs.attribution): emitted by the post-hoc
# explainer, never by the explorer itself, so default runs stay
# byte-identical.
ATTRIBUTION_COMPUTED = "attribution.computed"  # one app explained (causes)
ATTRIBUTION_MISS = "attribution.miss"          # one unreached target (cause)

# The canonical kind registry.  This tuple is THE list — docs and tests
# import it rather than restating it, so adding a kind in one place
# cannot drift (grouped: exploration, service-mode, attribution).
EXPLORATION_EVENT_KINDS = (
    RUN_START, RUN_END, STATE_DISCOVERED, WIDGET_CLICKED, CASE_DECISION,
    REFLECTION_SWITCH, FORCED_START, INPUT_GENERATED, TRANSITION,
    FAULT_INJECTED, RETRY, QUARANTINE, CRASH_RECOVERY, API_OBSERVED,
)
SERVE_EVENT_KINDS = (
    JOB_STATE, JOB_APP_DONE, JOB_WORKER_DIED, JOB_READMITTED, JOB_ROUND,
)
ATTRIBUTION_EVENT_KINDS = (
    ATTRIBUTION_COMPUTED, ATTRIBUTION_MISS,
)
ALL_EVENT_KINDS = (
    EXPLORATION_EVENT_KINDS + SERVE_EVENT_KINDS + ATTRIBUTION_EVENT_KINDS
)

EVENT_KINDS = frozenset(ALL_EVENT_KINDS)


class Event:
    """One line of the flight record."""

    __slots__ = ("seq", "kind", "step", "app", "wall", "attributes")

    def __init__(self, seq: int, kind: str, step: int = 0, app: str = "",
                 wall: float = 0.0,
                 attributes: Optional[Dict[str, object]] = None) -> None:
        self.seq = seq
        self.kind = kind
        self.step = step
        self.app = app
        self.wall = wall
        self.attributes = dict(attributes) if attributes else {}

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "step": self.step,
            "app": self.app,
            "wall": self.wall,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Event":
        return cls(
            seq=int(data["seq"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            step=int(data.get("step", 0)),  # type: ignore[arg-type]
            app=str(data.get("app", "")),
            wall=float(data.get("wall", 0.0)),  # type: ignore[arg-type]
            attributes=dict(data.get("attributes") or {}),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event({self.seq}, {self.kind!r}, step={self.step}, "
                f"app={self.app!r}, attrs={self.attributes})")


class EventLog:
    """Sequenced, thread-safe event store plus sink fan-out.

    One log can serve a whole parallel sweep: the sequence numbers are
    global (so the JSONL stream totally orders the fleet) and each
    event carries its ``app``, so ``events(app=...)`` slices one app's
    record back out regardless of worker interleaving.
    """

    enabled = True

    def __init__(self, sinks: Iterable = ()) -> None:
        self.sinks = list(sinks)
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._events: List[Event] = []
        self._epoch = perf_counter()

    # -- recording ---------------------------------------------------------

    def emit(self, kind: str, step: int = 0, app: str = "",
             **attributes: object) -> Event:
        event = Event(
            seq=next(self._seq),
            kind=kind,
            step=step,
            app=app,
            wall=perf_counter() - self._epoch,
            attributes=attributes,
        )
        with self._lock:
            self._events.append(event)
        for sink in self.sinks:
            sink.emit(event)
        return event

    def absorb(self, events: Iterable[Event]) -> List[Event]:
        """Fold events recorded by another log into this one.

        Process-pool sweep workers record into their own logs (the live
        log cannot cross the process boundary); on join the parent
        absorbs each worker's record.  Sequence numbers are re-assigned
        from this log's global counter (keeping the fleet stream
        gap-free); kind, step, app, wall offset and attributes are
        preserved.  Returns the re-sequenced events, in order.
        """
        absorbed: List[Event] = []
        for event in events:
            replayed = Event(
                seq=next(self._seq),
                kind=event.kind,
                step=event.step,
                app=event.app,
                wall=event.wall,
                attributes=event.attributes,
            )
            with self._lock:
                self._events.append(replayed)
            for sink in self.sinks:
                sink.emit(replayed)
            absorbed.append(replayed)
        return absorbed

    # -- reading -----------------------------------------------------------

    def events(self, app: Optional[str] = None) -> List[Event]:
        with self._lock:
            if app is None:
                return list(self._events)
            return [e for e in self._events if e.app == app]

    def census(self) -> Dict[str, int]:
        """Event counts by kind."""
        census: Dict[str, int] = {}
        for event in self.events():
            census[event.kind] = census.get(event.kind, 0) + 1
        return census

    # -- plumbing ----------------------------------------------------------

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def close(self) -> None:
        """Close every sink that supports closing (flushes files)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class NullEventLog(EventLog):
    """The default: ``emit`` discards everything at constant cost."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_event = Event(seq=0, kind="")

    def emit(self, kind: str, step: int = 0, app: str = "",
             **attributes: object) -> Event:
        return self._null_event

    def absorb(self, events: Iterable[Event]) -> List[Event]:
        return list(events)


NULL_EVENT_LOG = NullEventLog()


def event_census(events: Iterable[Event]) -> Dict[str, int]:
    """Event counts by kind over any event sequence."""
    census: Dict[str, int] = {}
    for event in events:
        census[event.kind] = census.get(event.kind, 0) + 1
    return census
