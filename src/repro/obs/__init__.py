"""Observability: tracing, metrics and the flight recorder.

The subsystem's recording half travels through ``FragDroidConfig``:

* :class:`Tracer` — nestable wall-clock spans
  (``with tracer.span("static.extract", app=pkg):``) recording
  ``perf_counter`` timing, attributes, and parent/child structure;
* :class:`Metrics` — a registry of named counters and histograms
  (events injected, clicks, reflection switches, forced starts, queue
  depth, APIs observed);
* :class:`EventLog` — the flight recorder: a typed, sequenced record of
  what happened (state discoveries, clicks, Case-1/2/3 decisions,
  reflection switches, forced starts, generated inputs, injected
  faults, retries, quarantines, crash recoveries);
* sinks — pluggable consumers of finished spans and events: in-memory
  (tests) and JSON-lines files (one JSON object per line, flushed per
  line so a crashed run keeps its record).

The analysis half replays a recorded run offline:

* ``repro.obs.summary`` — per-span aggregate tables;
* ``repro.obs.timeline`` — coverage-over-time curves, stall/plateau
  detection, time-to-50%/90% discovery statistics;
* ``repro.obs.flame`` — span-tree reconstruction, self-time, critical
  path, collapsed-stack flamegraph output;
* ``repro.obs.export`` — Prometheus text exposition and the run
  manifest JSON;
* ``repro.obs.dashboard`` — the self-contained HTML run dashboard;
* ``repro.obs.registry`` / ``repro.obs.diff`` / ``repro.obs.regress``
  — the longitudinal layer: persistent content-addressed run records,
  structured run-to-run diffs, and the deterministic regression gate
  behind ``repro regress``;
* ``repro.obs.attribution`` — the coverage attribution engine: a typed
  cause, witness path and nearest visited ancestor for every unreached
  activity, fragment and sensitive API (``repro explain``).

Everything is opt-in: the default ``FragDroidConfig.tracer`` /
``event_log`` are the shared :data:`NULL_TRACER` /
:data:`NULL_EVENT_LOG`, whose ``span()`` / ``inc()`` / ``emit()`` are
constant-time no-ops, so uninstrumented behaviour and benchmark
numbers are unchanged (``benchmarks/bench_obs_overhead.py`` holds both
no-op paths under 5% of a Table-I sweep).
"""

from repro.obs.attribution import (
    CAUSES,
    CoverageExplanation,
    ExplanationStore,
    MissTarget,
    classify_app,
    classify_result,
    explain_outcomes,
    explain_result,
    explain_run_dir,
    fleet_cause_census,
    newly_unreached,
    render_explanation,
    top_blocking_widgets,
)
from repro.obs.dashboard import (
    RunData,
    load_explanations,
    load_fleet,
    load_run,
    queue_depth_series,
    render_attribution_section,
    render_dashboard,
    render_dashboard_dir,
    render_fleet_table,
    render_service_dashboard,
    render_service_section,
    render_trend_section,
    service_rows,
)
from repro.obs.diff import AppDelta, Delta, RecordDiff, diff_records
from repro.obs.events import (
    ALL_EVENT_KINDS,
    ATTRIBUTION_EVENT_KINDS,
    EVENT_KINDS,
    EXPLORATION_EVENT_KINDS,
    NULL_EVENT_LOG,
    SERVE_EVENT_KINDS,
    Event,
    EventLog,
    NullEventLog,
    event_census,
)
from repro.obs.export import prometheus_text, run_manifest
from repro.obs.flame import (
    FlameNode,
    build_trees,
    collapsed_stacks,
    critical_path,
    self_times,
)
from repro.obs.metrics import (
    NULL_METRICS,
    HistogramStats,
    Metrics,
    NullMetrics,
    percentile,
)
from repro.obs.regress import (
    RegressionPolicy,
    RegressionReport,
    Violation,
    check_regression,
)
from repro.obs.registry import (
    RunRecord,
    RunRegistry,
    capture_run_record,
    corpus_digest_of,
    default_registry_dir,
    load_record,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    SpanSink,
    read_events,
    read_spans,
)
from repro.obs.summary import (
    SpanStat,
    aggregate_spans,
    render_summary,
    timing_rows,
    top_slowest,
)
from repro.obs.timeline import (
    CoveragePoint,
    Stall,
    coverage_curve_from_trace,
    coverage_timeline,
    discovery_stats,
    stalls,
    time_to_fraction,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "ALL_EVENT_KINDS",
    "ATTRIBUTION_EVENT_KINDS",
    "AppDelta",
    "CAUSES",
    "CoverageExplanation",
    "CoveragePoint",
    "Delta",
    "EVENT_KINDS",
    "EXPLORATION_EVENT_KINDS",
    "Event",
    "EventLog",
    "ExplanationStore",
    "FlameNode",
    "HistogramStats",
    "InMemorySink",
    "JsonlSink",
    "Metrics",
    "MissTarget",
    "NULL_EVENT_LOG",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullEventLog",
    "NullMetrics",
    "NullTracer",
    "RecordDiff",
    "RegressionPolicy",
    "RegressionReport",
    "RunData",
    "RunRecord",
    "RunRegistry",
    "SERVE_EVENT_KINDS",
    "Span",
    "SpanSink",
    "SpanStat",
    "Stall",
    "Tracer",
    "Violation",
    "aggregate_spans",
    "build_trees",
    "capture_run_record",
    "check_regression",
    "classify_app",
    "classify_result",
    "collapsed_stacks",
    "corpus_digest_of",
    "coverage_curve_from_trace",
    "coverage_timeline",
    "critical_path",
    "default_registry_dir",
    "diff_records",
    "discovery_stats",
    "event_census",
    "explain_outcomes",
    "explain_result",
    "explain_run_dir",
    "fleet_cause_census",
    "load_explanations",
    "load_fleet",
    "load_record",
    "load_run",
    "newly_unreached",
    "percentile",
    "prometheus_text",
    "queue_depth_series",
    "read_events",
    "read_spans",
    "render_attribution_section",
    "render_dashboard",
    "render_dashboard_dir",
    "render_explanation",
    "render_fleet_table",
    "render_service_dashboard",
    "render_service_section",
    "render_summary",
    "render_trend_section",
    "run_manifest",
    "self_times",
    "service_rows",
    "stalls",
    "time_to_fraction",
    "timing_rows",
    "top_blocking_widgets",
    "top_slowest",
]
