"""Observability: tracing and metrics for the whole pipeline.

The subsystem has three parts, wired together by a single
:class:`Tracer` object that travels through ``FragDroidConfig``:

* :class:`Tracer` — nestable wall-clock spans
  (``with tracer.span("static.extract", app=pkg):``) recording
  ``perf_counter`` timing, attributes, and parent/child structure;
* :class:`Metrics` — a registry of named counters and histograms
  (events injected, clicks, reflection switches, forced starts, queue
  depth, APIs observed);
* sinks — pluggable consumers of finished spans: in-memory (tests),
  JSON-lines files (offline analysis via ``repro trace-summary``), and
  the human-readable summary table rendered into the reports.

Everything is opt-in: the default ``FragDroidConfig.tracer`` is the
shared :data:`NULL_TRACER`, whose ``span()`` / ``inc()`` / ``observe()``
are constant-time no-ops, so uninstrumented behaviour and benchmark
numbers are unchanged (``benchmarks/bench_obs_overhead.py`` holds the
no-op path under 5% of a Table-I sweep).
"""

from repro.obs.metrics import NULL_METRICS, Metrics, NullMetrics
from repro.obs.sinks import InMemorySink, JsonlSink, SpanSink, read_spans
from repro.obs.summary import (
    SpanStat,
    aggregate_spans,
    render_summary,
    timing_rows,
    top_slowest,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "InMemorySink",
    "JsonlSink",
    "Metrics",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "SpanSink",
    "SpanStat",
    "Tracer",
    "aggregate_spans",
    "read_spans",
    "render_summary",
    "timing_rows",
    "top_slowest",
]
