"""Self-contained HTML dashboard for a recorded run (or a fleet).

``repro dashboard <run dir> -o dash.html`` renders one file an analyst
can open anywhere: stat tiles for the headline coverage numbers,
inline-SVG coverage-over-time sparklines (one single-series card per
curve: activities, fragments, FIVAs, sensitive APIs), the phase-timing
bars and critical path from the span record, the stall table, the
degradation panel of a faulted run, and — when pointed at a directory
of per-app run directories (``repro batch`` output or
``bench.parallel`` sweep aggregation) — a per-app fleet table.

No scripts, no external assets: charts are static inline SVG with a
table fallback (`<details>`) for every curve, colors are CSS custom
properties with a dark scheme under ``prefers-color-scheme``, and all
marks follow the house chart specs (2px lines, step curves for the
cumulative discovery counts, single-hue magnitude bars with rounded
data ends, text in ink tokens — never in series color).
"""

from __future__ import annotations

import html
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.events import Event
from repro.obs.flame import critical_path
from repro.obs.sinks import read_events, read_spans
from repro.obs.summary import aggregate_spans
from repro.obs.timeline import (
    CoveragePoint,
    Stall,
    coverage_timeline,
    discovery_stats,
    stalls,
)
from repro.obs.tracer import Span

PathLike = Union[str, pathlib.Path]


# ---------------------------------------------------------------------------
# Run loading
# ---------------------------------------------------------------------------

@dataclass
class RunData:
    """Everything the dashboard knows about one recorded run."""

    path: pathlib.Path
    report: Dict
    events: List[Event] = field(default_factory=list)
    spans: List[Span] = field(default_factory=list)
    manifest: Optional[Dict] = None

    @property
    def package(self) -> str:
        return str(self.report.get("package", self.path.name))


def load_run(directory: PathLike) -> RunData:
    """Load one run directory (``explore --save`` layout).

    ``report.json`` is required; ``events.jsonl``, ``spans.jsonl`` and
    ``manifest.json`` are picked up when present.
    """
    base = pathlib.Path(directory)
    report_path = base / "report.json"
    if not report_path.exists():
        raise FileNotFoundError(
            f"{base}: not a run directory (no report.json)"
        )
    report = json.loads(report_path.read_text(encoding="utf-8"))
    events: List[Event] = []
    spans: List[Span] = []
    manifest: Optional[Dict] = None
    if (base / "events.jsonl").exists():
        events = read_events(base / "events.jsonl")
    if (base / "spans.jsonl").exists():
        spans = read_spans(base / "spans.jsonl")
    if (base / "manifest.json").exists():
        manifest = json.loads(
            (base / "manifest.json").read_text(encoding="utf-8")
        )
    return RunData(path=base, report=report, events=events, spans=spans,
                   manifest=manifest)


def load_fleet(directory: PathLike) -> List[RunData]:
    """Every run directory directly under ``directory``, sorted by
    package (the ``repro batch`` output layout)."""
    base = pathlib.Path(directory)
    runs = [load_run(child) for child in sorted(base.iterdir())
            if child.is_dir() and (child / "report.json").exists()]
    return sorted(runs, key=lambda run: run.package)


# ---------------------------------------------------------------------------
# Chart chrome (reference palette; swap hexes to rebrand)
# ---------------------------------------------------------------------------

_STYLE = """
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
  --series-3: #1baf7a; --series-4: #eda100;
  --bar: #2a78d6;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5; --series-2: #d95926;
    --series-3: #199e70; --series-4: #c98500;
    --bar: #3987e5;
  }
}
* { box-sizing: border-box; }
body { font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
       margin: 0; background: var(--page); color: var(--ink);
       line-height: 1.45; }
main { max-width: 76rem; margin: 0 auto; padding: 1.5rem; }
h1 { font-size: 1.35rem; margin: 0 0 0.25rem; }
h2 { font-size: 1.0rem; margin: 2rem 0 0.75rem; }
.sub { color: var(--ink-2); margin: 0 0 1.25rem; font-size: 0.9rem; }
.tiles { display: grid; gap: 0.75rem;
         grid-template-columns: repeat(auto-fill, minmax(10.5rem, 1fr)); }
.tile { background: var(--surface); border: 1px solid var(--border);
        border-radius: 0.5rem; padding: 0.7rem 0.9rem; }
.tile .label { font-size: 0.78rem; color: var(--ink-2); }
.tile .value { font-size: 1.6rem; font-weight: 600; }
.tile .detail { font-size: 0.78rem; color: var(--muted); }
.cards { display: grid; gap: 0.75rem;
         grid-template-columns: repeat(auto-fill, minmax(16rem, 1fr)); }
.card { background: var(--surface); border: 1px solid var(--border);
        border-radius: 0.5rem; padding: 0.7rem 0.9rem; }
.card .label { font-size: 0.82rem; color: var(--ink-2);
               margin-bottom: 0.35rem; display: flex;
               align-items: center; gap: 0.4rem; }
.card .label .final { margin-left: auto; color: var(--ink);
                      font-weight: 600; }
.key-dot { width: 8px; height: 8px; border-radius: 50%;
           display: inline-block; }
svg text { font-family: inherit; }
table { border-collapse: collapse; background: var(--surface);
        font-size: 0.85rem; width: 100%; }
th, td { border: 1px solid var(--border); padding: 0.3rem 0.6rem;
         text-align: left; }
td.num, th.num { text-align: right;
                 font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; background: var(--page); }
details { margin: 0.5rem 0 1rem; }
summary { cursor: pointer; color: var(--ink-2); font-size: 0.85rem; }
.bars .row { display: grid;
             grid-template-columns: 15rem 1fr; gap: 0.6rem;
             align-items: center; margin: 0.3rem 0; }
.bars .name { font-size: 0.82rem; color: var(--ink-2);
              overflow: hidden; text-overflow: ellipsis;
              white-space: nowrap; }
.badge { display: inline-block; padding: 0 0.45rem; border-radius: 0.6rem;
         font-size: 0.78rem; border: 1px solid var(--border); }
.path { font-size: 0.85rem; color: var(--ink-2); }
.path code { color: var(--ink); background: var(--page);
             padding: 0 0.25rem; border-radius: 0.2rem; }
.empty { color: var(--muted); font-size: 0.85rem; }
""".strip()

_SERIES = (
    ("activities", "Activities discovered", "--series-1"),
    ("fragments", "Fragments discovered", "--series-2"),
    ("fivas", "FIVAs discovered", "--series-3"),
    ("apis", "Sensitive APIs observed", "--series-4"),
)


def _esc(value: object) -> str:
    return html.escape(str(value))


def _table(headers: Sequence[Tuple[str, bool]],
           rows: Sequence[Sequence[object]]) -> str:
    parts = ["<table><tr>"]
    parts.extend(
        f"<th{' class=num' if num else ''}>{_esc(label)}</th>"
        for label, num in headers
    )
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for (label, num), cell in zip(headers, row):
            parts.append(f"<td{' class=num' if num else ''}>{_esc(cell)}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _tile(label: str, value: object, detail: str = "") -> str:
    detail_html = f'<div class="detail">{_esc(detail)}</div>' if detail else ""
    return (f'<div class="tile"><div class="label">{_esc(label)}</div>'
            f'<div class="value">{_esc(value)}</div>{detail_html}</div>')


# ---------------------------------------------------------------------------
# Inline-SVG marks
# ---------------------------------------------------------------------------

def _sparkline(points: Sequence[CoveragePoint], series: str,
               color_var: str, total: Optional[int],
               width: int = 280, height: int = 64) -> str:
    """A single-series cumulative step curve: 2px line, 10% area wash,
    8px end marker with a 2px surface ring, hairline baseline."""
    values = [(p.step, getattr(p, series)) for p in points]
    max_step = max((step for step, _ in values), default=0) or 1
    max_value = max(total or 0, max(v for _, v in values), 1)
    pad = 6

    def x(step: int) -> float:
        return pad + (width - 2 * pad) * step / max_step

    def y(value: int) -> float:
        return height - pad - (height - 2 * pad) * value / max_value

    # Cumulative counts are step functions: hold each value until the
    # next discovery (step-after interpolation).
    coords: List[str] = []
    previous_y = y(values[0][1])
    for step, value in values:
        coords.append(f"{x(step):.1f},{previous_y:.1f}")
        previous_y = y(value)
        coords.append(f"{x(step):.1f},{previous_y:.1f}")
    coords.append(f"{x(max_step):.1f},{previous_y:.1f}")
    line = " ".join(coords)
    base = height - pad
    area = f"{pad:.1f},{base:.1f} {line} {x(max_step):.1f},{base:.1f}"
    end_x, end_y = x(values[-1][0]), y(values[-1][1])
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" aria-label="{_esc(series)} over time">'
        f'<line x1="{pad}" y1="{base}" x2="{width - pad}" y2="{base}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
        f'<polygon points="{area}" fill="var({color_var})" opacity="0.1"/>'
        f'<polyline points="{line}" fill="none" stroke="var({color_var})" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{end_x:.1f}" cy="{end_y:.1f}" r="4" '
        f'fill="var({color_var})" stroke="var(--surface)" stroke-width="2"/>'
        f"</svg>"
    )


def _coverage_cards(points: Sequence[CoveragePoint],
                    totals: Dict[str, Optional[int]]) -> str:
    cards = []
    for series, label, color_var in _SERIES:
        final = getattr(points[-1], series)
        total = totals.get(series)
        final_text = f"{final} / {total}" if total else f"{final}"
        cards.append(
            '<div class="card"><div class="label">'
            f'<span class="key-dot" style="background: var({color_var})">'
            "</span>"
            f"{_esc(label)}"
            f'<span class="final">{_esc(final_text)}</span></div>'
            + _sparkline(points, series, color_var, total)
            + "</div>"
        )
    checkpoint_rows = [
        [p.step, p.activities, p.fragments, p.fivas, p.apis] for p in points
    ]
    table = _table(
        [("Step", True), ("Activities", True), ("Fragments", True),
         ("FIVAs", True), ("APIs", True)],
        checkpoint_rows,
    )
    return (
        f'<div class="cards">{"".join(cards)}</div>'
        f"<details><summary>Coverage checkpoints "
        f"({len(points)} points)</summary>{table}</details>"
    )


def _phase_bars(spans: Sequence[Span], top: int = 10) -> str:
    """Horizontal magnitude bars: one hue, ≤24px thick, 4px rounded
    data end (square at the baseline), value at the tip in ink."""
    stats = aggregate_spans(spans)[:top]
    if not stats:
        return '<p class="empty">no spans recorded</p>'
    max_total = max(stat.total for stat in stats) or 1.0
    rows = []
    for stat in stats:
        frac = stat.total / max_total
        bar_w = max(1.0, 300.0 * frac)
        radius = min(4.0, bar_w)
        bar_path = (
            f"M0,1 h{bar_w - radius:.1f} "
            f"a{radius:.0f},{radius:.0f} 0 0 1 {radius:.0f},{radius:.0f} "
            f"v{16 - 2 * radius:.0f} "
            f"a{radius:.0f},{radius:.0f} 0 0 1 -{radius:.0f},{radius:.0f} "
            f"h-{bar_w - radius:.1f} z"
        )
        label_x = bar_w + 6
        rows.append(
            '<div class="row">'
            f'<span class="name" title="{_esc(stat.name)}">'
            f"{_esc(stat.name)} &times;{stat.count}</span>"
            f'<svg viewBox="0 0 380 18" width="100%" height="18" '
            f'preserveAspectRatio="xMinYMid meet">'
            f'<path d="{bar_path}" fill="var(--bar)"/>'
            f'<text x="{label_x:.1f}" y="13" font-size="11" '
            f'fill="var(--ink-2)">{stat.total:.3f} s</text>'
            "</svg></div>"
        )
    return f'<div class="bars">{"".join(rows)}</div>'


def _trend_sparkline(values: Sequence[float], color_var: str,
                     width: int = 280, height: int = 64) -> str:
    """A run-over-run line: one point per registry record, oldest
    left.  Same chrome as the coverage curves (2px line, 10% wash,
    ringed end marker), but linear interpolation — these are
    independent samples, not a cumulative count."""
    pad = 6
    max_value = max(max(values), 0) or 1
    span_x = max(len(values) - 1, 1)

    def x(index: int) -> float:
        return pad + (width - 2 * pad) * index / span_x

    def y(value: float) -> float:
        return height - pad - (height - 2 * pad) * max(value, 0) / max_value

    line = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(values))
    base = height - pad
    area = f"{pad:.1f},{base:.1f} {line} {x(len(values) - 1):.1f},{base:.1f}"
    end_x, end_y = x(len(values) - 1), y(values[-1])
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" aria-label="trend across runs">'
        f'<line x1="{pad}" y1="{base}" x2="{width - pad}" y2="{base}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
        f'<polygon points="{area}" fill="var({color_var})" opacity="0.1"/>'
        f'<polyline points="{line}" fill="none" stroke="var({color_var})" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{end_x:.1f}" cy="{end_y:.1f}" r="4" '
        f'fill="var({color_var})" stroke="var(--surface)" stroke-width="2"/>'
        f"</svg>"
    )


#: Trend series: (label, value-extractor key into coverage, color).
_TREND_SERIES = (
    ("Mean activity rate", "mean_activity_rate", "--series-1"),
    ("Mean fragment rate", "mean_fragment_rate", "--series-2"),
    ("Sensitive APIs", "apis", "--series-4"),
)


def render_trend_section(records: Sequence) -> str:
    """The longitudinal trend cards: one sparkline per coverage series
    plus total phase time, across registry records (oldest first).

    ``records`` are :class:`repro.obs.registry.RunRecord` objects (duck
    typed: ``coverage``, ``total_phase_time()``, ``run_id``, ``label``,
    ``created``).
    """
    records = list(records)
    if len(records) < 2:
        return ("<h2>Run trend</h2>"
                '<p class="empty">fewer than two registry records — '
                "record more runs to see trends</p>")
    cards = []
    for label, key, color_var in _TREND_SERIES:
        values = [float(r.coverage.get(key, 0) or 0) for r in records]
        if not any(values):
            continue
        cards.append(
            '<div class="card"><div class="label">'
            f'<span class="key-dot" style="background: var({color_var})">'
            "</span>"
            f"{_esc(label)}"
            f'<span class="final">{values[-1]:g}</span></div>'
            + _trend_sparkline(values, color_var)
            + "</div>"
        )
    times = [r.total_phase_time() for r in records]
    if any(times):
        cards.append(
            '<div class="card"><div class="label">'
            '<span class="key-dot" style="background: var(--series-3)">'
            "</span>"
            "Total phase self time (s)"
            f'<span class="final">{times[-1]:.3f}</span></div>'
            + _trend_sparkline(times, "--series-3")
            + "</div>"
        )
    run_rows = [
        [r.run_id, r.label,
         f"{float(r.coverage.get('mean_activity_rate', 0) or 0):.3f}",
         f"{float(r.coverage.get('mean_fragment_rate', 0) or 0):.3f}",
         int(r.coverage.get("apis", 0) or 0),
         f"{r.total_phase_time():.3f}"]
        for r in records
    ]
    table = _table(
        [("Run", False), ("Label", False), ("Act rate", True),
         ("Frag rate", True), ("APIs", True), ("Phase s", True)],
        run_rows,
    )
    return (
        f"<h2>Run trend (last {len(records)} runs)</h2>"
        f'<div class="cards">{"".join(cards)}</div>'
        f"<details><summary>Registry records ({len(records)})</summary>"
        f"{table}</details>"
    )


def _critical_path(spans: Sequence[Span]) -> str:
    path = critical_path(spans)
    if not path:
        return ""
    crumbs = " &rarr; ".join(
        f"<code>{_esc(span.name)}</code> "
        f"<span>{span.duration * 1000:.1f} ms</span>"
        for span in path
    )
    return f'<h2>Critical path</h2><p class="path">{crumbs}</p>'


def _stall_table(found: Sequence[Stall], top: int = 8) -> str:
    if not found:
        return ('<p class="empty">no discovery stalls at this '
                "threshold</p>")
    rows = [[s.start_step, s.end_step, s.events] for s in found[:top]]
    return _table(
        [("Plateau from step", True), ("To step", True),
         ("Events without discovery", True)],
        rows,
    )


def _degradation_panel(degradation: Dict) -> str:
    faults = degradation.get("faults", {})
    fault_text = ", ".join(f"{kind}={count}"
                           for kind, count in sorted(faults.items())) or "none"
    total = degradation.get("total_faults", 0)
    badge_color = ("--status-good" if total == 0 else
                   "--status-serious" if total < 50 else "--status-critical")
    rows = [
        ["Faults injected", f"{total} ({fault_text})"],
        ["Retries (recovered / gave up)",
         f"{degradation.get('retries', 0)} "
         f"({degradation.get('recoveries', 0)} / "
         f"{degradation.get('giveups', 0)})"],
        ["Backoff (simulated s)", f"{degradation.get('backoff_s', 0):.2f}"],
        ["Reconnects", degradation.get("reconnects", 0)],
        ["Quarantined widgets",
         ", ".join(degradation.get("quarantined", [])) or "none"],
        ["Items re-enqueued / abandoned",
         f"{degradation.get('requeued_items', 0)} / "
         f"{degradation.get('abandoned_items', 0)}"],
    ]
    return (
        "<h2>Degradation "
        f'<span class="badge" style="color: var({badge_color})">'
        f"&#9679; profile: {_esc(degradation.get('profile', '?'))}, "
        f"seed {_esc(degradation.get('seed', '?'))}</span></h2>"
        + _table([("Metric", False), ("Value", False)], rows)
    )


# ---------------------------------------------------------------------------
# Page assembly
# ---------------------------------------------------------------------------

def _coverage_totals(report: Dict) -> Dict[str, Optional[int]]:
    coverage = report.get("coverage", {})

    def total(key: str) -> Optional[int]:
        return coverage.get(key, {}).get("sum")

    return {
        "activities": total("activities"),
        "fragments": total("fragments"),
        "fivas": total("fragments_in_visited_activities"),
        "apis": None,
    }


def _visited(report: Dict, key: str) -> int:
    visited = report.get("coverage", {}).get(key, {}).get("visited", 0)
    return len(visited) if isinstance(visited, list) else int(visited)


def _run_tiles(run: RunData) -> str:
    report = run.report
    stats = report.get("stats", {})
    coverage = report.get("coverage", {})
    fiva = coverage.get("fragments_in_visited_activities", {})
    tiles = [
        _tile("Activities",
              f"{_visited(report, 'activities')} / "
              f"{coverage.get('activities', {}).get('sum', 0)}"),
        _tile("Fragments",
              f"{_visited(report, 'fragments')} / "
              f"{coverage.get('fragments', {}).get('sum', 0)}"),
        _tile("Fragments in visited activities",
              f"{fiva.get('visited', 0)} / {fiva.get('sum', 0)}"),
        _tile("Sensitive API invocations",
              len(report.get("api_invocations", []))),
        _tile("Events injected", stats.get("events", 0),
              f"{stats.get('test_cases', 0)} test cases"),
        _tile("Crashes", stats.get("crashes", 0),
              f"{stats.get('restarts', 0)} restarts"),
    ]
    return f'<div class="tiles">{"".join(tiles)}</div>'


def _discovery_tiles(events: Sequence[Event]) -> str:
    stats = discovery_stats(events)
    tiles = []
    for series, label, _ in _SERIES[:2]:
        t50, t90 = stats.get(f"{series}_t50"), stats.get(f"{series}_t90")
        if t50 is None:
            continue
        tiles.append(_tile(f"{label}: time to 50% / 90%",
                           f"{t50} / {t90 if t90 is not None else '—'}",
                           "device steps"))
    return f'<div class="tiles">{"".join(tiles)}</div>' if tiles else ""


def render_dashboard(run: RunData,
                     fleet: Optional[Sequence[RunData]] = None,
                     history: Optional[Sequence] = None,
                     explanations: Optional[Sequence] = None) -> str:
    """One self-contained HTML page for one recorded run.

    ``history`` — run-registry records (oldest first) — adds the
    longitudinal trend section; ``explanations`` — stored coverage
    explanations — the miss-cause section."""
    sections: List[str] = [
        f"<h1>FragDroid flight recorder</h1>"
        f'<p class="sub">Run: <strong>{_esc(run.package)}</strong> '
        f"&middot; {_esc(run.path)}</p>",
        _run_tiles(run),
    ]
    if run.events:
        points = coverage_timeline(run.events)
        sections.append("<h2>Coverage over time</h2>")
        sections.append(_coverage_cards(points, _coverage_totals(run.report)))
        sections.append(_discovery_tiles(run.events))
        sections.append("<h2>Discovery stalls</h2>")
        sections.append(_stall_table(stalls(run.events)))
    else:
        sections.append(
            '<p class="empty">No event log (events.jsonl) in this run '
            "directory — re-run with <code>explore --events-jsonl</code> "
            "for coverage-over-time analytics.</p>"
        )
    if run.spans:
        sections.append("<h2>Phase timing (total wall time per span)</h2>")
        sections.append(_phase_bars(run.spans))
        sections.append(_critical_path(run.spans))
    degradation = run.report.get("degradation")
    if degradation:
        sections.append(_degradation_panel(degradation))
    if fleet:
        sections.append(
            f"<h2>Fleet ({len(fleet)} apps)</h2>"
            + render_fleet_table(fleet_rows(fleet))
        )
    if explanations is not None:
        sections.append(render_attribution_section(explanations))
    if history is not None:
        sections.append(render_trend_section(history))
    body = "\n".join(sections)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f"<title>FragDroid dashboard — {_esc(run.package)}</title>\n"
        f"<style>{_STYLE}</style>\n</head>\n<body>\n"
        f"<main>\n{body}\n</main>\n</body>\n</html>\n"
    )


# ---------------------------------------------------------------------------
# Fleet view
# ---------------------------------------------------------------------------

def fleet_rows(runs: Sequence[RunData]) -> List[Dict]:
    """Per-app fleet rows from loaded run directories — the same shape
    :func:`repro.bench.parallel.sweep_rows` produces from live
    :class:`~repro.bench.parallel.SweepOutcome` objects."""
    rows: List[Dict] = []
    for run in runs:
        coverage = run.report.get("coverage", {})
        stats = run.report.get("stats", {})
        rows.append({
            "package": run.package,
            "ok": True,
            "activities_visited": _visited(run.report, "activities"),
            "activities_sum": coverage.get("activities", {}).get("sum", 0),
            "fragments_visited": _visited(run.report, "fragments"),
            "fragments_sum": coverage.get("fragments", {}).get("sum", 0),
            "apis": len(run.report.get("api_invocations", [])),
            "events": stats.get("events", 0),
            "crashes": stats.get("crashes", 0),
            "duration_s": None,
            "fault_kind": None,
        })
    return rows


def render_fleet_table(rows: Sequence[Dict]) -> str:
    """The per-app fleet table (sweep aggregation or batch output)."""
    headers = [("App", False), ("Status", False), ("Activities", True),
               ("Fragments", True), ("APIs", True), ("Events", True),
               ("Crashes", True), ("Duration (s)", True)]
    body = []
    for row in rows:
        if row.get("ok", True):
            status = "ok"
        else:
            status = f"failed: {row.get('fault_kind') or 'error'}"
        duration = row.get("duration_s")
        body.append([
            row.get("package", "?"),
            status,
            f"{row.get('activities_visited', 0)}/"
            f"{row.get('activities_sum', 0)}",
            f"{row.get('fragments_visited', 0)}/"
            f"{row.get('fragments_sum', 0)}",
            row.get("apis", 0),
            row.get("events", 0),
            row.get("crashes", 0),
            f"{duration:.3f}" if duration is not None else "—",
        ])
    return _table(headers, body)


def render_fleet_dashboard(runs: Sequence[RunData],
                           path: PathLike,
                           history: Optional[Sequence] = None,
                           explanations: Optional[Sequence] = None) -> str:
    """A fleet page: aggregate tiles plus the per-app table (and the
    registry trend / miss-cause sections when records or explanations
    are given)."""
    total_activities = sum(_visited(r.report, "activities") for r in runs)
    total_fragments = sum(_visited(r.report, "fragments") for r in runs)
    crashes = sum(r.report.get("stats", {}).get("crashes", 0) for r in runs)
    events = sum(r.report.get("stats", {}).get("events", 0) for r in runs)
    tiles = [
        _tile("Apps", len(runs)),
        _tile("Activities visited", total_activities),
        _tile("Fragments visited", total_fragments),
        _tile("Events injected", events),
        _tile("Crashes", crashes),
    ]
    body = (
        "<h1>FragDroid flight recorder — fleet</h1>"
        f'<p class="sub">Sweep: {_esc(path)}</p>'
        f'<div class="tiles">{"".join(tiles)}</div>'
        f"<h2>Per-app results ({len(runs)} apps)</h2>"
        + render_fleet_table(fleet_rows(runs))
        + (render_attribution_section(explanations)
           if explanations is not None else "")
        + (render_trend_section(history) if history is not None else "")
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        "<title>FragDroid dashboard — fleet</title>\n"
        f"<style>{_STYLE}</style>\n</head>\n<body>\n"
        f"<main>\n{body}\n</main>\n</body>\n</html>\n"
    )


# ---------------------------------------------------------------------------
# Service (job fleet) view
# ---------------------------------------------------------------------------

def _job_dict(job) -> Dict:
    """Duck-type: accepts a serve ``Job`` or its ``to_dict()`` payload."""
    return job.to_dict() if hasattr(job, "to_dict") else dict(job)


def service_rows(jobs: Sequence) -> List[Dict]:
    """Per-job outcome/latency rows from journaled jobs (the
    :meth:`repro.serve.journal.JobJournal.jobs` listing), oldest first.

    Latencies are derived from the journaled lifecycle timestamps:
    queue wait = ``started - created``, run time = ``finished -
    started`` (None while the stage hasn't happened yet)."""
    rows: List[Dict] = []
    for entry in jobs:
        data = _job_dict(entry)
        created = float(data.get("created", 0.0))
        started = float(data.get("started", 0.0))
        finished = float(data.get("finished", 0.0))
        completed = data.get("completed") or {}
        attempts = data.get("attempts") or {}
        rows.append({
            "job_id": data.get("job_id", "?"),
            "state": data.get("state", "?"),
            "apps": len(data.get("apps") or ()),
            "completed": len(completed),
            "failed": sum(1 for row in completed.values()
                          if not row.get("ok", True)),
            "queue_wait_s": (round(max(0.0, started - created), 3)
                             if started and created else None),
            "run_s": (round(max(0.0, finished - started), 3)
                      if finished and started else None),
            "worker_deaths": int(sum(attempts.values())),
            "quarantined": len(data.get("quarantined") or ()),
            "error": str(data.get("error", "")),
            "trace_id": int(data.get("trace_id", 0) or 0),
            "created": created,
        })
    rows.sort(key=lambda row: (row["created"], row["job_id"]))
    return rows


def queue_depth_series(jobs: Sequence) -> List[Tuple[float, int]]:
    """Queue depth over time from journaled lifecycle timestamps.

    Each job holds a queue slot from ``created`` until ``started`` (or
    ``finished``, for jobs cancelled before they started).  Returns
    ``(seconds since the first submission, depth)`` step points."""
    changes: List[Tuple[float, int]] = []
    for entry in jobs:
        data = _job_dict(entry)
        created = float(data.get("created", 0.0))
        if not created:
            continue
        changes.append((created, +1))
        left = float(data.get("started", 0.0)) \
            or float(data.get("finished", 0.0))
        if left:
            changes.append((max(left, created), -1))
    if not changes:
        return []
    changes.sort()
    epoch = changes[0][0]
    points: List[Tuple[float, int]] = []
    depth = 0
    for stamp, delta in changes:
        depth += delta
        offset = round(stamp - epoch, 3)
        if points and points[-1][0] == offset:
            points[-1] = (offset, depth)
        else:
            points.append((offset, depth))
    return points


def _step_sparkline(points: Sequence[Tuple[float, float]], color_var: str,
                    width: int = 280, height: int = 64) -> str:
    """A generic step curve over (x, value) points — the queue-depth
    chart.  Same chrome as the coverage curves."""
    pad = 6
    max_x = max((x for x, _ in points), default=0.0) or 1.0
    max_value = max(max(v for _, v in points), 1)

    def sx(value: float) -> float:
        return pad + (width - 2 * pad) * value / max_x

    def sy(value: float) -> float:
        return height - pad - (height - 2 * pad) * value / max_value

    coords: List[str] = []
    previous_y = sy(points[0][1])
    for x, value in points:
        coords.append(f"{sx(x):.1f},{previous_y:.1f}")
        previous_y = sy(value)
        coords.append(f"{sx(x):.1f},{previous_y:.1f}")
    coords.append(f"{sx(max_x):.1f},{previous_y:.1f}")
    line = " ".join(coords)
    base = height - pad
    area = f"{pad:.1f},{base:.1f} {line} {sx(max_x):.1f},{base:.1f}"
    end_x, end_y = sx(points[-1][0]), sy(points[-1][1])
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" aria-label="queue depth over time">'
        f'<line x1="{pad}" y1="{base}" x2="{width - pad}" y2="{base}" '
        f'stroke="var(--baseline)" stroke-width="1"/>'
        f'<polygon points="{area}" fill="var({color_var})" opacity="0.1"/>'
        f'<polyline points="{line}" fill="none" stroke="var({color_var})" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{end_x:.1f}" cy="{end_y:.1f}" r="4" '
        f'fill="var({color_var})" stroke="var(--surface)" stroke-width="2"/>'
        f"</svg>"
    )


def render_service_section(jobs: Sequence,
                           records: Optional[Sequence] = None) -> str:
    """The fleet-health panel: state tiles, queue depth over time, the
    per-job outcome/latency table and the adversity (retry /
    quarantine / worker-death) timeline.

    ``jobs`` come from the job journal; ``records`` (optional) are
    run-registry records whose ``meta`` may carry a ``serve-job``
    degradation account (they annotate, they are not required)."""
    rows = service_rows(jobs)
    if not rows:
        return ("<h2>Service fleet</h2>"
                '<p class="empty">no journaled jobs — submit some with '
                "<code>repro jobs submit</code></p>")
    by_state: Dict[str, int] = {}
    for row in rows:
        by_state[row["state"]] = by_state.get(row["state"], 0) + 1
    deaths = sum(row["worker_deaths"] for row in rows)
    failed_apps = sum(row["failed"] for row in rows)
    waits = [row["queue_wait_s"] for row in rows
             if row["queue_wait_s"] is not None]
    runs = [row["run_s"] for row in rows if row["run_s"] is not None]
    tiles = [
        _tile("Jobs", len(rows),
              ", ".join(f"{state}: {count}"
                        for state, count in sorted(by_state.items()))),
        _tile("Worker deaths", deaths,
              f"{sum(row['quarantined'] for row in rows)} quarantined"),
        _tile("Failed app rows", failed_apps),
    ]
    if waits:
        tiles.append(_tile("Median queue wait (s)",
                           f"{sorted(waits)[len(waits) // 2]:.3f}",
                           f"max {max(waits):.3f}"))
    if runs:
        tiles.append(_tile("Median run time (s)",
                           f"{sorted(runs)[len(runs) // 2]:.3f}",
                           f"max {max(runs):.3f}"))
    sections = [
        "<h2>Service fleet</h2>",
        f'<div class="tiles">{"".join(tiles)}</div>',
    ]
    depth_points = queue_depth_series(jobs)
    if depth_points:
        peak = max(value for _, value in depth_points)
        sections.append(
            '<div class="cards"><div class="card"><div class="label">'
            '<span class="key-dot" style="background: var(--series-1)">'
            "</span>Queue depth over time"
            f'<span class="final">peak {peak}</span></div>'
            + _step_sparkline(depth_points, "--series-1")
            + "</div></div>"
        )
    job_table_rows = [
        [row["job_id"], row["state"],
         f"{row['completed']}/{row['apps']}", row["failed"],
         f"{row['queue_wait_s']:.3f}"
         if row["queue_wait_s"] is not None else "—",
         f"{row['run_s']:.3f}" if row["run_s"] is not None else "—",
         row["trace_id"] or "—",
         row["error"] or ""]
        for row in rows
    ]
    sections.append(f"<h3>Jobs ({len(rows)})</h3>")
    sections.append(_table(
        [("Job", False), ("State", False), ("Apps done", True),
         ("Failed", True), ("Queue wait (s)", True), ("Run (s)", True),
         ("Trace", True), ("Error", False)],
        job_table_rows,
    ))
    sections.append(_adversity_timeline(jobs, records))
    return "\n".join(sections)


def _adversity_timeline(jobs: Sequence,
                        records: Optional[Sequence]) -> str:
    """One row per job that hit adversity, oldest first: worker deaths
    absorbed, apps re-admitted, apps quarantined, failed rows — the
    journal's account, annotated with the registry's degradation meta
    when a matching ``serve-job`` record exists."""
    degradation_by_job: Dict[str, Dict] = {}
    for record in records or ():
        meta = getattr(record, "meta", None) or {}
        job_id = meta.get("job_id")
        if job_id and isinstance(meta.get("degradation"), dict):
            degradation_by_job[str(job_id)] = meta["degradation"]
    rows = []
    for entry in jobs:
        data = _job_dict(entry)
        attempts = data.get("attempts") or {}
        quarantined = list(data.get("quarantined") or ())
        completed = data.get("completed") or {}
        failed = sorted(package for package, row in completed.items()
                        if not row.get("ok", True))
        if not attempts and not quarantined and not failed:
            continue
        degradation = degradation_by_job.get(str(data.get("job_id", "")))
        recorded = "yes" if degradation is not None else "—"
        rows.append([
            data.get("job_id", "?"),
            int(sum(attempts.values())),
            ", ".join(sorted(attempts)) or "—",
            ", ".join(quarantined) or "—",
            ", ".join(failed) or "—",
            recorded,
        ])
    if not rows:
        return ('<h3>Adversity timeline</h3><p class="empty">no worker '
                "deaths, re-admissions or failed rows — a healthy "
                "fleet</p>")
    return "<h3>Adversity timeline</h3>" + _table(
        [("Job", False), ("Worker deaths", True), ("Re-admitted", False),
         ("Quarantined", False), ("Failed apps", False),
         ("In registry", False)],
        rows,
    )


# ---------------------------------------------------------------------------
# Attribution (miss causes) view
# ---------------------------------------------------------------------------

def load_explanations(registry_dir: PathLike) -> List:
    """Every stored coverage explanation under a registry directory
    (the ``explanations/`` store ``repro explain`` writes), sorted by
    source run id.  Corrupt files are skipped, never fatal."""
    from repro.obs.attribution import ExplanationStore

    store = ExplanationStore(registry_dir)
    explanations = []
    for run_id in store.ids():
        try:
            explanations.append(store.load(run_id))
        except (ValueError, KeyError, OSError):
            continue
    return explanations


def render_attribution_section(explanations: Sequence) -> str:
    """The miss-cause panel: why targets stayed unreached, across every
    stored explanation — the fleet cause census plus the widgets
    blocking the most targets (``repro explain`` has the per-target
    drill-down)."""
    from repro.obs.attribution import (
        CAUSES,
        fleet_cause_census,
        top_blocking_widgets,
    )

    explanations = list(explanations)
    if not explanations:
        return ("<h2>Miss causes</h2>"
                '<p class="empty">no stored coverage explanations — '
                "create them with <code>repro explain --table1</code></p>")
    census = fleet_cause_census(explanations)
    missed = sum(census.values())
    unclassified = census.get("unclassified", 0)
    tiles = [
        _tile("Explained runs", len(explanations)),
        _tile("Unreached targets", missed),
        _tile("Unclassified", unclassified,
              "every miss has a typed cause" if not unclassified else ""),
    ]
    sections = [
        "<h2>Miss causes</h2>",
        f'<div class="tiles">{"".join(tiles)}</div>',
    ]
    census_rows = [[cause, census[cause]] for cause in CAUSES
                   if census.get(cause)]
    if census_rows:
        sections.append("<h3>Cause census</h3>")
        sections.append(_table([("Cause", False), ("Targets", True)],
                               census_rows))
    widgets = top_blocking_widgets(explanations)
    if widgets:
        sections.append("<h3>Top blocking widgets</h3>")
        sections.append(_table(
            [("Widget", False), ("Targets blocked", True)],
            [[widget, count] for widget, count in widgets],
        ))
    return "\n".join(sections)


def render_service_dashboard(jobs: Sequence,
                             path: PathLike,
                             records: Optional[Sequence] = None,
                             history: Optional[Sequence] = None,
                             explanations: Optional[Sequence] = None) -> str:
    """A standalone fleet-health page from a job journal
    (``repro dashboard --journal DIR``)."""
    body = (
        "<h1>FragDroid flight recorder — service fleet</h1>"
        f'<p class="sub">Journal: {_esc(path)}</p>'
        + render_service_section(jobs, records)
        + (render_attribution_section(explanations)
           if explanations is not None else "")
        + (render_trend_section(history) if history is not None else "")
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        "<title>FragDroid dashboard — service fleet</title>\n"
        f"<style>{_STYLE}</style>\n</head>\n<body>\n"
        f"<main>\n{body}\n</main>\n</body>\n</html>\n"
    )


def render_dashboard_dir(directory: PathLike,
                         history: Optional[Sequence] = None,
                         explanations: Optional[Sequence] = None) -> str:
    """Dispatch: a single run directory renders the run page; a
    directory of run directories renders the fleet page.  ``history``
    (run-registry records, oldest first) adds the trend section to
    either page; ``explanations`` (stored coverage explanations, see
    :func:`load_explanations`) adds the miss-cause section."""
    base = pathlib.Path(directory)
    if not base.is_dir():
        raise FileNotFoundError(
            f"{base}: not a directory — point `repro dashboard` at an "
            "`explore --save` run directory (with report.json) or a "
            "directory of them"
        )
    if (base / "report.json").exists():
        return render_dashboard(load_run(base), history=history,
                                explanations=explanations)
    runs = load_fleet(base)
    if not runs:
        raise FileNotFoundError(
            f"{base}: no report.json here or in any subdirectory — "
            "point `repro dashboard` at an `explore --save` run "
            "directory or a `repro batch` output directory"
        )
    if len(runs) == 1:
        return render_dashboard(runs[0], history=history,
                                explanations=explanations)
    return render_fleet_dashboard(runs, base, history=history,
                                  explanations=explanations)
