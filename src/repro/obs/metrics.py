"""Named counters and histograms.

Counters accumulate (events injected, clicks, reflection switches,
forced starts, APIs observed); histograms record every observation
(queue depth at each pop, per-app durations).  Both are thread-safe:
a parallel sweep shares one registry across its workers.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1]).

    Deterministic for any ordering of the input (the values are sorted
    here), 0.0 for an empty sequence.  Nearest-rank (no interpolation)
    keeps the result an actual observed value, which is what a latency
    or self-time percentile should report.  This is the *single*
    quantile definition every consumer shares — span summaries
    (:mod:`repro.obs.summary` re-exports it), histogram snapshots and
    the Prometheus exposition all agree on what "p90" means.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if q <= 0.0:
        return float(ordered[0])
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class HistogramStats:
    """Aggregate view of one histogram."""

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


def _stats_of(values: Sequence[float]) -> HistogramStats:
    if not values:
        return HistogramStats(count=0, total=0.0, minimum=0.0, maximum=0.0)
    return HistogramStats(
        count=len(values),
        total=float(sum(values)),
        minimum=float(min(values)),
        maximum=float(max(values)),
        p50=percentile(values, 0.50),
        p90=percentile(values, 0.90),
        p99=percentile(values, 0.99),
    )


class Metrics:
    """Thread-safe registry of named counters and histograms."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self._histograms.setdefault(name, []).append(value)

    def merge(self, counters: Dict[str, float],
              histograms: Dict[str, List[float]]) -> None:
        """Fold another registry's raw recordings into this one.

        The process-pool sweep backend collects each worker's counters
        and raw histogram values and merges them on join, so the parent
        registry ends up with the same totals a shared thread-pool
        registry would have accumulated.  Routed through ``inc``/
        ``observe`` so :class:`NullMetrics` stays a no-op.

        Histogram values are validated on the way in: a non-numeric
        entry (or a NaN, or a bool smuggled in as a number) from a
        corrupted worker payload is *skipped* and tallied under the
        ``metrics.merge.skipped`` counter instead of poisoning every
        later percentile computation over that histogram.
        """
        for name, value in counters.items():
            self.inc(name, value)
        for name, values in histograms.items():
            for value in values:
                if (isinstance(value, bool)
                        or not isinstance(value, (int, float))
                        or value != value):  # NaN
                    self.inc("metrics.merge.skipped")
                    continue
                self.observe(name, value)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def histogram(self, name: str) -> Tuple[float, ...]:
        with self._lock:
            return tuple(self._histograms.get(name, ()))

    def raw_histograms(self) -> Dict[str, List[float]]:
        """Every histogram's raw observations (for cross-process merge)."""
        with self._lock:
            return {name: list(values)
                    for name, values in self._histograms.items()}

    def histogram_stats(self, name: str) -> HistogramStats:
        return _stats_of(self.histogram(name))

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-ready copy of everything recorded so far."""
        with self._lock:
            histograms = {name: list(values)
                          for name, values in self._histograms.items()}
            counters = dict(self._counters)
        return {
            "counters": counters,
            "histograms": {name: _stats_of(values).to_dict()
                           for name, values in histograms.items()},
        }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    def render(self) -> str:
        """The counters and histogram aggregates as a text table."""
        snapshot = self.snapshot()
        lines = [f"{'counter':40} {'value':>12}"]
        lines.append("-" * 53)
        for name, value in sorted(snapshot["counters"].items()):
            text = f"{value:g}"
            lines.append(f"{name:40} {text:>12}")
        if snapshot["histograms"]:
            lines.append("")
            lines.append(f"{'histogram':28} {'count':>7} {'mean':>10} "
                         f"{'p50':>10} {'p99':>10} {'min':>10} {'max':>10}")
            lines.append("-" * 90)
            for name, stats in sorted(snapshot["histograms"].items()):
                lines.append(
                    f"{name:28} {stats['count']:>7} {stats['mean']:>10.2f} "
                    f"{stats['p50']:>10.2f} {stats['p99']:>10.2f} "
                    f"{stats['min']:>10.2f} {stats['max']:>10.2f}"
                )
        return "\n".join(lines)


class NullMetrics(Metrics):
    """Drops every recording; reads as empty."""

    enabled = False

    def inc(self, name: str, value: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


NULL_METRICS = NullMetrics()
