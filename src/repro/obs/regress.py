"""Deterministic regression gate over two run records.

``check_regression(baseline, candidate, policy)`` is a pure function:
no clocks, no randomness, no filesystem — the same record pair under
the same policy always yields the same verdict, whichever sweep
backend (threads or processes) produced the candidate.  That is the
property that makes ``repro regress`` usable as a CI exit code.

What gates, and why:

* **coverage** — the paper's primary currency.  A relative drop beyond
  ``max_coverage_drop`` on any gated key (mean activity/fragment
  rates, visited totals, API count) is a regression.  Coverage on a
  seeded synthetic corpus is deterministic, so the threshold exists
  for *intentional* model changes, not machine noise.
* **phase time** — gated on each phase's **share of total self time**,
  not wall seconds.  A committed baseline record travels across
  machines; absolute timings don't, but "static extraction is 30% of
  the run" does.  Phases below ``min_phase_share`` of the baseline
  total are ignored (tiny denominators make noisy ratios).
* **memory** — reported as warnings by default (tracemalloc peaks are
  samples, not exact attribution); set ``max_memory_increase`` to gate
  on them too.
* **replay divergence** — absolute, not baseline-relative.  A candidate
  record carrying a ``replay_diverged`` coverage count above
  ``max_replay_divergences`` (default 0) fails outright: a recorded
  script that stopped applying to the *same* app is a harness bug,
  whatever the baseline did.  Records without the key are unaffected.
* **comparability** — differing config fingerprints or corpus digests
  are themselves violations (unless the policy relaxes them): a green
  diff between incomparable runs is worse than a red one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import RunRecord

#: Coverage keys gated by default (all relative-drop checks).
DEFAULT_COVERAGE_KEYS = (
    "mean_activity_rate",
    "mean_fragment_rate",
    "activities_visited",
    "fragments_visited",
    "apis",
)

#: Memory growth beyond this relative factor is *warned* about even
#: when the memory gate is off.
_MEMORY_WARN_INCREASE = 0.5


@dataclass(frozen=True)
class RegressionPolicy:
    """Thresholds for the gate; all ratios are relative to baseline."""

    max_coverage_drop: float = 0.10
    max_phase_time_increase: float = 0.25
    min_phase_share: float = 0.05
    max_memory_increase: Optional[float] = None  # None: report, don't gate
    coverage_keys: Tuple[str, ...] = DEFAULT_COVERAGE_KEYS
    require_same_config: bool = True
    require_same_corpus: bool = True
    # Replay divergence is absolute, not baseline-relative: a recorded
    # script that no longer applies to the *same* app is a harness
    # regression even when the baseline also diverged.
    max_replay_divergences: int = 0

    def describe(self) -> str:
        parts = [
            f"coverage drop <= {self.max_coverage_drop:.0%}",
            f"phase-time share increase <= "
            f"{self.max_phase_time_increase:.0%} "
            f"(phases >= {self.min_phase_share:.0%} of baseline)",
        ]
        if self.max_memory_increase is not None:
            parts.append(
                f"memory increase <= {self.max_memory_increase:.0%}")
        if self.max_replay_divergences == 0:
            parts.append("no replay divergences")
        else:
            parts.append(
                f"replay divergences <= {self.max_replay_divergences}")
        return ", ".join(parts)


@dataclass(frozen=True)
class Violation:
    """One threshold breach."""

    kind: str  # "coverage" | "phase_time" | "memory" | "comparability" | "replay"
    key: str
    baseline: Optional[float]
    candidate: Optional[float]
    limit: float
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "key": self.key,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "limit": self.limit,
            "detail": self.detail,
        }


@dataclass
class RegressionReport:
    """The gate's verdict: violations fail, warnings inform."""

    baseline_id: str
    candidate_id: str
    policy: RegressionPolicy
    violations: List[Violation] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline_id": self.baseline_id,
            "candidate_id": self.candidate_id,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "warnings": list(self.warnings),
            "policy": self.policy.describe(),
        }

    def render_text(self) -> str:
        lines = [
            f"regression check: candidate {self.candidate_id} "
            f"vs baseline {self.baseline_id}",
            f"policy: {self.policy.describe()}",
            ("PASS" if self.ok
             else f"FAIL ({len(self.violations)} violation"
                  f"{'s' if len(self.violations) != 1 else ''})"),
        ]
        for violation in self.violations:
            lines.append(f"  - {violation.kind} {violation.key}: "
                         f"{violation.detail}")
        if self.warnings:
            lines.append("warnings:")
            for warning in self.warnings:
                lines.append(f"  * {warning}")
        return "\n".join(lines)


def _phase_shares(record: RunRecord) -> Dict[str, float]:
    total = record.total_phase_time()
    if total <= 0:
        return {}
    return {
        name: stats.get("self_total_s", 0.0) / total
        for name, stats in record.phases.items()
    }


def check_regression(baseline: RunRecord, candidate: RunRecord,
                     policy: Optional[RegressionPolicy] = None,
                     ) -> RegressionReport:
    """Compare a candidate run against a baseline under a policy."""
    policy = policy or RegressionPolicy()
    report = RegressionReport(
        baseline_id=baseline.run_id or baseline.compute_id(),
        candidate_id=candidate.run_id or candidate.compute_id(),
        policy=policy,
    )

    # -- comparability -----------------------------------------------------
    if baseline.config != candidate.config:
        changed = sorted(
            key for key in set(baseline.config) | set(candidate.config)
            if baseline.config.get(key) != candidate.config.get(key)
        )
        detail = "config fingerprints differ: " + ", ".join(changed)
        if policy.require_same_config:
            report.violations.append(Violation(
                kind="comparability", key="config", baseline=None,
                candidate=None, limit=0.0, detail=detail))
        else:
            report.warnings.append(detail)
    if (baseline.corpus_digest and candidate.corpus_digest
            and baseline.corpus_digest != candidate.corpus_digest):
        detail = (f"corpus digests differ: {baseline.corpus_digest[:12]} "
                  f"vs {candidate.corpus_digest[:12]}")
        if policy.require_same_corpus:
            report.violations.append(Violation(
                kind="comparability", key="corpus", baseline=None,
                candidate=None, limit=0.0, detail=detail))
        else:
            report.warnings.append(detail)

    # -- coverage ----------------------------------------------------------
    for key in policy.coverage_keys:
        base = baseline.coverage.get(key)
        if base is None or base <= 0:
            continue  # nothing to regress from
        cand = float(candidate.coverage.get(key, 0.0) or 0.0)
        drop = (base - cand) / base
        if drop > policy.max_coverage_drop:
            report.violations.append(Violation(
                kind="coverage", key=key, baseline=float(base),
                candidate=cand, limit=policy.max_coverage_drop,
                detail=(f"{base:g} -> {cand:g} "
                        f"(-{drop:.1%} > {policy.max_coverage_drop:.0%} "
                        f"allowed)")))

    # -- replay divergence (absolute gate, not baseline-relative) ----------
    diverged = candidate.coverage.get("replay_diverged")
    if diverged is not None and diverged > policy.max_replay_divergences:
        report.violations.append(Violation(
            kind="replay", key="replay_diverged", baseline=None,
            candidate=float(diverged),
            limit=float(policy.max_replay_divergences),
            detail=(f"{diverged:g} replayed script"
                    f"{'s' if diverged != 1 else ''} diverged "
                    f"(> {policy.max_replay_divergences} allowed) — "
                    "recorded suite no longer applies to this app")))

    # -- phase time (shares of total self time) ----------------------------
    base_shares = _phase_shares(baseline)
    cand_shares = _phase_shares(candidate)
    for name in sorted(base_shares):
        base_share = base_shares[name]
        if base_share < policy.min_phase_share:
            continue
        cand_share = cand_shares.get(name, 0.0)
        increase = (cand_share - base_share) / base_share
        if increase > policy.max_phase_time_increase:
            report.violations.append(Violation(
                kind="phase_time", key=name, baseline=base_share,
                candidate=cand_share,
                limit=policy.max_phase_time_increase,
                detail=(f"share of self time {base_share:.1%} -> "
                        f"{cand_share:.1%} (+{increase:.1%} > "
                        f"{policy.max_phase_time_increase:.0%} allowed)")))

    # -- memory ------------------------------------------------------------
    for name in sorted(baseline.phases):
        base_mem = baseline.phases[name].get("mem_peak_kb")
        cand_mem = candidate.phases.get(name, {}).get("mem_peak_kb")
        if base_mem is None or cand_mem is None or base_mem <= 0:
            continue
        increase = (float(cand_mem) - float(base_mem)) / float(base_mem)
        if (policy.max_memory_increase is not None
                and increase > policy.max_memory_increase):
            report.violations.append(Violation(
                kind="memory", key=name, baseline=float(base_mem),
                candidate=float(cand_mem),
                limit=policy.max_memory_increase,
                detail=(f"peak {base_mem:g} KiB -> {cand_mem:g} KiB "
                        f"(+{increase:.1%} > "
                        f"{policy.max_memory_increase:.0%} allowed)")))
        elif increase > _MEMORY_WARN_INCREASE:
            report.warnings.append(
                f"memory {name}: peak {base_mem:g} KiB -> "
                f"{cand_mem:g} KiB (+{increase:.1%}; not gated)")
    return report
