"""Machine-readable exports of a run's observability record.

* :func:`prometheus_text` — the ``Metrics`` registry in the Prometheus
  text exposition format (``fragdroid_clicks_total 42``), so a fleet
  deployment can scrape sweep workers with stock tooling;
* :func:`run_manifest` — one JSON-ready summary of a run directory:
  coverage, stats, the event census, discovery statistics and which
  artifact files exist.  ``repro dashboard`` and fleet tooling read
  this instead of re-deriving everything from the raw streams.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.events import Event, event_census
from repro.obs.metrics import Metrics
from repro.obs.timeline import discovery_stats
from repro.obs.tracer import Span

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str = "fragdroid") -> str:
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def prometheus_text(metrics: Union[Metrics, Mapping],
                    prefix: str = "fragdroid") -> str:
    """The metrics snapshot in Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total`` counter samples;
    histograms become proper *summaries* — ``{quantile="0.5|0.9|0.99"}``
    samples plus ``_sum`` / ``_count`` — with the min/max extremes as
    separate ``_min`` / ``_max`` gauges (a summary metric may only
    carry quantile/sum/count samples).  Accepts a live registry or a
    ``snapshot()`` dict; older snapshots without quantile fields are
    still accepted and simply omit the quantile samples.
    """
    snapshot = metrics.snapshot() if isinstance(metrics, Metrics) else metrics
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value:g}")
    for name, stats in sorted(snapshot.get("histograms", {}).items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for label, key in _QUANTILES:
            if key in stats:
                lines.append(
                    f'{metric}{{quantile="{label}"}} {stats[key]:g}')
        lines.append(f"{metric}_sum {stats['total']:g}")
        lines.append(f"{metric}_count {stats['count']:g}")
        lines.append(f"# TYPE {metric}_min gauge")
        lines.append(f"{metric}_min {stats['min']:g}")
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {stats['max']:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def run_manifest(result,
                 events: Optional[Sequence[Event]] = None,
                 spans: Optional[Sequence[Span]] = None,
                 files: Sequence[str] = ()) -> Dict:
    """A JSON-ready manifest of one run.

    ``result`` is duck-typed as an
    :class:`~repro.core.explorer.ExplorationResult` (package, coverage
    accessors, stats) so this layer stays import-free of ``repro.core``.
    """
    events = list(events if events is not None else result.events)
    spans = list(spans if spans is not None else result.spans)
    fiva_visited, fiva_total = result.fragments_in_visited_activities()
    manifest: Dict = {
        "package": result.package,
        "coverage": {
            "activities": {"visited": len(result.visited_activities),
                           "sum": result.activity_total},
            "fragments": {"visited": len(result.visited_fragments),
                          "sum": result.fragment_total},
            "fivas": {"visited": fiva_visited, "sum": fiva_total},
            "api_invocations": len(result.api_invocations),
        },
        "stats": {
            "test_cases": result.stats.test_cases,
            "events": result.stats.events,
            "crashes": result.stats.crashes,
            "restarts": result.stats.restarts,
            "aftm_updates": result.stats.aftm_updates,
        },
        "flight_recorder": {
            "events": len(events),
            "event_census": dict(sorted(event_census(events).items())),
            "spans": len(spans),
        },
        "files": sorted(files),
    }
    if events:
        manifest["discovery"] = discovery_stats(events)
    if result.degradation is not None:
        manifest["degradation"] = result.degradation.to_dict()
    return manifest
