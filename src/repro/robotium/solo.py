"""``Solo``: the Robotium driver API.

The paper generates test cases "based on the library of Robotium"
(Section III); our generated test programs run against this driver,
which exposes the same high-level verbs — click on view, enter text,
wait for activity, go back — over the emulated device.
"""

from __future__ import annotations

from typing import List, Optional

from repro.android.device import Device
from repro.android.views import RuntimeWidget
from repro.errors import WidgetNotFoundError


class Solo:
    """A Robotium session bound to one device."""

    def __init__(self, device: Device) -> None:
        self.device = device

    # -- observation -------------------------------------------------------------

    def get_current_views(self) -> List[RuntimeWidget]:
        return self.device.ui_dump()

    def get_current_activity(self) -> Optional[str]:
        """Robotium's ``getCurrentActivity().getClass().getName()``."""
        return self.device.current_activity_name()

    def get_view(self, widget_id: str) -> RuntimeWidget:
        for widget in self.get_current_views():
            if widget.widget_id == widget_id:
                return widget
        raise WidgetNotFoundError(widget_id)

    def search_text(self, text: str) -> bool:
        return any(w.text == text for w in self.get_current_views())

    def wait_for_activity(self, simple_name: str) -> bool:
        """The emulator settles synchronously, so waiting is a check."""
        current = self.get_current_activity()
        return current is not None and current.endswith(simple_name)

    # -- interaction ----------------------------------------------------------------

    def click_on_view(self, widget_id: str) -> None:
        self.device.click_widget(widget_id)

    def click_on_text(self, text: str) -> None:
        for widget in self.get_current_views():
            if widget.text == text:
                x, y = widget.bounds.center
                self.device.tap(x, y)
                return
        raise WidgetNotFoundError(f"text={text!r}")

    def click_on_screen(self, x: int, y: int) -> None:
        self.device.tap(x, y)

    def enter_text(self, widget_id: str, text: str) -> None:
        self.device.enter_text(widget_id, text)

    def go_back(self) -> None:
        self.device.press_back()

    def swipe_right(self) -> None:
        """Edge swipe (opens navigation drawers)."""
        self.device.swipe_from_left()

    def clickable_widgets(self) -> List[RuntimeWidget]:
        """All clickable widgets, top-to-bottom then left-to-right —
        the Case 3 click-enumeration order."""
        widgets = [w for w in self.get_current_views() if w.clickable]
        widgets.sort(key=lambda w: (w.bounds.top, w.bounds.left))
        return widgets
