"""Robotium-style automation driver (the paper's AF/A layer)."""

from repro.robotium.solo import Solo

__all__ = ["Solo"]
