"""Test case generation: queue items → executable Robotium programs.

The paper's test case generation module "transforms the items in the UI
queue into executable test cases" from a Robotium template, packages
them with Ant and runs them through ``am instrument`` (Sections III and
VI).  We keep the whole shape: a :class:`TestCase` renders itself as
Robotium-style Java source (an inspectable artifact of every run) and
registers an equivalent operation-replay with the adb instrumentation
layer, which executes against the :class:`~repro.robotium.solo.Solo`
driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.android.reflection import reflective_fragment_switch
from repro.core.queue import OpKind, Operation
from repro.errors import TestCaseError, WidgetNotFoundError
from repro.types import ComponentName

if TYPE_CHECKING:  # pragma: no cover
    from repro.adb.bridge import Adb
    from repro.robotium.solo import Solo

#: Characters that must be escaped inside a Java string literal.
_JAVA_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "\f": "\\f",
    "\b": "\\b",
}


def java_escape(text: str) -> str:
    """Escape ``text`` for interpolation into a Java string literal.

    Generated test programs embed analyst-provided values (widget ids,
    entered text); a ``"`` or ``\\`` passed through verbatim produces
    uncompilable Java.  Remaining control characters become ``\\uXXXX``.
    """
    out = []
    for char in text:
        if char in _JAVA_ESCAPES:
            out.append(_JAVA_ESCAPES[char])
        elif ord(char) < 0x20:
            out.append(f"\\u{ord(char):04x}")
        else:
            out.append(char)
    return "".join(out)


@dataclass
class TestCase:
    """One generated test program."""

    package: str
    name: str
    operations: Sequence[Operation]

    @property
    def test_package(self) -> str:
        return f"{self.package}.test.{self.name}"

    # -- rendering --------------------------------------------------------------

    def to_robotium_java(self) -> str:
        """The Robotium template instantiated with this operation list."""
        lines = [
            f"package {self.package}.test;",
            "",
            "import com.robotium.solo.Solo;",
            "import android.test.ActivityInstrumentationTestCase2;",
            "",
            f"public class {self.name} extends "
            "ActivityInstrumentationTestCase2 {",
            "    private Solo solo;",
            "",
            "    public void setUp() throws Exception {",
            "        solo = new Solo(getInstrumentation(), getActivity());",
            "    }",
            "",
            "    public void testRun() throws Exception {",
        ]
        for op in self.operations:
            lines.append(f"        {self._java_statement(op)}")
        lines.extend(
            [
                "    }",
                "",
                "    public void tearDown() throws Exception {",
                "        solo.finishOpenedActivities();",
                "    }",
                "}",
            ]
        )
        return "\n".join(lines)

    def _java_statement(self, op: Operation) -> str:
        target = java_escape(op.target)
        if op.kind is OpKind.LAUNCH:
            return "getActivity();  // launch entry activity"
        if op.kind is OpKind.CLICK:
            return f'solo.clickOnView(solo.getView("{target}"));'
        if op.kind is OpKind.ENTER_TEXT:
            return (f'solo.enterText((EditText) solo.getView("{target}"), '
                    f'"{java_escape(op.value)}");')
        if op.kind is OpKind.SWIPE_OPEN:
            return "solo.drag(0, 540, 960, 960, 10);  // open drawer"
        if op.kind is OpKind.REFLECT:
            return (
                "// reflective fragment switch (Section VI-B template)\n"
                "        FragmentManager fm = (FragmentManager) activity"
                ".getClass().getMethod(\"getFragmentManager\")"
                ".invoke(activity);\n"
                "        fm.beginTransaction().replace(containerId, "
                f"(Fragment) Class.forName(\"{target}\")"
                ".newInstance()).commit();"
            )
        if op.kind is OpKind.FORCE_START:
            return (f'// adb shell am start -n {target}  (empty intent)')
        if op.kind is OpKind.BACK:
            return "solo.goBack();"
        raise TestCaseError(f"cannot render {op.kind}")

    # -- execution ----------------------------------------------------------------

    def run(self, solo: "Solo", adb: "Adb") -> None:
        """Replay the operation list against the device.

        Raises :class:`TestCaseError` when an operation cannot be
        applied (missing widget, failed start) — the explorer treats
        that as a broken path and drops the item.
        """
        device = solo.device
        for op in self.operations:
            if op.kind is OpKind.LAUNCH:
                if not adb.am_start_launcher(self.package):
                    raise TestCaseError(f"{self.package}: launcher did not start")
            elif op.kind is OpKind.CLICK:
                try:
                    solo.click_on_view(op.target)
                except WidgetNotFoundError as exc:
                    raise TestCaseError(f"click failed: {exc}") from exc
            elif op.kind is OpKind.ENTER_TEXT:
                try:
                    solo.enter_text(op.target, op.value)
                except WidgetNotFoundError as exc:
                    raise TestCaseError(f"enterText failed: {exc}") from exc
            elif op.kind is OpKind.SWIPE_OPEN:
                solo.swipe_right()
            elif op.kind is OpKind.REFLECT:
                reflective_fragment_switch(device, op.target)
            elif op.kind is OpKind.FORCE_START:
                component = ComponentName.parse(op.target)
                if not device.start_activity(component):
                    raise TestCaseError(f"forced start failed: {op.target}")
            elif op.kind is OpKind.BACK:
                solo.go_back()
            else:
                raise TestCaseError(f"cannot execute {op.kind}")
            if not device.app_alive:
                raise TestCaseError(
                    f"app left foreground after {op} (crash or finish)"
                )

    def install_and_run(self, solo: "Solo", adb: "Adb") -> None:
        """The full Section VI-A method 2 flow: package the script,
        install it, run it via ``am instrument``."""
        adb.register_instrumentation(
            self.test_package, lambda: self.run(solo, adb)
        )
        adb.am_instrument(self.test_package)
