"""Targeted driving: reach a specific component or sensitive API.

SmartDroid (Section IX) creates "an Activity switch path that leads to
the sensitive API calls"; FragDroid's AFTM plus its recorded queue-item
paths provide the same capability at Fragment granularity: after an
exploration, every visited component has a concrete, replayable
operation path, and every observed API maps to the components that
invoked it.  This module packages that into a one-call targeted mode —
"the capability of detecting arbitrary API calls" (Abstract).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.adb.bridge import Adb
from repro.adb.instrumentation import instrument_manifest
from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.core.explorer import ExplorationResult
from repro.core.testcase import TestCase
from repro.errors import ExplorationError
from repro.robotium.solo import Solo


def components_invoking(result: ExplorationResult, api: str) -> List[str]:
    """The component classes observed invoking a sensitive API."""
    return sorted({
        invocation.component.cls
        for invocation in result.api_invocations
        if invocation.api == api
    })


def path_to_component(result: ExplorationResult,
                      component: str) -> Tuple:
    """The recorded operation path that first reached a component."""
    try:
        return result.paths[component]
    except KeyError:
        raise ExplorationError(
            f"{component} was never reached; no path recorded"
        ) from None


def drive_to_component(
    result: ExplorationResult,
    apk: ApkPackage,
    device: Device,
    component: str,
    name: str = "TargetedTest",
) -> TestCase:
    """Replay the recorded path to ``component`` on a device.

    Installs the instrumented package (paths may include forced starts),
    runs the path as a Robotium test case, and returns the test case —
    the reusable artifact a security analyst hands to a colleague.
    """
    operations = path_to_component(result, component)
    adb = Adb(device)
    adb.install(instrument_manifest(apk))
    case = TestCase(package=apk.package, name=name, operations=operations)
    case.install_and_run(Solo(device), adb)
    return case


def drive_to_api(
    result: ExplorationResult,
    apk: ApkPackage,
    device: Device,
    api: str,
) -> Tuple[TestCase, str]:
    """Drive straight to (one component invoking) a sensitive API.

    Returns the test case and the component chosen.  Raises
    :class:`ExplorationError` when the exploration never observed the
    API (nothing to target).
    """
    candidates = components_invoking(result, api)
    if not candidates:
        raise ExplorationError(f"API {api!r} was never observed")
    component = candidates[0]
    before = len(device.api_monitor.invocations)
    case = drive_to_component(result, apk, device, component,
                              name="TargetedApiTest")

    def fired() -> bool:
        return any(
            invocation.api == api
            for invocation in device.api_monitor.invocations[before:]
        )

    if not fired():
        # Lifecycle alone didn't fire it: the call sits in a click
        # handler, so exercise the target component's own widgets
        # (identified through the resource dependency, as always).
        dep = result.info.resource_dep
        own_widgets = set(dep.widgets_of_fragment(component)) | set(
            dep.widgets_of_activity(component)
        )
        solo = Solo(device)
        for widget in solo.clickable_widgets():
            if widget.widget_id not in own_widgets:
                continue
            solo.click_on_view(widget.widget_id)
            if fired():
                break
    if not fired():
        raise ExplorationError(
            f"replayed path to {component} but {api!r} did not fire"
        )
    return case, component
