"""Serialization of models and run results.

JSON round-trips for the AFTM (so a model extracted in one session can
seed another — the evolutionary updates compose), and a structured JSON
report for a whole exploration run (consumed by the CLI and usable by
downstream tooling).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.core.explorer import ExplorationResult
from repro.obs import Span, aggregate_spans, render_summary
from repro.static.aftm import AFTM, Node, NodeKind, activity_node, fragment_node


# ---------------------------------------------------------------------------
# AFTM <-> JSON
# ---------------------------------------------------------------------------

def aftm_to_dict(aftm: AFTM) -> Dict:
    return {
        "package": aftm.package,
        "entry": aftm.entry.name if aftm.entry else None,
        "activities": sorted(n.name for n in aftm.activities),
        "fragments": sorted(n.name for n in aftm.fragments),
        "visited": sorted(n.name for n in aftm.iter_visited()),
        "edges": [
            {
                "src": edge.src.name,
                "src_kind": edge.src.kind.value,
                "dst": edge.dst.name,
                "dst_kind": edge.dst.kind.value,
                "kind": edge.kind.name,
                "host": edge.host,
                "trigger": edge.trigger,
            }
            for edge in sorted(aftm.iter_edges())
        ],
    }


def aftm_to_json(aftm: AFTM) -> str:
    return json.dumps(aftm_to_dict(aftm), indent=2, sort_keys=True)


def _node_from(name: str, kind: str) -> Node:
    if kind == NodeKind.ACTIVITY.value:
        return activity_node(name)
    return fragment_node(name)


def aftm_from_json(text: str) -> AFTM:
    data = json.loads(text)
    aftm = AFTM(data["package"])
    if data.get("entry"):
        aftm.set_entry(activity_node(data["entry"]))
    for name in data.get("activities", ()):
        aftm.add_node(activity_node(name))
    for name in data.get("fragments", ()):
        aftm.add_node(fragment_node(name))
    for edge in data.get("edges", ()):
        aftm.add_transition(
            _node_from(edge["src"], edge["src_kind"]),
            _node_from(edge["dst"], edge["dst_kind"]),
            host=edge.get("host"),
            trigger=edge.get("trigger", "static"),
        )
    visited = set(data.get("visited", ()))
    for node in list(aftm.iter_nodes()):
        if node.name in visited:
            aftm.mark_visited(node)
    return aftm


# ---------------------------------------------------------------------------
# Exploration report
# ---------------------------------------------------------------------------

def result_to_dict(result: ExplorationResult) -> Dict:
    """A machine-readable report of one FragDroid run."""
    fiva_visited, fiva_total = result.fragments_in_visited_activities()
    invocations: List[Dict] = [
        {
            "api": inv.api,
            "component": inv.component.cls,
            "source": inv.source.value,
            "step": inv.step,
        }
        for inv in result.api_invocations
    ]
    report: Dict = {
        "package": result.package,
        "coverage": {
            "activities": {
                "visited": sorted(result.visited_activities),
                "sum": result.activity_total,
                "rate": result.activity_rate,
            },
            "fragments": {
                "visited": sorted(result.visited_fragments),
                "sum": result.fragment_total,
                "rate": result.fragment_rate,
            },
            "fragments_in_visited_activities": {
                "visited": fiva_visited,
                "sum": fiva_total,
            },
        },
        "stats": {
            "test_cases": result.stats.test_cases,
            "failed_items": result.stats.failed_items,
            "reflection_failures": result.stats.reflection_failures,
            "crashes": result.stats.crashes,
            "restarts": result.stats.restarts,
            "events": result.stats.events,
            "aftm_updates": result.stats.aftm_updates,
        },
        "api_invocations": invocations,
        "aftm": aftm_to_dict(result.aftm),
    }
    # Observability extras appear only when the run was traced, so the
    # default (no-op tracer) report stays byte-identical.
    if result.spans:
        report["timing"] = timing_to_dict(result.spans)
    if result.metrics:
        report["metrics"] = result.metrics
    # Likewise the degradation section exists only for fault-injected
    # runs (repro.faults).
    if result.degradation is not None:
        report["degradation"] = result.degradation.to_dict()
    return report


def result_to_json(result: ExplorationResult) -> str:
    return json.dumps(result_to_dict(result), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# Timing (repro.obs)
# ---------------------------------------------------------------------------

def timing_to_dict(spans: List[Span]) -> List[Dict]:
    """Per-phase aggregates of a traced run, slowest phase first."""
    return [
        {
            "span": stat.name,
            "count": stat.count,
            "total_s": round(stat.total, 6),
            "mean_ms": round(stat.mean * 1000, 3),
            "p50_ms": round(stat.p50 * 1000, 3),
            "p90_ms": round(stat.p90 * 1000, 3),
            "p99_ms": round(stat.p99 * 1000, 3),
            "max_ms": round(stat.maximum * 1000, 3),
        }
        for stat in aggregate_spans(spans)
    ]


def timing_text(spans: List[Span], top: int = 10) -> str:
    """The human-readable per-phase timing table (CLI / docs)."""
    return render_summary(spans, top=top)
