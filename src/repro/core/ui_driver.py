"""The UI driving module (paper Section III, task list; Section VI-A).

Three responsibilities, exactly as the paper assigns them:

1. identify the current Activity and Fragment based on the previously
   extracted resource dependency;
2. trigger all clickable widgets one by one (top-to-bottom,
   left-to-right);
3. analyze the new UI state after clicking and update the AFTM.

Identification is deliberately *tool-eye-view*: the current Activity
comes from the Robotium driver, but Fragments are recognised only
through the widget resource-IDs on screen joined against the AFRM model
(Algorithm 3's output).  Fragments whose views carry runtime-generated
IDs — the dubsmash failure mode — are invisible here even though the
emulator knows they exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.core.queue import Operation, text_op
from repro.obs import NULL_EVENT_LOG, NULL_TRACER, EventLog, Tracer
from repro.obs.events import INPUT_GENERATED
from repro.robotium.solo import Solo
from repro.static.extractor import StaticInfo
from repro.static.input_dep import DEFAULT_TEXT


@dataclass(frozen=True)
class UiSnapshot:
    """What the tool can see of the current UI state."""

    activity: Optional[str]               # fully-qualified class or None
    fragments: FrozenSet[str]             # identified via resource dependency
    widget_ids: Tuple[str, ...]           # visible widget ids, screen order
    overlay: Optional[str]                # "dialog" | "popup" | None
    drawer_open: bool

    @property
    def signature(self) -> Tuple:
        """Hashable interface identity used for visited-interface checks."""
        return (self.activity, self.fragments, frozenset(self.widget_ids),
                self.overlay, self.drawer_open)

    @property
    def alive(self) -> bool:
        return self.activity is not None


class UiDriver:
    """Fragment-level UI state identification and input filling."""

    def __init__(self, solo: Solo, info: StaticInfo,
                 use_input_file: bool = True,
                 input_strategy: str = "default",
                 tracer: Optional[Tracer] = None,
                 event_log: Optional[EventLog] = None) -> None:
        self.solo = solo
        self.info = info
        self.use_input_file = use_input_file
        self.input_strategy = input_strategy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.events = event_log if event_log is not None else NULL_EVENT_LOG
        self._generator = None
        if input_strategy == "heuristic":
            from repro.core.inputgen import HeuristicInputGenerator

            self._generator = HeuristicInputGenerator(
                info.input_dep if use_input_file else None
            )

    def snapshot(self) -> UiSnapshot:
        with self.tracer.span("ui.snapshot", app=self.info.package) as span:
            widgets = self.solo.get_current_views()
            widget_ids = tuple(w.widget_id for w in widgets)
            overlay = None
            drawer = False
            for widget in widgets:
                if widget.layer in ("dialog", "popup"):
                    overlay = widget.layer
                elif widget.layer == "drawer":
                    drawer = True
            fragments = frozenset(
                self.info.resource_dep.identify_fragments(list(widget_ids))
            )
            span.set_attribute("widgets", len(widget_ids))
            return UiSnapshot(
                activity=self.solo.get_current_activity(),
                fragments=fragments,
                widget_ids=widget_ids,
                overlay=overlay,
                drawer_open=drawer,
            )

    def fill_inputs(self) -> List[Operation]:
        """Complete the input fields of the current interface (Case 3:
        'FragDroid will complete the input fields').  Returns the
        equivalent operations for test-case extension."""
        operations: List[Operation] = []
        with self.tracer.span("ui.fill_inputs", app=self.info.package):
            for widget in self.solo.get_current_views():
                if not widget.accepts_text:
                    continue
                if self._generator is not None:
                    value = self._generator.value_for(widget)
                elif self.use_input_file:
                    value = self.info.input_dep.value_for(widget.widget_id)
                else:
                    value = DEFAULT_TEXT
                self.solo.enter_text(widget.widget_id, value)
                self.tracer.inc("inputs.filled")
                self.events.emit(INPUT_GENERATED,
                                 step=self.solo.device.steps,
                                 app=self.info.package,
                                 widget=widget.widget_id,
                                 value=value, strategy=self.input_strategy)
                operations.append(text_op(widget.widget_id, value))
        return operations

    def dismiss_overlay(self) -> None:
        """Remove a dialog/popup 'by clicking on blank space' (Case 3)."""
        self.tracer.inc("overlays.dismissed")
        self.solo.click_on_screen(1040, 1900)

    def clickable_ids(self) -> List[str]:
        return [w.widget_id for w in self.solo.clickable_widgets()]
