"""Configuration for a FragDroid run.

The flags map one-to-one onto the paper's design choices, so the
ablation benchmarks can disable each mechanism independently:

* ``enable_reflection`` — Case 1/2's Java-reflection fragment switching;
* ``enable_forced_start`` — the second loop's empty-Intent starts of
  unvisited Activities (requires the instrumented manifest);
* ``enable_input_file`` — the analyst-filled input dependency
  (Section V-C); off means every EditText gets the "abc" filler;
* ``enable_click_exploration`` — Case 3's exhaustive clickable sweep.

``tracer`` opts the run into the observability layer (``repro.obs``):
the default :data:`~repro.obs.NULL_TRACER` keeps every span and counter
a no-op, so instrumented code behaves exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs import NULL_TRACER, Tracer


@dataclass
class FragDroidConfig:
    enable_reflection: bool = True
    enable_forced_start: bool = True
    enable_input_file: bool = True
    enable_click_exploration: bool = True
    # Analyst-provided values for the input-dependency file.
    input_values: Dict[str, str] = field(default_factory=dict)
    # "default": the random-ish "abc" filler the paper criticises;
    # "heuristic": context-driven value generation (Section VIII's
    # future-work direction, repro.core.inputgen).
    input_strategy: str = "default"
    # Queue maintenance strategy: "breadth" (the paper's width-first
    # queue) or "depth" (A3E-style), for the strategy ablation.
    queue_order: str = "breadth"

    def __post_init__(self) -> None:
        if self.input_strategy not in ("default", "heuristic"):
            raise ValueError(
                f"unknown input strategy: {self.input_strategy!r}"
            )
        if self.queue_order not in ("breadth", "depth"):
            raise ValueError(f"unknown queue order: {self.queue_order!r}")
    # Safety rails: a real run is bounded by wall-clock; ours by events.
    max_events: int = 20000
    max_queue_items: int = 2000
    max_restarts_per_item: int = 10
    # Observability (repro.obs): the default no-op tracer records
    # nothing and costs nothing; pass a real Tracer to collect spans
    # and counters across the whole pipeline.
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)

    @classmethod
    def activity_only(cls) -> "FragDroidConfig":
        """The 'traditional approach' configuration: no fragment-aware
        mechanisms (used by the baseline comparison)."""
        return cls(enable_reflection=False)
