"""Configuration for a FragDroid run.

The flags map one-to-one onto the paper's design choices, so the
ablation benchmarks can disable each mechanism independently:

* ``enable_reflection`` — Case 1/2's Java-reflection fragment switching;
* ``enable_forced_start`` — the second loop's empty-Intent starts of
  unvisited Activities (requires the instrumented manifest);
* ``enable_input_file`` — the analyst-filled input dependency
  (Section V-C); off means every EditText gets the "abc" filler;
* ``enable_click_exploration`` — Case 3's exhaustive clickable sweep.

``tracer`` opts the run into the observability layer (``repro.obs``):
the default :data:`~repro.obs.NULL_TRACER` keeps every span and counter
a no-op, so instrumented code behaves exactly as before.

``fault_profile`` / ``fault_plan`` opt the run into the fault-injection
layer (``repro.faults``): the default ``"none"`` resolves to no plan at
all, so the explorer builds the plain ``Adb`` path and outputs stay
byte-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.faults.plan import FAULT_PROFILES, FaultPlan, fault_plan
from repro.faults.retry import RetryPolicy
from repro.obs import NULL_EVENT_LOG, NULL_TRACER, EventLog, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import RunRegistry
    from repro.static.cache import StaticCache


@dataclass
class FragDroidConfig:
    enable_reflection: bool = True
    enable_forced_start: bool = True
    enable_input_file: bool = True
    enable_click_exploration: bool = True
    # Analyst-provided values for the input-dependency file.
    input_values: Dict[str, str] = field(default_factory=dict)
    # "default": the random-ish "abc" filler the paper criticises;
    # "heuristic": context-driven value generation (Section VIII's
    # future-work direction, repro.core.inputgen).
    input_strategy: str = "default"
    # Queue maintenance strategy: "breadth" (the paper's width-first
    # queue) or "depth" (A3E-style), for the strategy ablation.
    queue_order: str = "breadth"
    # Safety rails: a real run is bounded by wall-clock; ours by events.
    max_events: int = 20000
    max_queue_items: int = 2000
    max_restarts_per_item: int = 10
    # Observability (repro.obs): the default no-op tracer records
    # nothing and costs nothing; pass a real Tracer to collect spans
    # and counters across the whole pipeline.
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)
    # Flight recorder (repro.obs.events): the default no-op log drops
    # every event at constant cost; pass a real EventLog (optionally
    # with a JsonlSink) to record the run's typed event timeline.
    event_log: EventLog = field(default=NULL_EVENT_LOG, repr=False,
                                compare=False)
    # Fault injection & resilience (repro.faults).  Either name a
    # profile ("none" | "mild" | "hostile") + seed, or pass a concrete
    # FaultPlan (which wins).  A plan that can inject something flips
    # the explorer into resilient mode: FaultyAdb with retries, crash
    # re-enqueueing, and widget quarantine.
    fault_profile: str = "none"
    fault_seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    # Retry schedule for adb commands under faults; None = the
    # RetryPolicy defaults.
    retry_policy: Optional[RetryPolicy] = None
    # Strikes (crashes/hangs) before a widget is quarantined.
    quarantine_threshold: int = 3
    # Content-addressed memoization of the static phase
    # (repro.static.cache).  None (the default) analyzes every APK from
    # scratch; a StaticCache skips decode + Algorithms 1–3 on digest
    # hits.  Cache-served runs carry StaticInfo.decoded=None.
    static_cache: Optional["StaticCache"] = field(default=None, repr=False,
                                                  compare=False)
    # Longitudinal run registry (repro.obs.registry).  None (the
    # default) records nothing; a RunRegistry makes ``explore_many``
    # persist one content-addressed run record at the end of each
    # sweep, which `repro runs`/`repro regress` diff and gate on.
    run_registry: Optional["RunRegistry"] = field(default=None, repr=False,
                                                  compare=False)
    # Correlation id for every span this run records (repro.serve):
    # the scheduler stamps a job's trace id here so worker spans —
    # thread or process backend — land on the job's trace instead of
    # starting fresh ones.  None (the default) keeps per-sweep traces.
    # Observer-only: excluded from the registry's config fingerprint.
    trace_id: Optional[int] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.input_strategy not in ("default", "heuristic"):
            raise ValueError(
                f"unknown input strategy: {self.input_strategy!r}"
            )
        if self.queue_order not in ("breadth", "depth"):
            raise ValueError(f"unknown queue order: {self.queue_order!r}")
        for rail in ("max_events", "max_queue_items",
                     "max_restarts_per_item", "quarantine_threshold"):
            value = getattr(self, rail)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise ValueError(
                    f"{rail} must be a positive integer, got {value!r}"
                )
        if self.trace_id is not None and (
                not isinstance(self.trace_id, int)
                or isinstance(self.trace_id, bool)):
            raise ValueError(
                f"trace_id must be an integer or None, got {self.trace_id!r}"
            )
        if self.fault_profile not in FAULT_PROFILES:
            raise ValueError(
                f"unknown fault profile: {self.fault_profile!r}; "
                f"choose from {sorted(FAULT_PROFILES)}"
            )
        if self.fault_plan is None and self.fault_profile != "none":
            self.fault_plan = fault_plan(self.fault_profile,
                                         seed=self.fault_seed)

    @property
    def faults_enabled(self) -> bool:
        """Whether this run injects faults (and runs resiliently)."""
        return self.fault_plan is not None and self.fault_plan.enabled

    @classmethod
    def activity_only(cls) -> "FragDroidConfig":
        """The 'traditional approach' configuration: no fragment-aware
        mechanisms (used by the baseline comparison)."""
        return cls(enable_reflection=False)
