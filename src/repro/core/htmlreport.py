"""Self-contained HTML report for one exploration run.

A single ``report.html`` an analyst can open or attach to a ticket:
run summary, coverage tables, the AFTM edge list, the sensitive-API
attribution table, and the trace.  Plain semantic HTML tables — no
external assets, no scripts.
"""

from __future__ import annotations

import html
from typing import List

from repro.core.explorer import ExplorationResult
from repro.core.sensitive_analysis import relations_from_invocations
from repro.obs import timing_rows

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; line-height: 1.45; }
table { border-collapse: collapse; margin: 0.75rem 0 1.5rem; }
th, td { border: 1px solid #bbb; padding: 0.3rem 0.6rem;
         text-align: left; font-size: 0.92rem; }
th { background: #f0f0f0; }
caption { text-align: left; font-weight: 600; padding: 0.25rem 0; }
code { background: #f6f6f6; padding: 0 0.25rem; }
details { margin: 1rem 0; }
""".strip()


def _esc(value: object) -> str:
    return html.escape(str(value))


def _table(caption: str, headers: List[str], rows: List[List[object]]) -> str:
    parts = [f"<table><caption>{_esc(caption)}</caption><tr>"]
    parts.extend(f"<th>{_esc(h)}</th>" for h in headers)
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        parts.extend(f"<td>{_esc(cell)}</td>" for cell in row)
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def render_html_report(result: ExplorationResult) -> str:
    """The complete document as a string."""
    fiva_visited, fiva_total = result.fragments_in_visited_activities()
    stats = result.stats

    summary_rows = [
        ["Activities", f"{len(result.visited_activities)} / "
                       f"{result.activity_total}",
         f"{result.activity_rate:.1%}"],
        ["Fragments", f"{len(result.visited_fragments)} / "
                      f"{result.fragment_total}",
         f"{result.fragment_rate:.1%}" if result.fragment_total else "n/a"],
        ["Fragments in visited activities",
         f"{fiva_visited} / {fiva_total}", ""],
        ["Distinct interfaces", stats.distinct_interfaces, ""],
        ["Test cases", stats.test_cases,
         f"{len(result.passing_test_cases)} passing"],
        ["Events / crashes / restarts",
         f"{stats.events} / {stats.crashes} / {stats.restarts}", ""],
        ["Reflection failures", stats.reflection_failures, ""],
    ]

    visited = set(result.visited_activities) | set(result.visited_fragments)
    component_rows = []
    for name in sorted(result.info.activities):
        component_rows.append(
            ["Activity", name,
             "visited" if name in visited else "unvisited"]
        )
    for name in sorted(result.info.fragments):
        component_rows.append(
            ["Fragment", name,
             "visited" if name in visited else "unvisited"]
        )

    edge_rows = [
        [edge.kind.name, edge.src.simple_name, edge.dst.simple_name,
         edge.host.rsplit(".", 1)[-1] if edge.host else "",
         edge.trigger]
        for edge in sorted(result.aftm.edges)
    ]

    relations = relations_from_invocations(result.package,
                                           result.api_invocations)
    api_rows = [
        [relation.api, relation.symbol,
         "activity" if relation.by_activity else "",
         "fragment" if relation.by_fragment else ""]
        for relation in relations
    ]

    trace_lines = "\n".join(_esc(event) for event in result.trace)

    # Per-phase timing appears only for traced runs, so the default
    # (no-op tracer) report stays byte-identical.
    timing_table = ""
    if result.spans:
        timing_table = _table(
            "Per-phase timing",
            ["Span", "Count", "Total (s)", "Mean (ms)", "p50 (ms)",
             "p90 (ms)", "p99 (ms)", "Max (ms)"],
            timing_rows(result.spans),
        )

    # The degradation section exists only for fault-injected runs.
    degradation_table = ""
    if result.degradation is not None:
        deg = result.degradation
        fault_rows = [[kind, count]
                      for kind, count in sorted(deg.faults.items())]
        degradation_table = _table(
            f"Degradation — fault profile "
            f"'{deg.profile}' (seed {deg.seed})",
            ["Metric", "Value"],
            [["Faults injected", deg.total_faults],
             *fault_rows,
             ["Retries (recovered / gave up)",
              f"{deg.retries} ({deg.recoveries} / {deg.giveups})"],
             ["Backoff (simulated s)", f"{deg.backoff_s:.2f}"],
             ["Reconnects", deg.reconnects],
             ["Quarantined widgets",
              ", ".join(deg.quarantined) or "none"],
             ["Items re-enqueued / abandoned",
              f"{deg.requeued_items} / {deg.abandoned_items}"]],
        )

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>FragDroid report — {_esc(result.package)}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>FragDroid exploration report</h1>
<p>Package: <code>{_esc(result.package)}</code></p>
{_table("Run summary", ["Metric", "Value", "Rate"], summary_rows)}
{timing_table}{degradation_table}{_table("Components", ["Kind", "Class", "Status"], component_rows)}
{_table("AFTM transitions",
        ["Kind", "From", "To", "Host", "Trigger"], edge_rows)}
{_table("Sensitive API relations",
        ["API", "Symbol", "By activity", "By fragment"], api_rows)}
<details>
<summary>Exploration trace ({len(result.trace)} events)</summary>
<pre>{trace_lines}</pre>
</details>
</body>
</html>
"""
