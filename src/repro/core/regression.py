"""Regression testing with generated suites.

The point of generating Robotium test cases is to *keep* them: when the
app's next version lands, the suite replays against it and every broken
path or fresh crash is a regression signal.  This module replays a
previous exploration's test cases on a new APK and classifies the
outcomes — the workflow the paper's generated artifacts enable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.adb.bridge import Adb
from repro.adb.instrumentation import instrument_manifest
from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.core.explorer import ExplorationResult
from repro.core.testcase import TestCase
from repro.errors import ReproError
from repro.robotium.solo import Solo

PASS = "pass"
BROKEN = "broken"   # an operation no longer applies (UI drifted)
CRASH = "crash"     # the new version force-closed on an old path


@dataclass(frozen=True)
class RegressionOutcome:
    case: str
    status: str
    detail: str = ""


@dataclass
class RegressionReport:
    package: str
    outcomes: List[RegressionOutcome] = field(default_factory=list)

    def of_status(self, status: str) -> List[RegressionOutcome]:
        return [o for o in self.outcomes if o.status == status]

    @property
    def passed(self) -> int:
        return len(self.of_status(PASS))

    @property
    def broken(self) -> int:
        return len(self.of_status(BROKEN))

    @property
    def crashed(self) -> int:
        return len(self.of_status(CRASH))

    @property
    def ok(self) -> bool:
        return self.broken == 0 and self.crashed == 0

    def render(self) -> str:
        lines = [
            f"regression run for {self.package}: "
            f"{self.passed} passed, {self.broken} broken, "
            f"{self.crashed} crashed"
        ]
        for outcome in self.outcomes:
            if outcome.status != PASS:
                lines.append(f"  {outcome.case}: {outcome.status}"
                             f" — {outcome.detail}")
        return "\n".join(lines)


def run_regression(
    baseline: ExplorationResult,
    new_apk: ApkPackage,
    device: Optional[Device] = None,
) -> RegressionReport:
    """Replay the baseline's generated suite against a new version."""
    if new_apk.package != baseline.package:
        raise ReproError(
            f"suite is for {baseline.package}, APK is {new_apk.package}"
        )
    device = device or Device()
    adb = Adb(device)
    solo = Solo(device)
    adb.install(instrument_manifest(new_apk))
    report = RegressionReport(package=baseline.package)
    for case in baseline.passing_test_cases:
        device.force_stop(baseline.package)
        crashes_before = device.crash_count
        try:
            case.run(solo, adb)
        except ReproError as exc:
            if device.crash_count > crashes_before:
                report.outcomes.append(
                    RegressionOutcome(case.name, CRASH, str(exc))
                )
            else:
                report.outcomes.append(
                    RegressionOutcome(case.name, BROKEN, str(exc))
                )
            continue
        report.outcomes.append(RegressionOutcome(case.name, PASS))
    return report
