"""Test-suite minimization (TrimDroid's theme, applied to our output).

TrimDroid's contribution is "a comparable coverage … using fewer test
cases"; after a FragDroid run we can do the same to our own generated
suite: pick the smallest subset of passing test cases that still
reaches every visited component.  Greedy set cover — optimal is
NP-hard, greedy is the standard ln(n)-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.adb.bridge import Adb
from repro.adb.instrumentation import instrument_manifest
from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.core.explorer import ExplorationResult
from repro.core.testcase import TestCase
from repro.errors import ReproError
from repro.obs import NULL_TRACER, Tracer
from repro.robotium.solo import Solo


@dataclass
class MinimizedSuite:
    cases: List[TestCase]
    covered: Set[str]
    original_size: int
    # Probe replays that broke before finishing: their observed coverage
    # is a truncation, not the case's full reach.  A non-zero count
    # means the greedy cover ran on under-counted inputs.
    truncated_probes: int = 0

    @property
    def reduction(self) -> float:
        if not self.original_size:
            return 0.0
        return 1.0 - len(self.cases) / self.original_size

    def render(self) -> str:
        text = (
            f"minimized suite: {len(self.cases)}/{self.original_size} "
            f"test cases ({self.reduction:.0%} fewer) covering "
            f"{len(self.covered)} components"
        )
        if self.truncated_probes:
            text += (f" ({self.truncated_probes} coverage probe"
                     f"{'s' if self.truncated_probes != 1 else ''} "
                     "truncated)")
        return text


def _coverage_of_case(case: TestCase, apk: ApkPackage,
                      known_components: Set[str],
                      ) -> Tuple[Set[str], bool]:
    """Replay one case on a scratch device; observe which components
    appear (activity on top after each op + attached fragments).

    Returns ``(covered, truncated)``: a probe that breaks mid-replay
    keeps the coverage observed so far but flags the truncation instead
    of silently under-counting.
    """
    device = Device()
    adb = Adb(device)
    adb.install(instrument_manifest(apk))
    solo = Solo(device)
    covered: Set[str] = set()
    truncated = False

    try:
        # Replay op by op, sampling after each step.
        for index in range(1, len(case.operations) + 1):
            prefix = TestCase(case.package, "Probe",
                              case.operations[:index])
            device.force_stop(case.package)
            prefix.run(solo, adb)
            activity = device.current_activity_name()
            if activity in known_components:
                covered.add(activity)
            for fragment in device.current_fragment_classes():
                if fragment in known_components:
                    covered.add(fragment)
    except ReproError:
        truncated = True
    return covered, truncated


def minimize_suite(result: ExplorationResult,
                   apk: ApkPackage,
                   tracer: Optional[Tracer] = None) -> MinimizedSuite:
    """Greedy set cover of visited components by passing test cases.

    Ties on coverage gain break toward the lowest case index — the
    greedy pick is fully deterministic, never dict-order dependent.
    ``tracer`` (optional) counts truncated coverage probes on the
    ``minimize.truncated_probes`` metric.
    """
    tracer = tracer or NULL_TRACER
    universe = set(result.visited_activities) | set(result.visited_fragments)
    coverage: Dict[int, Set[str]] = {}
    truncated_probes = 0
    for index, case in enumerate(result.passing_test_cases):
        coverage[index], truncated = _coverage_of_case(case, apk, universe)
        if truncated:
            truncated_probes += 1
            tracer.inc("minimize.truncated_probes")

    chosen: List[TestCase] = []
    covered: Set[str] = set()
    remaining = dict(coverage)
    while covered != universe and remaining:
        best_index, best_gain = None, -1
        # Ascending index + strict improvement = lowest index wins ties.
        for index in sorted(remaining):
            gain = len(remaining[index] - covered)
            if gain > best_gain:
                best_index, best_gain = index, gain
        if best_index is None or best_gain <= 0:
            break
        covered |= remaining.pop(best_index)
        chosen.append(result.passing_test_cases[best_index])
    return MinimizedSuite(
        cases=chosen,
        covered=covered,
        original_size=len(result.passing_test_cases),
        truncated_probes=truncated_probes,
    )
