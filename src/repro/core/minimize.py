"""Test-suite minimization (TrimDroid's theme, applied to our output).

TrimDroid's contribution is "a comparable coverage … using fewer test
cases"; after a FragDroid run we can do the same to our own generated
suite: pick the smallest subset of passing test cases that still
reaches every visited component.  Greedy set cover — optimal is
NP-hard, greedy is the standard ln(n)-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.adb.bridge import Adb
from repro.adb.instrumentation import instrument_manifest
from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.core.explorer import ExplorationResult
from repro.core.testcase import TestCase
from repro.errors import ReproError
from repro.robotium.solo import Solo


@dataclass
class MinimizedSuite:
    cases: List[TestCase]
    covered: Set[str]
    original_size: int

    @property
    def reduction(self) -> float:
        if not self.original_size:
            return 0.0
        return 1.0 - len(self.cases) / self.original_size

    def render(self) -> str:
        return (
            f"minimized suite: {len(self.cases)}/{self.original_size} "
            f"test cases ({self.reduction:.0%} fewer) covering "
            f"{len(self.covered)} components"
        )


def _coverage_of_case(case: TestCase, apk: ApkPackage,
                      known_components: Set[str]) -> Set[str]:
    """Replay one case on a scratch device; observe which components
    appear (activity on top after each op + attached fragments)."""
    device = Device()
    adb = Adb(device)
    adb.install(instrument_manifest(apk))
    solo = Solo(device)
    covered: Set[str] = set()

    try:
        # Replay op by op, sampling after each step.
        from repro.core.queue import OpKind

        for index in range(1, len(case.operations) + 1):
            prefix = TestCase(case.package, "Probe",
                              case.operations[:index])
            device.force_stop(case.package)
            prefix.run(solo, adb)
            activity = device.current_activity_name()
            if activity in known_components:
                covered.add(activity)
            for fragment in device.current_fragment_classes():
                if fragment in known_components:
                    covered.add(fragment)
    except ReproError:
        pass
    return covered


def minimize_suite(result: ExplorationResult,
                   apk: ApkPackage) -> MinimizedSuite:
    """Greedy set cover of visited components by passing test cases."""
    universe = set(result.visited_activities) | set(result.visited_fragments)
    coverage: Dict[int, Set[str]] = {}
    for index, case in enumerate(result.passing_test_cases):
        coverage[index] = _coverage_of_case(case, apk, universe)

    chosen: List[TestCase] = []
    covered: Set[str] = set()
    remaining = dict(coverage)
    while covered != universe and remaining:
        best_index, best_gain = None, -1
        for index, cov in remaining.items():
            gain = len(cov - covered)
            if gain > best_gain:
                best_index, best_gain = index, gain
        if best_index is None or best_gain <= 0:
            break
        covered |= remaining.pop(best_index)
        chosen.append(result.passing_test_cases[best_index])
    return MinimizedSuite(
        cases=chosen,
        covered=covered,
        original_size=len(result.passing_test_cases),
    )
