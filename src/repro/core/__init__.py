"""FragDroid core: the evolutionary test case generation loop.

The paper's right-hand pipeline (Figure 4): the UI transition queue is
seeded from the static AFTM by breadth-first traversal; queue items are
compiled to Robotium test cases and executed; the UI driver identifies
the reached interface on the Fragment level and applies the Case 1/2/3
rules; AFTM updates feed new queue items until the queue drains with no
model change, after which unvisited Activities are forcibly started with
empty Intents (Section VI-C).
"""

from repro.core.config import FragDroidConfig
from repro.core.coverage import CoverageReport, CoverageRow
from repro.core.explorer import ExplorationResult, FragDroid
from repro.core.queue import Operation, UIQueue, UIQueueItem
from repro.core.sensitive_analysis import SensitiveApiReport, build_api_report
from repro.core.testcase import TestCase

__all__ = [
    "CoverageReport",
    "CoverageRow",
    "ExplorationResult",
    "FragDroid",
    "FragDroidConfig",
    "Operation",
    "SensitiveApiReport",
    "TestCase",
    "UIQueue",
    "UIQueueItem",
    "build_api_report",
]
