"""FragDroid: the evolutionary exploration loop (paper Sections III & VI).

The run proceeds exactly as Figure 4 describes:

1. *Static Information Extraction* builds the initial AFTM and the
   dependency metadata.
2. The manifest is instrumented (every Activity gains a MAIN action) and
   the repackaged APK is installed.
3. The UI transition queue is seeded and then maintained width-first;
   each item is compiled into a Robotium test case, installed, and run
   through ``am instrument``.
4. After every run the UI driver identifies the reached interface on the
   Fragment level and the three cases of Section VI-A apply:

   * **Case 1** — an unvisited Activity: enqueue one reflection item per
     dependent Fragment (when the Activity uses a FragmentManager);
   * **Case 2** — an unvisited Fragment: mark it visited; explicit click
     paths later replace reflection as the preferred trigger;
   * **Case 3** — a visited interface: complete the input fields and
     click every clickable control top-to-bottom / left-to-right,
     dismissing popups via blank space, restarting after crashes, and
     recording every interface change as an AFTM update.

5. When the queue drains and the AFTM stops changing, unvisited
   Activities are forcibly invoked through empty Intents (Section VI-C)
   and handled with normal processing; a second drain ends the test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.adb.bridge import Adb
from repro.adb.instrumentation import instrument_manifest
from repro.android.device import Device
from repro.apk.package import ApkPackage
from repro.core.config import FragDroidConfig
from repro.core.queue import (
    Operation,
    OpKind,
    UIQueue,
    UIQueueItem,
    click_op,
    force_start_op,
    launch_op,
    reflect_op,
)
from repro.core.testcase import TestCase
from repro.core.ui_driver import UiDriver, UiSnapshot
from repro.errors import (
    ActivityNotFoundError,
    CommandTimeoutError,
    ReflectionError,
    SecurityException,
    TestCaseError,
    TransientError,
)
from repro.faults.adb import FaultyAdb
from repro.faults.degradation import Degradation
from repro.faults.quarantine import WidgetQuarantine
from repro.obs import Event, Span
from repro.obs.events import (
    API_OBSERVED,
    CASE_DECISION,
    CRASH_RECOVERY,
    FAULT_INJECTED,
    FORCED_START,
    QUARANTINE,
    REFLECTION_SWITCH,
    RUN_END,
    RUN_START,
    STATE_DISCOVERED,
    TRANSITION,
    WIDGET_CLICKED,
)
from repro.robotium.solo import Solo
from repro.static.aftm import AFTM, Node, NodeKind, activity_node, fragment_node
from repro.static.extractor import StaticInfo, extract_static_info
from repro.types import ApiInvocation


@dataclass
class ExplorationStats:
    test_cases: int = 0
    failed_items: int = 0
    reflection_failures: int = 0
    crashes: int = 0
    restarts: int = 0
    events: int = 0
    aftm_updates: int = 0
    # Distinct fragment-level UI states processed — the quantity
    # Challenge 1 is about: an Activity-grained tool sees at most one
    # state per Activity, a Fragment-aware one sees each transformation.
    distinct_interfaces: int = 0


@dataclass(frozen=True)
class TraceEvent:
    """One line of the run trace: what the explorer did and saw."""

    step: int
    kind: str    # item | visit | transition | crash | reflection-failure | forced-start
    detail: str

    def __str__(self) -> str:
        return f"{self.step:06d} {self.kind:19} {self.detail}"


@dataclass
class ExplorationResult:
    """Everything a FragDroid run produces for one app."""

    package: str
    info: StaticInfo
    aftm: AFTM
    visited_activities: Set[str]
    visited_fragments: Set[str]
    api_invocations: List[ApiInvocation]
    test_cases: List[TestCase]
    stats: ExplorationStats
    trace: List[TraceEvent] = field(default_factory=list)
    # First recorded operation path that reached each visited component
    # (class name -> operations).  The targeted mode replays these.
    paths: Dict[str, Tuple] = field(default_factory=dict)
    # The subset of test_cases that executed successfully — the suite a
    # regression run replays (probe cases that failed by design, like
    # reflection attempts on args-fragments, are excluded).
    passing_test_cases: List[TestCase] = field(default_factory=list)
    # Observability (repro.obs): the run's finished spans and a metrics
    # snapshot — both empty unless the config carried an enabled tracer.
    spans: List[Span] = field(default_factory=list, repr=False)
    metrics: Dict = field(default_factory=dict, repr=False)
    # Flight recorder (repro.obs.events): this run's typed event
    # timeline — empty unless the config carried an enabled EventLog.
    events: List[Event] = field(default_factory=list, repr=False)
    # Graceful degradation (repro.faults): faults seen, retries spent,
    # quarantined widgets and recovery outcomes — None unless the run
    # carried an active fault plan.
    degradation: Optional[Degradation] = None

    def trace_text(self) -> str:
        """The run trace as readable lines."""
        return "\n".join(str(event) for event in self.trace)

    # -- Table I quantities ----------------------------------------------------

    @property
    def activity_total(self) -> int:
        return len(self.info.activities)

    @property
    def fragment_total(self) -> int:
        return len(self.info.fragments)

    @property
    def activity_rate(self) -> float:
        total = self.activity_total
        return len(self.visited_activities) / total if total else 0.0

    @property
    def fragment_rate(self) -> float:
        total = self.fragment_total
        return len(self.visited_fragments) / total if total else 0.0

    def fragments_in_visited_activities(self) -> Tuple[int, int]:
        """(visited, total) over Fragments whose host Activity was
        visited — Table I's third column group."""
        total = 0
        visited = 0
        for fragment in self.info.fragments:
            hosts = self.info.fragment_hosts.get(fragment, [])
            if not any(host in self.visited_activities for host in hosts):
                continue
            total += 1
            if fragment in self.visited_fragments:
                visited += 1
        return visited, total

    def coverage_report(self) -> str:
        fiva_visited, fiva_total = self.fragments_in_visited_activities()
        lines = [
            f"package: {self.package}",
            f"activities: {len(self.visited_activities)}/{self.activity_total}"
            f" ({self.activity_rate:.2%})",
            f"fragments:  {len(self.visited_fragments)}/{self.fragment_total}"
            f" ({self.fragment_rate:.2%})",
            f"fragments in visited activities: {fiva_visited}/{fiva_total}",
            f"sensitive API invocations: {len(self.api_invocations)}",
            f"test cases: {self.stats.test_cases}, "
            f"events: {self.stats.events}, crashes: {self.stats.crashes}",
        ]
        if self.degradation is not None:
            lines.append(self.degradation.render())
        return "\n".join(lines)


class FragDroid:
    """The exploration framework, bound to one device."""

    def __init__(self, device: Device,
                 config: Optional[FragDroidConfig] = None) -> None:
        self.device = device
        self.config = config or FragDroidConfig()
        if self.config.faults_enabled:
            self.adb: Adb = FaultyAdb(
                device,
                plan=self.config.fault_plan,
                policy=self.config.retry_policy,
                tracer=self.config.tracer,
                events=self.config.event_log,
            )
        else:
            self.adb = Adb(device, tracer=self.config.tracer)
        self.solo = Solo(device)

    # -- public API ----------------------------------------------------------------

    def explore(self, apk: ApkPackage,
                info: Optional[StaticInfo] = None) -> ExplorationResult:
        """Run the full pipeline on one APK."""
        config = self.config
        tracer = config.tracer
        events = config.event_log
        if isinstance(self.adb, FaultyAdb):
            # Faults fire under the app actually being explored, not
            # the scope name the plan was built with.
            self.adb.event_app = apk.package
        events.emit(RUN_START, step=self.device.steps, app=apk.package)
        with tracer.span("explore", app=apk.package) as root:
            if info is None:
                info = extract_static_info(
                    apk,
                    input_values=config.input_values
                    if config.enable_input_file else None,
                    tracer=tracer,
                    cache=config.static_cache,
                )
            installed = (instrument_manifest(apk)
                         if config.enable_forced_start else apk)
            self.adb.install(installed)

            run = _Run(self, apk.package, info)
            run.seed_queue()
            run.drain_queue()
            if config.enable_forced_start:
                run.enqueue_forced_starts()
                run.drain_queue()
            result = run.result()
            root.set_attribute("termination", run.termination_reason())
            trace_id = root.trace_id
        events.emit(RUN_END, step=self.device.steps, app=apk.package,
                    termination=run.termination_reason())
        if tracer.enabled:
            result.spans = tracer.spans_in_trace(trace_id)
            result.metrics = tracer.metrics.snapshot()
        if events.enabled:
            result.events = events.events(app=apk.package)
        return result


class _Run:
    """Mutable state of one exploration run."""

    def __init__(self, frag: FragDroid, package: str, info: StaticInfo) -> None:
        self.frag = frag
        self.config = frag.config
        self.device = frag.device
        self.adb = frag.adb
        self.solo = frag.solo
        self.package = package
        self.info = info
        self.aftm = info.aftm
        self.tracer = frag.config.tracer
        self.events = frag.config.event_log
        self.driver = UiDriver(
            frag.solo, info,
            use_input_file=frag.config.enable_input_file,
            input_strategy=frag.config.input_strategy,
            tracer=self.tracer,
            event_log=self.events,
        )
        self.queue = UIQueue(limit=frag.config.max_queue_items,
                             order=frag.config.queue_order)
        self.stats = ExplorationStats()
        self.test_cases: List[TestCase] = []
        self.passing_test_cases: List[TestCase] = []
        self.trace: List[TraceEvent] = []
        self._paths: Dict[str, Tuple[Operation, ...]] = {}
        self._processed_signatures: Set[Tuple] = set()
        self._case1_done: Set[str] = set()
        self._api_start = len(self.device.api_monitor.invocations)
        # Resilience (repro.faults): only an active fault plan arms the
        # recovery machinery, so fault-free runs behave — and render —
        # exactly as before.
        self._resilient = self.config.faults_enabled
        self.quarantine = WidgetQuarantine(
            threshold=self.config.quarantine_threshold,
            active=self._resilient,
        )
        self._item_restarts: Dict[Tuple, int] = {}
        self._requeued_items = 0
        self._abandoned_items = 0

    # -- queue management ---------------------------------------------------------

    def seed_queue(self) -> None:
        """Initialize the UI transition queue from the original AFTM.

        The entry item is the only one with concrete operations; every
        other statically known node becomes reachable as Cases 1–3
        attach operations to discovered paths (the BFS order of the
        model is preserved through FIFO processing)."""
        entry = self.aftm.entry
        with self.tracer.span("explorer.queue", app=self.package,
                              op="seed"):
            self.queue.push(
                UIQueueItem(
                    method="launch",
                    start=None,
                    target=entry,
                    operations=(launch_op(),),
                )
            )

    def drain_queue(self) -> None:
        while self.queue and not self._budget_exhausted():
            self.tracer.observe("queue.depth", len(self.queue))
            item = self.queue.pop()
            with self.tracer.span("explorer.test_case", app=self.package,
                                  method=item.method) as span:
                executed = self._execute_item(item)
                span.set_attribute("ok", executed)
                if executed:
                    self._process_interface(item)

    def termination_reason(self) -> str:
        """Why the run stopped: the queue drained (the paper's AFTM
        fixpoint) or the event budget ran out first."""
        return "budget-exhausted" if self._budget_exhausted() else "queue-drained"

    def enqueue_forced_starts(self) -> None:
        """Section VI-C: forcibly invoke unvisited Activities through
        empty Intents."""
        with self.tracer.span("explorer.queue", app=self.package,
                              op="forced-start") as span:
            enqueued = 0
            for node in self.aftm.unvisited_activities():
                component = f"{self.package}/{node.name}"
                self.queue.push(
                    UIQueueItem(
                        method="forced-start",
                        start=None,
                        target=node,
                        operations=(force_start_op(component),),
                    )
                )
                enqueued += 1
            span.set_attribute("enqueued", enqueued)

    def _budget_exhausted(self) -> bool:
        return self.device.steps >= self.config.max_events

    def _in_target_app(self) -> bool:
        foreground = self.device.foreground
        return foreground is not None and foreground.package == self.package

    def _trace(self, kind: str, detail: str) -> None:
        self.trace.append(TraceEvent(self.device.steps, kind, detail))

    # -- item execution --------------------------------------------------------------

    def _execute_item(self, item: UIQueueItem) -> bool:
        """Compile the item to a Robotium test case and run it."""
        self.device.force_stop(self.package)
        case = TestCase(
            package=self.package,
            name=f"GeneratedTest{self.stats.test_cases:04d}",
            operations=item.operations,
        )
        self.stats.test_cases += 1
        self.test_cases.append(case)
        self._trace("item", str(item))
        crashes_before = self.device.crash_count
        try:
            case.install_and_run(self.solo, self.adb)
        except ReflectionError as exc:
            self.stats.reflection_failures += 1
            self._trace("reflection-failure", str(exc))
            return False
        except TransientError as exc:
            # An injected fault survived the adb retry budget (or an
            # ANR hit mid-replay): the item was interrupted by the
            # environment, not the app — relaunch it later.
            self.stats.failed_items += 1
            self._trace("fault", str(exc))
            self._requeue_interrupted(item)
            return False
        except (TestCaseError, ActivityNotFoundError, SecurityException) as exc:
            if self._resilient and self.device.crash_count > crashes_before:
                # The app force-closed mid-item (spurious or real):
                # record the crash and re-enqueue the interrupted item.
                self.stats.crashes += 1
                self._trace("crash", str(exc))
                self._requeue_interrupted(item)
                return False
            self.stats.failed_items += 1
            self._trace("item-failed", str(exc))
            return False
        if item.method == "reflection":
            self.tracer.inc("reflection.switches")
            self.events.emit(REFLECTION_SWITCH, step=self.device.steps,
                             app=self.package, target=str(item.target))
        elif item.method == "forced-start":
            self.tracer.inc("forced.starts")
            self.events.emit(FORCED_START, step=self.device.steps,
                             app=self.package, target=str(item.target))
        self.passing_test_cases.append(case)
        return True

    def _requeue_interrupted(self, item: UIQueueItem) -> None:
        """Crash/fault recovery: put the interrupted item back on the
        queue for a fresh relaunch, honouring ``max_restarts_per_item``.
        An item that exhausts its budget is abandoned — recorded in the
        degradation section instead of eating the rest of the run."""
        if not self._resilient:
            return
        key = (item.method, item.target, item.operations)
        restarts = self._item_restarts.get(key, 0)
        if restarts >= self.config.max_restarts_per_item:
            self._abandoned_items += 1
            self.tracer.inc("resilience.abandoned_items")
            self._trace("abandoned", str(item))
            self.events.emit(CRASH_RECOVERY, step=self.device.steps,
                             app=self.package, action="abandon",
                             item=str(item))
            return
        self._item_restarts[key] = restarts + 1
        self._requeued_items += 1
        self.stats.restarts += 1
        self.tracer.inc("resilience.requeues")
        with self.tracer.span("explorer.queue", app=self.package,
                              op="requeue"):
            self.queue.requeue(item)
        self._trace("requeue", f"restart {restarts + 1}: {item}")
        self.events.emit(CRASH_RECOVERY, step=self.device.steps,
                         app=self.package, action="requeue",
                         restart=restarts + 1, item=str(item))

    def _replay(self, operations: Tuple[Operation, ...]) -> bool:
        """Restart the app and re-run a path (Case 3 restart handling)."""
        self.stats.restarts += 1
        self.device.force_stop(self.package)
        case = TestCase(self.package, "Replay", operations)
        try:
            case.run(self.solo, self.adb)
        except (TestCaseError, ReflectionError, ActivityNotFoundError,
                SecurityException, TransientError):
            return False
        return True

    # -- interface processing ------------------------------------------------------------

    def _process_interface(self, item: UIQueueItem) -> None:
        snapshot = self.driver.snapshot()
        if not snapshot.alive:
            return
        if not self._in_target_app():
            # An implicit intent escaped to another app: out of scope,
            # like a tester pressing Home. Back out and drop the item.
            self._trace("left-app", snapshot.activity or "?")
            self.solo.go_back()
            return
        self._register_visit(snapshot, item)
        if snapshot.signature in self._processed_signatures:
            return
        self._processed_signatures.add(snapshot.signature)
        if self.config.enable_click_exploration:
            self.events.emit(CASE_DECISION, step=self.device.steps,
                             app=self.package, case=3,
                             activity=snapshot.activity)
            with self.tracer.span("explorer.case3", app=self.package,
                                  activity=snapshot.activity) as span:
                self._click_sweep(item, snapshot)
                span.set_attribute("queue", len(self.queue))

    def _register_visit(self, snapshot: UiSnapshot,
                        item: UIQueueItem) -> None:
        """Mark visited nodes and apply Case 1 / Case 2."""
        activity = snapshot.activity
        assert activity is not None
        a_node = activity_node(activity)
        newly_visited = self.aftm.mark_visited(a_node)
        if newly_visited:
            self._trace("visit", f"activity {activity}")
            self.events.emit(STATE_DISCOVERED, step=self.device.steps,
                             app=self.package, component="activity",
                             name=activity)
        self._paths.setdefault(activity, item.operations)
        for fragment in snapshot.fragments:
            if not self.aftm.is_visited(fragment_node(fragment)):
                self._trace("visit", f"fragment {fragment}")
                self.events.emit(
                    STATE_DISCOVERED, step=self.device.steps,
                    app=self.package, component="fragment", name=fragment,
                    hosts=list(self.info.fragment_hosts.get(fragment, [])),
                )
            self._paths.setdefault(fragment, item.operations)
        if newly_visited or activity not in self._case1_done:
            self._case1_done.add(activity)
            with self.tracer.span("explorer.case1", app=self.package,
                                  activity=activity) as span:
                enqueued = self._case1_enqueue_fragments(activity, item)
                span.set_attribute("enqueued", enqueued)
                if enqueued:
                    self.events.emit(CASE_DECISION, step=self.device.steps,
                                     app=self.package, case=1,
                                     activity=activity, enqueued=enqueued)
        for fragment in snapshot.fragments:
            node = fragment_node(fragment)
            if self.aftm.is_visited(node):
                continue
            with self.tracer.span("explorer.case2", app=self.package,
                                  fragment=fragment):
                self.events.emit(CASE_DECISION, step=self.device.steps,
                                 app=self.package, case=2,
                                 fragment=fragment)
                self.aftm.mark_visited(node)

    def _case1_enqueue_fragments(self, activity: str,
                                 item: UIQueueItem) -> int:
        """Case 1: for an Activity that switches Fragments dynamically,
        enqueue one reflection item per dependent Fragment.  Returns the
        number of reflection items enqueued."""
        if not self.config.enable_reflection:
            return 0
        if not self.info.uses_manager.get(activity, False):
            return 0
        enqueued = 0
        for fragment in self.info.dependency.get(activity, ()):
            node = fragment_node(fragment)
            if self.aftm.is_visited(node):
                continue
            self.queue.push(
                item.extended("reflection", node, reflect_op(fragment))
            )
            enqueued += 1
        return enqueued

    # -- Case 3: the click sweep -----------------------------------------------------------

    def _click_sweep(self, item: UIQueueItem, origin: UiSnapshot) -> None:
        """Trigger all clickable widgets of a settled interface one by
        one, restarting and replaying the path whenever a click changes
        the interface or crashes the app."""
        text_operations = tuple(self.driver.fill_inputs())
        base_operations = item.operations + text_operations
        widget_ids = self.driver.clickable_ids()
        needs_replay = False
        restarts = 0
        for widget_id in widget_ids:
            if self._budget_exhausted():
                return
            if self.quarantine.blocked(widget_id):
                self.tracer.inc("resilience.quarantine_skips")
                continue
            if needs_replay:
                restarts += 1
                if restarts > self.config.max_restarts_per_item:
                    return
                if not self._replay(base_operations):
                    return
                needs_replay = False
            before = self.driver.snapshot()
            if not before.alive:
                return
            try:
                self.tracer.inc("clicks")
                self.events.emit(WIDGET_CLICKED, step=self.device.steps,
                                 app=self.package, widget=widget_id,
                                 activity=before.activity)
                self.solo.click_on_view(widget_id)
            except CommandTimeoutError as exc:
                # Injected ANR: the widget swallowed the tap.  Strike
                # it — a repeatedly hanging widget gets quarantined.
                self._trace("anr", f"{widget_id}: {exc}")
                self.events.emit(FAULT_INJECTED, step=self.device.steps,
                                 app=self.package, fault="anr",
                                 widget=widget_id)
                self._strike(widget_id, "hang")
                continue
            except Exception:
                continue
            if not self.device.app_alive:
                # FC: restart and continue under clicking (Case 3).
                self.stats.crashes += 1
                self._strike(widget_id, "crash")
                self.events.emit(CRASH_RECOVERY, step=self.device.steps,
                                 app=self.package, action="replay",
                                 widget=widget_id)
                needs_replay = True
                continue
            if not self._in_target_app():
                # The click fired an implicit intent into another app.
                self._trace("left-app",
                            self.device.current_activity_name() or "?")
                self.solo.go_back()
                needs_replay = True
                continue
            after = self.driver.snapshot()
            if after.signature == before.signature:
                continue
            if after.overlay is not None and before.overlay is None:
                # A dialog/menu popped up: remove it via blank space.
                self.driver.dismiss_overlay()
                if self.driver.snapshot().signature != before.signature:
                    needs_replay = True
                continue
            # The interface changed: update the AFTM and enqueue the new
            # interface, then restart for the remaining clicks.
            self._record_transition(before, after, widget_id)
            self._trace(
                "transition",
                f"{before.activity} --[{widget_id}]--> "
                f"{after.activity} fragments={sorted(after.fragments)}",
            )
            self.events.emit(TRANSITION, step=self.device.steps,
                             app=self.package, src=before.activity,
                             dst=after.activity, widget=widget_id,
                             fragments=sorted(after.fragments))
            follow_up = UIQueueItem(
                method="click",
                start=item.target,
                target=self._node_of(after),
                operations=base_operations + (click_op(widget_id),),
            )
            self.queue.push(follow_up)
            needs_replay = True

    def _strike(self, widget_id: str, kind: str) -> None:
        """Count a crash/hang against a widget; trace when the strike
        trips the circuit breaker (no-op unless faults are active)."""
        if self.quarantine.record(widget_id, kind):
            self.tracer.inc("resilience.quarantined_widgets")
            self._trace("quarantine", f"{widget_id} after "
                                      f"{self.quarantine.strikes(widget_id)} "
                                      f"{kind} strikes")
            self.events.emit(QUARANTINE, step=self.device.steps,
                             app=self.package, widget=widget_id,
                             strikes=self.quarantine.strikes(widget_id),
                             strike=kind)

    def _node_of(self, snapshot: UiSnapshot) -> Optional[Node]:
        if snapshot.fragments:
            return fragment_node(sorted(snapshot.fragments)[0])
        if snapshot.activity is not None:
            return activity_node(snapshot.activity)
        return None

    def _record_transition(self, before: UiSnapshot, after: UiSnapshot,
                           widget_id: str) -> None:
        """Task 3 of the UI driving module: AFTM update on state change."""
        assert before.activity is not None and after.activity is not None
        src = self._source_node(before, widget_id)
        changed = False
        if after.activity != before.activity:
            changed |= self.aftm.add_raw_transition(
                src, activity_node(after.activity),
                src_host=before.activity, trigger=widget_id,
            )
        new_fragments = after.fragments - before.fragments
        for fragment in sorted(new_fragments):
            changed |= self.aftm.add_raw_transition(
                src, fragment_node(fragment),
                src_host=before.activity, dst_host=after.activity,
                trigger=widget_id,
            )
        if changed:
            self.stats.aftm_updates += 1

    def _source_node(self, before: UiSnapshot, widget_id: str) -> Node:
        """The transition source is the component owning the clicked
        widget (resource dependency), falling back to the Activity."""
        assert before.activity is not None
        owner_activity, owner_fragment = self.info.resource_dep.owner_of(
            widget_id
        )
        if owner_fragment is not None and owner_fragment in before.fragments:
            return fragment_node(owner_fragment)
        return activity_node(before.activity)

    # -- result -----------------------------------------------------------------------------

    def result(self) -> ExplorationResult:
        self.stats.events = self.device.steps
        self.stats.distinct_interfaces = len(self._processed_signatures)
        invocations = [
            inv
            for inv in self.device.api_monitor.invocations[self._api_start:]
            if inv.component.package == self.package
        ]
        self.tracer.inc("events.injected", self.stats.events)
        self.tracer.inc("apis.observed", len(invocations))
        for inv in invocations:
            self.events.emit(API_OBSERVED, step=inv.step, app=self.package,
                             api=inv.api, component=inv.component.cls)
        visited_activities = {
            n.name for n in self.aftm.iter_visited()
            if n.kind is NodeKind.ACTIVITY
        }
        visited_fragments = {
            n.name for n in self.aftm.iter_visited()
            if n.kind is NodeKind.FRAGMENT
        }
        degradation = self._degradation()
        return ExplorationResult(
            package=self.package,
            info=self.info,
            aftm=self.aftm,
            visited_activities=visited_activities,
            visited_fragments=visited_fragments,
            api_invocations=invocations,
            test_cases=self.test_cases,
            stats=self.stats,
            trace=self.trace,
            paths=dict(self._paths),
            passing_test_cases=self.passing_test_cases,
            degradation=degradation,
        )

    def _degradation(self) -> Optional[Degradation]:
        """The resilience account of the run — None when no fault plan
        was active, keeping fault-free results unchanged."""
        if not self._resilient:
            return None
        plan = self.config.fault_plan
        assert plan is not None
        faults: Dict[str, int] = {}
        retries = recoveries = giveups = reconnects = 0
        backoff = 0.0
        if isinstance(self.adb, FaultyAdb):
            faults = dict(self.adb.injector.injected)
            retries = self.adb.retry_stats.retries
            recoveries = self.adb.retry_stats.recoveries
            giveups = self.adb.retry_stats.giveups
            backoff = self.adb.retry_stats.backoff_s
            reconnects = self.adb.reconnects
        return Degradation(
            profile=plan.profile,
            seed=plan.seed,
            faults=faults,
            retries=retries,
            recoveries=recoveries,
            giveups=giveups,
            backoff_s=backoff,
            reconnects=reconnects,
            quarantined=self.quarantine.blocked_ids(),
            requeued_items=self._requeued_items,
            abandoned_items=self._abandoned_items,
        )
