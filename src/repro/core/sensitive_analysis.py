"""Sensitive-API invocation analysis — Table II (paper Section VII-C).

For each app and each Table II API, classify the discovered invocation
relation:

* ``●`` invoked by Activity only;
* ``◗`` invoked by Fragment only (what Activity-level tools must miss);
* ``⊙`` invoked by both.

Also computes the paper's aggregates: total invocation relations,
the share associated with Fragments (paper: 49%), and the share an
Activity-based approach misses because it is Fragment-only (paper:
at least 9.6%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.explorer import ExplorationResult
from repro.static.sensitive import SENSITIVE_API_CATALOG
from repro.types import ApiInvocation, InvocationSource

SYMBOL_ACTIVITY = "●"
SYMBOL_FRAGMENT = "◗"
SYMBOL_BOTH = "⊙"


@dataclass(frozen=True)
class ApiRelation:
    """One cell of Table II: an (app, api) invocation relation."""

    package: str
    api: str
    by_activity: bool
    by_fragment: bool

    @property
    def symbol(self) -> str:
        if self.by_activity and self.by_fragment:
            return SYMBOL_BOTH
        if self.by_fragment:
            return SYMBOL_FRAGMENT
        return SYMBOL_ACTIVITY

    @property
    def fragment_associated(self) -> bool:
        return self.by_fragment


@dataclass
class SensitiveApiReport:
    """The Table II matrix plus its aggregates."""

    relations: List[ApiRelation] = field(default_factory=list)

    @property
    def packages(self) -> List[str]:
        return sorted({r.package for r in self.relations})

    @property
    def apis(self) -> List[str]:
        return sorted({r.api for r in self.relations})

    def relation(self, package: str, api: str) -> Optional[ApiRelation]:
        for rel in self.relations:
            if rel.package == package and rel.api == api:
                return rel
        return None

    # -- aggregates -------------------------------------------------------------

    @property
    def total_relations(self) -> int:
        return len(self.relations)

    @property
    def distinct_apis_found(self) -> int:
        return len(self.apis)

    @property
    def fragment_associated_share(self) -> float:
        """Share of relations invoked by a Fragment (◗ or ⊙) — the
        paper reports 49%."""
        if not self.relations:
            return 0.0
        hits = sum(1 for r in self.relations if r.fragment_associated)
        return hits / len(self.relations)

    @property
    def fragment_only_share(self) -> float:
        """Share an Activity-based tool must miss (◗ only) — the paper
        reports at least 9.6%."""
        if not self.relations:
            return 0.0
        hits = sum(
            1 for r in self.relations if r.by_fragment and not r.by_activity
        )
        return hits / len(self.relations)

    def by_category(self) -> Dict[str, List[ApiRelation]]:
        """Relations grouped by the Table II category (the row groups
        Browser / Identification / Internet / … of the paper)."""
        grouped: Dict[str, List[ApiRelation]] = {}
        for relation in self.relations:
            category = relation.api.split("/", 1)[0]
            grouped.setdefault(category, []).append(relation)
        return grouped

    def render_category_summary(self) -> str:
        """Per-category counts: relations, fragment-associated share."""
        header = (f"{'category':18} {'APIs':>5} {'relations':>10} "
                  f"{'frag-assoc':>11}")
        lines = [header, "-" * len(header)]
        for category, relations in sorted(self.by_category().items()):
            apis = len({r.api for r in relations})
            frag = sum(1 for r in relations if r.fragment_associated)
            lines.append(
                f"{category:18} {apis:>5} {len(relations):>10} "
                f"{frag / len(relations):>11.0%}"
            )
        return "\n".join(lines)

    def render(self) -> str:
        """A compact Table II rendering: APIs as rows, apps as columns."""
        packages = self.packages
        short = [p.split(".")[-1][:10] for p in packages]
        width = max((len(api) for api in self.apis), default=20)
        header = f"{'Sensitive API':{width}} " + " ".join(
            f"{name:>10}" for name in short
        )
        lines = [header, "-" * len(header)]
        for api in self.apis:
            cells = []
            for package in packages:
                rel = self.relation(package, api)
                cells.append(f"{rel.symbol if rel else '':>10}")
            lines.append(f"{api:{width}} " + " ".join(cells))
        lines.append("-" * len(header))
        lines.append(
            f"APIs found: {self.distinct_apis_found}; "
            f"relations: {self.total_relations}; "
            f"fragment-associated: {self.fragment_associated_share:.1%}; "
            f"fragment-only (missed by Activity-level tools): "
            f"{self.fragment_only_share:.1%}"
        )
        return "\n".join(lines)


def relations_from_invocations(
    package: str, invocations: Iterable[ApiInvocation]
) -> List[ApiRelation]:
    """Fold raw monitor records into per-API relations for one app."""
    by_api: Dict[str, Set[InvocationSource]] = {}
    for invocation in invocations:
        by_api.setdefault(invocation.api, set()).add(invocation.source)
    catalog = {api.name for api in SENSITIVE_API_CATALOG}
    relations = []
    for api, sources in sorted(by_api.items()):
        if api not in catalog:
            continue
        relations.append(
            ApiRelation(
                package=package,
                api=api,
                by_activity=InvocationSource.ACTIVITY in sources,
                by_fragment=InvocationSource.FRAGMENT in sources,
            )
        )
    return relations


def build_api_report(results: Iterable[ExplorationResult]) -> SensitiveApiReport:
    """Build the Table II report from a set of exploration results."""
    report = SensitiveApiReport()
    for result in results:
        report.relations.extend(
            relations_from_invocations(result.package, result.api_invocations)
        )
    return report
