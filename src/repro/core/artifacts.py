"""Persist a run's artifacts to disk.

A FragDroid run produces inspectable artifacts — the generated Robotium
test programs, the AFTM (JSON and Graphviz), the structured report and
the trace.  :func:`save_artifacts` lays them out the way the paper's
tooling would leave them next to an Ant build.  A run that carried the
flight recorder (``FragDroidConfig.event_log`` / ``tracer``) also gets
its observability record — ``events.jsonl``, ``spans.jsonl``,
``metrics.prom`` and ``manifest.json`` — so ``repro dashboard`` can
replay it; a default run writes exactly the same files as before.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Union

from repro.core.explorer import ExplorationResult
from repro.core.report import aftm_to_json, result_to_json
from repro.obs import prometheus_text, run_manifest
from repro.obs.timeline import coverage_curve_from_trace


def save_artifacts(result: ExplorationResult,
                   directory: Union[str, pathlib.Path],
                   replay_scripts: bool = False) -> List[pathlib.Path]:
    """Write all artifacts of a run under ``directory``.

    Layout::

        <dir>/report.json          structured run report
        <dir>/report.html          self-contained HTML report
        <dir>/aftm.json            the final AFTM
        <dir>/aftm.dot             Graphviz rendering
        <dir>/trace.log            the exploration trace
        <dir>/coverage.txt         the human-readable summary
        <dir>/testcases/*.java     every generated Robotium program

    with ``replay_scripts=True``, additionally::

        <dir>/testcases/*.replay.json   one replay script per passing case

    and, only when the run recorded observability data::

        <dir>/events.jsonl         the flight-recorder event timeline
        <dir>/spans.jsonl          the finished spans
        <dir>/metrics.prom         Prometheus text exposition
        <dir>/manifest.json        the run manifest

    Returns the written paths.
    """
    base = pathlib.Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: List[pathlib.Path] = []

    def _write(relative: str, content: str) -> None:
        path = base / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        written.append(path)

    from repro.core.htmlreport import render_html_report

    _write("report.json", result_to_json(result))
    _write("report.html", render_html_report(result))
    _write("aftm.json", aftm_to_json(result.aftm))
    _write("aftm.dot", result.aftm.to_dot())
    _write("trace.log", result.trace_text())
    _write("coverage.txt", result.coverage_report())
    for case in result.test_cases:
        _write(f"testcases/{case.name}.java", case.to_robotium_java())
    if replay_scripts:
        from repro.rnr.export import script_from_testcase

        for case in result.passing_test_cases:
            _write(f"testcases/{case.name}.replay.json",
                   script_from_testcase(case).to_json() + "\n")
    if result.events or result.spans:
        if result.events:
            _write("events.jsonl", "".join(
                json.dumps(e.to_dict(), sort_keys=True) + "\n"
                for e in result.events
            ))
        if result.spans:
            _write("spans.jsonl", "".join(
                json.dumps(s.to_dict(), sort_keys=True) + "\n"
                for s in result.spans
            ))
        if result.metrics:
            _write("metrics.prom", prometheus_text(result.metrics))
        _write("manifest.json", json.dumps(
            run_manifest(result, files=[str(p.relative_to(base))
                                        for p in written]),
            indent=2, sort_keys=True,
        ) + "\n")
    return written


def coverage_curve(result: ExplorationResult) -> List[tuple]:
    """Discovery progress over the run: ``(step, activities, fragments)``
    sampled at every new visit (derived from the trace; the single
    implementation lives in ``repro.obs.timeline`` so the event-log
    curve matches this one checkpoint for checkpoint)."""
    return coverage_curve_from_trace(result.trace)
