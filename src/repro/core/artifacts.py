"""Persist a run's artifacts to disk.

A FragDroid run produces inspectable artifacts — the generated Robotium
test programs, the AFTM (JSON and Graphviz), the structured report and
the trace.  :func:`save_artifacts` lays them out the way the paper's
tooling would leave them next to an Ant build.
"""

from __future__ import annotations

import pathlib
from typing import List, Union

from repro.core.explorer import ExplorationResult
from repro.core.report import aftm_to_json, result_to_json


def save_artifacts(result: ExplorationResult,
                   directory: Union[str, pathlib.Path]) -> List[pathlib.Path]:
    """Write all artifacts of a run under ``directory``.

    Layout::

        <dir>/report.json          structured run report
        <dir>/report.html          self-contained HTML report
        <dir>/aftm.json            the final AFTM
        <dir>/aftm.dot             Graphviz rendering
        <dir>/trace.log            the exploration trace
        <dir>/coverage.txt         the human-readable summary
        <dir>/testcases/*.java     every generated Robotium program

    Returns the written paths.
    """
    base = pathlib.Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: List[pathlib.Path] = []

    def _write(relative: str, content: str) -> None:
        path = base / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        written.append(path)

    from repro.core.htmlreport import render_html_report

    _write("report.json", result_to_json(result))
    _write("report.html", render_html_report(result))
    _write("aftm.json", aftm_to_json(result.aftm))
    _write("aftm.dot", result.aftm.to_dot())
    _write("trace.log", result.trace_text())
    _write("coverage.txt", result.coverage_report())
    for case in result.test_cases:
        _write(f"testcases/{case.name}.java", case.to_robotium_java())
    return written


def coverage_curve(result: ExplorationResult) -> List[tuple]:
    """Discovery progress over the run: ``(step, activities, fragments)``
    sampled at every new visit (derived from the trace)."""
    curve: List[tuple] = [(0, 0, 0)]
    activities = 0
    fragments = 0
    for event in result.trace:
        if event.kind != "visit":
            continue
        if event.detail.startswith("activity "):
            activities += 1
        else:
            fragments += 1
        curve.append((event.step, activities, fragments))
    return curve
