"""The UI transition queue (paper Section VI-B).

Each queue item carries the four properties the paper specifies: the way
of reaching the interface, the start interface, the target interface,
and the operation list storing the concrete operations from start to
target.  The queue is maintained width-first on the basis of the AFTM
and updated whenever the model evolves.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional, Set, Tuple

from repro.static.aftm import Node


class OpKind(str, enum.Enum):
    LAUNCH = "launch"            # am start launcher
    CLICK = "click"              # click a widget by resource name
    ENTER_TEXT = "enter_text"    # fill an EditText
    SWIPE_OPEN = "swipe_open"    # edge swipe (drawer)
    REFLECT = "reflect"          # reflective fragment switch
    FORCE_START = "force_start"  # am start -n with empty intent
    BACK = "back"


@dataclass(frozen=True)
class Operation:
    """One concrete step of a test case."""

    kind: OpKind
    target: str = ""   # widget id / fragment class / component
    value: str = ""    # text for ENTER_TEXT

    def __str__(self) -> str:
        if self.kind is OpKind.ENTER_TEXT:
            return f"enterText({self.target}, {self.value!r})"
        if self.target:
            return f"{self.kind.value}({self.target})"
        return self.kind.value


def launch_op() -> Operation:
    return Operation(OpKind.LAUNCH)


def click_op(widget_id: str) -> Operation:
    return Operation(OpKind.CLICK, widget_id)


def text_op(widget_id: str, value: str) -> Operation:
    return Operation(OpKind.ENTER_TEXT, widget_id, value)


def swipe_op() -> Operation:
    return Operation(OpKind.SWIPE_OPEN)


def reflect_op(fragment_class: str) -> Operation:
    return Operation(OpKind.REFLECT, fragment_class)


def force_start_op(component: str) -> Operation:
    return Operation(OpKind.FORCE_START, component)


@dataclass
class UIQueueItem:
    """One pending transition to exercise."""

    method: str                      # "launch" | "click" | "reflection" | "forced-start"
    start: Optional[Node]            # the interface the path starts from
    target: Optional[Node]           # the interface the item should reach
    operations: Tuple[Operation, ...] = ()

    def extended(self, method: str, target: Optional[Node],
                 *extra_ops: Operation) -> "UIQueueItem":
        """A new item whose operation list is this item's plus the
        operations converting from here to the new target (the Case 1
        construction)."""
        return UIQueueItem(
            method=method,
            start=self.target,
            target=target,
            operations=self.operations + tuple(extra_ops),
        )

    def __str__(self) -> str:
        ops = "; ".join(str(op) for op in self.operations)
        return f"[{self.method}] -> {self.target}: {ops}"


class UIQueue:
    """Queue of items with duplicate suppression.

    The paper maintains the queue "in a width-first strategy"
    (``order="breadth"``, the default FIFO); ``order="depth"`` pops the
    newest item first, giving an A3E-style depth-first variant for the
    strategy ablation.  Duplicate suppression keys on (method, target,
    operations) so the evolutionary loop can re-derive items without
    flooding the queue.
    """

    def __init__(self, limit: int = 2000, order: str = "breadth") -> None:
        if order not in ("breadth", "depth"):
            raise ValueError(f"unknown queue order: {order!r}")
        self._queue: Deque[UIQueueItem] = deque()
        self._seen: Set[Tuple] = set()
        self._limit = limit
        self._order = order
        self.dropped = 0

    def push(self, item: UIQueueItem) -> bool:
        key = (item.method, item.target, item.operations)
        if key in self._seen:
            return False
        if len(self._seen) >= self._limit:
            self.dropped += 1
            return False
        self._seen.add(key)
        self._queue.append(item)
        return True

    def push_all(self, items: Iterable[UIQueueItem]) -> int:
        return sum(1 for item in items if self.push(item))

    def requeue(self, item: UIQueueItem) -> None:
        """Re-enqueue an item interrupted mid-execution (crash
        recovery).  Bypasses duplicate suppression — the item was
        already admitted once and its re-run budget is enforced by the
        explorer's ``max_restarts_per_item`` rail, not here."""
        self._queue.append(item)

    def pop(self) -> UIQueueItem:
        if self._order == "depth":
            return self._queue.pop()
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
