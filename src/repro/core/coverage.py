"""Coverage accounting and the Table I renderer.

One :class:`CoverageRow` per app with the three Visited/Sum/Rate column
groups of the paper's Table I (Activities, Fragments, Fragments in
Visited Activities), plus the aggregate averages the paper quotes
(71.94% Activities, 66% Fragments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.explorer import ExplorationResult


@dataclass(frozen=True)
class CoverageRow:
    package: str
    downloads: str
    activities_visited: int
    activities_sum: int
    fragments_visited: int
    fragments_sum: int
    fiva_visited: int
    fiva_sum: int

    @staticmethod
    def _rate(visited: int, total: int) -> Optional[float]:
        return visited / total if total else None

    @property
    def activity_rate(self) -> Optional[float]:
        return self._rate(self.activities_visited, self.activities_sum)

    @property
    def fragment_rate(self) -> Optional[float]:
        return self._rate(self.fragments_visited, self.fragments_sum)

    @property
    def fiva_rate(self) -> Optional[float]:
        return self._rate(self.fiva_visited, self.fiva_sum)

    @classmethod
    def from_result(cls, result: ExplorationResult,
                    downloads: str = "") -> "CoverageRow":
        fiva_visited, fiva_sum = result.fragments_in_visited_activities()
        return cls(
            package=result.package,
            downloads=downloads,
            activities_visited=len(result.visited_activities),
            activities_sum=result.activity_total,
            fragments_visited=len(result.visited_fragments),
            fragments_sum=result.fragment_total,
            fiva_visited=fiva_visited,
            fiva_sum=fiva_sum,
        )


@dataclass
class CoverageReport:
    """The full Table I."""

    rows: List[CoverageRow]

    @staticmethod
    def _percent(value: Optional[float]) -> str:
        return f"{value:.2%}" if value is not None else "n/a"

    @property
    def mean_activity_rate(self) -> float:
        rates = [r.activity_rate for r in self.rows if r.activity_rate is not None]
        return sum(rates) / len(rates) if rates else 0.0

    @property
    def mean_fragment_rate(self) -> float:
        rates = [r.fragment_rate for r in self.rows if r.fragment_rate is not None]
        return sum(rates) / len(rates) if rates else 0.0

    @property
    def mean_fiva_rate(self) -> float:
        rates = [r.fiva_rate for r in self.rows if r.fiva_rate is not None]
        return sum(rates) / len(rates) if rates else 0.0

    @property
    def overall_activity_rate(self) -> float:
        """Pooled rate (total visited / total sum across apps)."""
        total = sum(r.activities_sum for r in self.rows)
        visited = sum(r.activities_visited for r in self.rows)
        return visited / total if total else 0.0

    @property
    def overall_fragment_rate(self) -> float:
        total = sum(r.fragments_sum for r in self.rows)
        visited = sum(r.fragments_visited for r in self.rows)
        return visited / total if total else 0.0

    def full_fiva_apps(self) -> int:
        """Apps whose fragments-in-visited-activities rate is 100%."""
        return sum(1 for r in self.rows if r.fiva_rate == 1.0)

    def render(self) -> str:
        """Render in the layout of Table I."""
        header = (
            f"{'Package Name':34} {'Downloads':13} "
            f"{'Act V':>5} {'Sum':>4} {'Rate':>8}  "
            f"{'Frg V':>5} {'Sum':>4} {'Rate':>8}  "
            f"{'FiVA V':>6} {'Sum':>4} {'Rate':>8}"
        )
        lines = [header, "-" * len(header)]
        for row in sorted(self.rows, key=lambda r: r.package):
            lines.append(
                f"{row.package:34} {row.downloads:13} "
                f"{row.activities_visited:5d} {row.activities_sum:4d} "
                f"{self._percent(row.activity_rate):>8}  "
                f"{row.fragments_visited:5d} {row.fragments_sum:4d} "
                f"{self._percent(row.fragment_rate):>8}  "
                f"{row.fiva_visited:6d} {row.fiva_sum:4d} "
                f"{self._percent(row.fiva_rate):>8}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'MEAN':34} {'':13} "
            f"{'':5} {'':4} {self._percent(self.mean_activity_rate):>8}  "
            f"{'':5} {'':4} {self._percent(self.mean_fragment_rate):>8}  "
            f"{'':6} {'':4} {self._percent(self.mean_fiva_rate):>8}"
        )
        return "\n".join(lines)
