"""Heuristic input generation (paper Sections V-C and VIII).

FragDroid "utilizes some techniques of these works to ensure that it
could generate inputs as accurate as possible" — citing TrimDroid's
widget relationships and Chen et al.'s context-driven value generation —
and names better input generation as future work.  This module
implements the context-driven part: a widget's resource name and label
are matched against keyword classes, and a plausible value of that class
is produced.  Analyst-provided values from the input-dependency file
always take precedence (Section V-C: "FragDroid will use these values
with a preference").
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.android.views import RuntimeWidget
from repro.apk.inputs import KNOWN_CITIES
from repro.static.input_dep import DEFAULT_TEXT, InputDependency

# Keyword classes, checked in order; first match wins.
_HEURISTICS: Sequence[Tuple[Tuple[str, ...], str]] = (
    (("mail",), "user@example.com"),
    (("city", "place", "town", "location", "destination"),
     sorted(KNOWN_CITIES)[0]),
    (("phone", "mobile", "tel"), "5551234567"),
    (("date", "birthday", "dob"), "2018-06-25"),
    (("url", "link", "website"), "http://example.com"),
    (("zip", "postal"), "02134"),
    (("age", "count", "number", "amount", "qty", "quantity"), "42"),
    (("user", "name", "login"), "alice"),
    (("search", "query", "keyword"), "weather"),
)


class HeuristicInputGenerator:
    """Context-driven value generation for input widgets."""

    def __init__(self, input_dep: Optional[InputDependency] = None) -> None:
        self.input_dep = input_dep

    def value_for(self, widget: RuntimeWidget) -> str:
        """The value to type into a widget.

        Preference order: analyst input file > keyword heuristics >
        the random-ish default filler.
        """
        if self.input_dep is not None and self.input_dep.has_value(
            widget.widget_id
        ):
            return self.input_dep.value_for(widget.widget_id)
        context = f"{widget.widget_id} {widget.text}".lower()
        for keywords, value in _HEURISTICS:
            if any(keyword in context for keyword in keywords):
                return value
        return DEFAULT_TEXT

    @staticmethod
    def classify(context: str) -> Optional[str]:
        """The keyword class a widget context falls into (for reports)."""
        lowered = context.lower()
        for keywords, _value in _HEURISTICS:
            if any(keyword in lowered for keyword in keywords):
                return keywords[0]
        return None
