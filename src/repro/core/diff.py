"""Diffing two exploration runs.

Pairs with the regression workflow: besides replaying the old suite on
the new version, explore the new version fresh and diff the outcomes —
which components and API relations appeared, disappeared, or changed
attribution between versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.explorer import ExplorationResult
from repro.core.sensitive_analysis import relations_from_invocations


@dataclass
class RunDiff:
    """What changed between a baseline run and a new run."""

    package: str
    activities_gained: Set[str] = field(default_factory=set)
    activities_lost: Set[str] = field(default_factory=set)
    fragments_gained: Set[str] = field(default_factory=set)
    fragments_lost: Set[str] = field(default_factory=set)
    apis_gained: Set[str] = field(default_factory=set)
    apis_lost: Set[str] = field(default_factory=set)
    attribution_changed: List[Tuple[str, str, str]] = field(
        default_factory=list
    )  # (api, old symbol, new symbol)

    @property
    def is_empty(self) -> bool:
        return not any([
            self.activities_gained, self.activities_lost,
            self.fragments_gained, self.fragments_lost,
            self.apis_gained, self.apis_lost, self.attribution_changed,
        ])

    def render(self) -> str:
        if self.is_empty:
            return f"{self.package}: no behavioural difference detected"
        lines = [f"diff for {self.package}:"]
        for label, values in (
            ("activities gained", self.activities_gained),
            ("activities lost", self.activities_lost),
            ("fragments gained", self.fragments_gained),
            ("fragments lost", self.fragments_lost),
            ("APIs gained", self.apis_gained),
            ("APIs lost", self.apis_lost),
        ):
            if values:
                lines.append(f"  {label}: "
                             + ", ".join(sorted(values)))
        for api, old, new in self.attribution_changed:
            lines.append(f"  attribution changed: {api} {old} -> {new}")
        return "\n".join(lines)


def diff_runs(baseline: ExplorationResult,
              current: ExplorationResult) -> RunDiff:
    """Compare two runs of (versions of) the same package."""
    if baseline.package != current.package:
        raise ValueError(
            f"cannot diff {baseline.package} against {current.package}"
        )

    def symbols(result: ExplorationResult) -> Dict[str, str]:
        return {
            relation.api: relation.symbol
            for relation in relations_from_invocations(
                result.package, result.api_invocations
            )
        }

    old_symbols = symbols(baseline)
    new_symbols = symbols(current)
    changed = [
        (api, old_symbols[api], new_symbols[api])
        for api in sorted(set(old_symbols) & set(new_symbols))
        if old_symbols[api] != new_symbols[api]
    ]
    return RunDiff(
        package=baseline.package,
        activities_gained=(current.visited_activities
                           - baseline.visited_activities),
        activities_lost=(baseline.visited_activities
                         - current.visited_activities),
        fragments_gained=(current.visited_fragments
                          - baseline.visited_fragments),
        fragments_lost=(baseline.visited_fragments
                        - current.visited_fragments),
        apis_gained=set(new_symbols) - set(old_symbols),
        apis_lost=set(old_symbols) - set(new_symbols),
        attribution_changed=changed,
    )
