"""Shared value types used across the FragDroid reproduction.

These are small, immutable, layer-neutral types: fully-qualified component
names, resource identifiers, widget kinds, and the record type for a
sensitive-API invocation observed at runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ComponentKind(enum.Enum):
    """What kind of app component a name refers to."""

    ACTIVITY = "activity"
    FRAGMENT = "fragment"


@dataclass(frozen=True, order=True)
class ComponentName:
    """A fully-qualified Android component name, e.g. ``com.app/.MainActivity``.

    ``cls`` is always stored fully qualified (``com.app.MainActivity``).
    """

    package: str
    cls: str

    def __post_init__(self) -> None:
        if not self.package or not self.cls:
            raise ValueError("package and cls must be non-empty")
        if self.cls.startswith("."):
            # Normalise the manifest shorthand ".MainActivity".
            object.__setattr__(self, "cls", self.package + self.cls)

    @property
    def simple_name(self) -> str:
        """The class name without its package prefix."""
        return self.cls.rsplit(".", 1)[-1]

    @property
    def flat(self) -> str:
        """The ``pkg/cls`` form used by ``am start -n``."""
        return f"{self.package}/{self.cls}"

    @classmethod
    def parse(cls, flat: str) -> "ComponentName":
        """Parse the ``pkg/cls`` form (accepts ``pkg/.Short`` shorthand)."""
        if "/" not in flat:
            raise ValueError(f"not a component name: {flat!r}")
        package, klass = flat.split("/", 1)
        return cls(package, klass)

    def __str__(self) -> str:
        return self.flat


# Resource IDs live in the app package space, same as real Android.
RESOURCE_ID_BASE = 0x7F000000


@dataclass(frozen=True, order=True)
class ResourceId:
    """A numeric Android resource identifier with its symbolic name."""

    value: int
    name: str

    def __post_init__(self) -> None:
        if not (RESOURCE_ID_BASE <= self.value < 0x80000000):
            raise ValueError(f"resource id out of app range: {self.value:#x}")

    @property
    def hex(self) -> str:
        return f"{self.value:#010x}"

    def __str__(self) -> str:
        return f"R.id.{self.name}({self.hex})"


class WidgetKind(enum.Enum):
    """The widget classes the emulator and the explorer understand."""

    BUTTON = "Button"
    TEXT_VIEW = "TextView"
    EDIT_TEXT = "EditText"
    CHECK_BOX = "CheckBox"
    IMAGE_VIEW = "ImageView"
    LIST_ITEM = "ListItem"
    TAB = "Tab"
    MENU_ITEM = "MenuItem"
    DRAWER_ITEM = "DrawerItem"
    SPINNER = "Spinner"
    SWITCH = "Switch"

    @property
    def clickable(self) -> bool:
        return self not in (WidgetKind.TEXT_VIEW, WidgetKind.IMAGE_VIEW)

    @property
    def accepts_text(self) -> bool:
        return self is WidgetKind.EDIT_TEXT


class InvocationSource(enum.Enum):
    """Whether a sensitive API call came from an Activity or a Fragment."""

    ACTIVITY = "activity"
    FRAGMENT = "fragment"


@dataclass(frozen=True)
class ApiInvocation:
    """One observed sensitive-API invocation.

    ``component`` is the class that executed the call; ``source`` says
    whether that class is an Activity or a Fragment — the distinction at
    the heart of Table II.
    """

    api: str
    component: ComponentName
    source: InvocationSource
    step: int = 0

    @property
    def category(self) -> str:
        """The Table II category prefix, e.g. ``internet`` of
        ``internet/connect``."""
        return self.api.split("/", 1)[0]
