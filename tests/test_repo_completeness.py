"""Deliverables guard: the repository's documentation contract.

Not a style check — these files are deliverables with specific
content obligations (DESIGN.md's experiment index, EXPERIMENTS.md's
paper-vs-measured records), and the benches write artifacts the docs
reference.
"""

import pathlib

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"missing deliverable: {name}"
    return path.read_text()


def test_design_document():
    text = read("DESIGN.md")
    # Paper confirmation and the substitution table.
    assert "DSN 2018" in text
    assert "Apktool" in text and "jd-core" in text
    assert "XPrivacy" in text
    # The experiment index covers every table and figure.
    for marker in ("Table I", "Table II", "Fig. 1", "Fig. 2", "Fig. 5",
                   "usage study"):
        assert marker in text, marker


def test_experiments_document():
    text = read("EXPERIMENTS.md")
    assert "71.94%" in text and "71.95%" in text   # paper vs measured
    assert "66%" in text
    assert "46" in text
    assert "9.6%" in text
    assert "90.4%" in text


def test_readme_document():
    text = read("README.md")
    assert "pip install -e ." in text
    assert "pytest benchmarks/ --benchmark-only" in text
    assert "FragDroid" in text and "AFTM" in text


def test_docs_directory():
    for name in ("architecture.md", "tutorial.md", "paper-mapping.md",
                 "cli.md"):
        assert (ROOT / "docs" / name).exists(), name


def test_examples_present_and_nonempty():
    examples = list((ROOT / "examples").glob("*.py"))
    assert len(examples) >= 7
    for example in examples:
        assert example.read_text().startswith("#!"), example.name


def test_benchmarks_cover_every_experiment():
    benches = {p.stem for p in (ROOT / "benchmarks").glob("bench_*.py")}
    for required in ("bench_table1_coverage", "bench_table2_sensitive_apis",
                     "bench_fragment_usage_study",
                     "bench_baseline_comparison", "bench_ablation"):
        assert required in benches, required