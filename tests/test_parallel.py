"""The parallel sweep runner."""

from repro.bench.parallel import explore_many, explore_one
from repro.corpus import TABLE1_PLANS
from repro.corpus.table1_apps import TABLE1_EXPECTED, plan_for


def test_explore_one_matches_serial():
    plan = plan_for("net.aviascanner.aviascanner")
    result = explore_one(plan)
    expected = TABLE1_EXPECTED[plan.package]
    assert len(result.visited_activities) == expected[0]
    assert len(result.visited_fragments) == expected[2]


def test_explore_many_concurrent_results_match_paper():
    plans = [plan_for(p) for p in (
        "au.com.digitalstampede.formula",
        "org.rbc.odb",
        "com.happy2.bbmanga",
        "net.aviascanner.aviascanner",
    )]
    results = explore_many(plans, max_workers=4)
    assert set(results) == {p.package for p in plans}
    for package, result in results.items():
        expected = TABLE1_EXPECTED[package]
        assert len(result.visited_activities) == expected[0], package
        assert len(result.visited_fragments) == expected[2], package


def test_devices_are_isolated():
    plans = [plan_for("org.rbc.odb"), plan_for("com.happy2.bbmanga")]
    results = explore_many(plans, max_workers=2)
    # Each result only contains invocations from its own package.
    for package, result in results.items():
        assert all(i.component.package == package
                   for i in result.api_invocations)
