"""The parallel sweep runner."""

import pytest

from repro.bench.parallel import (
    explore_many,
    explore_one,
    successful_results,
    unwrap_results,
)
from repro.corpus import TABLE1_PLANS
from repro.corpus.synth import AppPlan
from repro.corpus.table1_apps import TABLE1_EXPECTED, plan_for
from repro.errors import PackedApkError


def test_explore_one_matches_serial():
    plan = plan_for("net.aviascanner.aviascanner")
    outcome = explore_one(plan)
    assert outcome.ok
    result = outcome.unwrap()
    expected = TABLE1_EXPECTED[plan.package]
    assert len(result.visited_activities) == expected[0]
    assert len(result.visited_fragments) == expected[2]


def test_explore_many_concurrent_results_match_paper():
    plans = [plan_for(p) for p in (
        "au.com.digitalstampede.formula",
        "org.rbc.odb",
        "com.happy2.bbmanga",
        "net.aviascanner.aviascanner",
    )]
    results = unwrap_results(explore_many(plans, max_workers=4))
    assert set(results) == {p.package for p in plans}
    for package, result in results.items():
        expected = TABLE1_EXPECTED[package]
        assert len(result.visited_activities) == expected[0], package
        assert len(result.visited_fragments) == expected[2], package


def test_devices_are_isolated():
    plans = [plan_for("org.rbc.odb"), plan_for("com.happy2.bbmanga")]
    results = unwrap_results(explore_many(plans, max_workers=2))
    # Each result only contains invocations from its own package.
    for package, result in results.items():
        assert all(i.component.package == package
                   for i in result.api_invocations)


# ---------------------------------------------------------------------------
# Failure isolation
# ---------------------------------------------------------------------------

def test_packed_app_does_not_abort_the_sweep():
    """One packed app among healthy ones: the sweep completes, yielding
    the healthy results and one recorded failure."""
    plans = [
        plan_for("org.rbc.odb"),
        AppPlan(package="com.packer.victim", visited_activities=2,
                packed=True),
        plan_for("com.happy2.bbmanga"),
    ]
    outcomes = explore_many(plans, max_workers=3)
    assert set(outcomes) == {p.package for p in plans}

    failed = outcomes["com.packer.victim"]
    assert not failed.ok
    assert isinstance(failed.error, PackedApkError)
    assert failed.result is None
    with pytest.raises(PackedApkError):
        failed.unwrap()

    healthy = successful_results(outcomes)
    assert set(healthy) == {"org.rbc.odb", "com.happy2.bbmanga"}
    for package, result in healthy.items():
        expected = TABLE1_EXPECTED[package]
        assert len(result.visited_activities) == expected[0], package

    # The strict accessor surfaces the captured failure.
    with pytest.raises(PackedApkError):
        unwrap_results(outcomes)


def test_explore_one_captures_build_failures(monkeypatch):
    """APK build failures inside the worker are captured, not raised."""
    import repro.bench.parallel as parallel
    from repro.errors import ApkError

    def broken_build(spec):
        raise ApkError("corrupt resource table")

    monkeypatch.setattr(parallel, "build_apk", broken_build)
    outcome = explore_one(plan_for("org.rbc.odb"))
    assert not outcome.ok
    assert outcome.result is None
    assert isinstance(outcome.error, ApkError)


def test_sweep_outcome_duration_recorded():
    outcome = explore_one(plan_for("org.rbc.odb"))
    assert outcome.ok
    assert outcome.duration > 0


def test_explore_many_empty_plan_list():
    assert explore_many([]) == {}


def test_default_worker_count(monkeypatch):
    from repro.bench.parallel import _default_workers

    monkeypatch.delenv("FRAGDROID_WORKERS", raising=False)
    assert _default_workers(1) == 1
    assert _default_workers(0) == 1
    import os

    cap = os.cpu_count() or 4
    assert _default_workers(10_000) == min(10_000, cap)


def test_workers_env_override(monkeypatch):
    from repro.bench.parallel import _default_workers

    monkeypatch.setenv("FRAGDROID_WORKERS", "3")
    assert _default_workers(10) == 3
    # Still capped by the number of plans.
    assert _default_workers(2) == 2
    # Garbage and non-positive values fall back to the cpu default.
    import os

    cap = os.cpu_count() or 4
    monkeypatch.setenv("FRAGDROID_WORKERS", "many")
    assert _default_workers(10_000) == min(10_000, cap)
    monkeypatch.setenv("FRAGDROID_WORKERS", "0")
    assert _default_workers(10_000) == min(10_000, cap)


# ---------------------------------------------------------------------------
# The process backend
# ---------------------------------------------------------------------------

SWEEP_PACKAGES = (
    "au.com.digitalstampede.formula",
    "org.rbc.odb",
    "com.happy2.bbmanga",
    "net.aviascanner.aviascanner",
    "com.advancedprocessmanager",
)


def _rows_without_durations(outcomes):
    from repro.bench.parallel import sweep_rows

    return [{key: value for key, value in row.items()
             if key != "duration_s"}
            for row in sweep_rows(outcomes)]


def test_process_backend_matches_thread_backend():
    plans = [plan_for(p) for p in SWEEP_PACKAGES]
    thread = explore_many(plans, max_workers=4, backend="thread")
    process = explore_many(plans, max_workers=4, backend="process")
    assert _rows_without_durations(thread) == _rows_without_durations(process)


def test_process_backend_hostile_faults_equivalent():
    """Faults are per-scope seeded, so thread and process sweeps inject
    the identical fault streams: same census, same per-app outcomes."""
    from repro import FragDroidConfig
    from repro.bench.parallel import fault_census

    plans = [plan_for(p) for p in SWEEP_PACKAGES]

    def sweep(backend):
        config = FragDroidConfig(fault_profile="hostile", fault_seed=77)
        return explore_many(plans, config=config, max_workers=4,
                            backend=backend)

    thread = sweep("thread")
    process = sweep("process")
    assert fault_census(thread) == fault_census(process)
    assert _rows_without_durations(thread) == _rows_without_durations(process)
    for package in thread:
        a, b = thread[package], process[package]
        assert a.ok == b.ok, package
        assert a.fault_kind == b.fault_kind, package
        if not a.ok:
            assert type(a.error) is type(b.error), package


def test_process_backend_rehydrates_errors():
    plans = [
        plan_for("org.rbc.odb"),
        AppPlan(package="com.packer.victim", visited_activities=2,
                packed=True),
    ]
    outcomes = explore_many(plans, max_workers=2, backend="process")
    failed = outcomes["com.packer.victim"]
    assert not failed.ok
    assert isinstance(failed.error, PackedApkError)
    assert failed.fault_kind == "packed-apk"
    with pytest.raises(PackedApkError):
        failed.unwrap()


def test_thaw_error_falls_back_to_remote_sweep_error():
    from repro.bench.parallel import RemoteSweepError, _thaw_error

    error = _thaw_error(("no.such.module", "GoneError", "boom"))
    assert isinstance(error, RemoteSweepError)
    assert "GoneError" in str(error) and "boom" in str(error)
    # Non-exception attributes are refused too.
    error = _thaw_error(("repro.bench.parallel", "explore_many", "boom"))
    assert isinstance(error, RemoteSweepError)


def test_non_picklable_config_falls_back_to_thread(monkeypatch):
    """A config the process backend cannot ship keeps the thread pool
    (and the sweep still completes correctly)."""
    import repro.bench.parallel as parallel
    from repro import FragDroidConfig
    from repro.obs import Tracer

    assert not parallel._picklable(
        parallel._ConfigSpec(kwargs={"hook": lambda: None})
    )
    monkeypatch.setattr(parallel, "_picklable", lambda spec: False)
    spawned = []
    monkeypatch.setattr(parallel, "_explore_many_process",
                        lambda *a, **k: spawned.append(1))
    config = FragDroidConfig(tracer=Tracer())
    plans = [plan_for("org.rbc.odb")]
    results = unwrap_results(explore_many(plans, config=config,
                                          max_workers=1, backend="process"))
    assert not spawned
    assert set(results) == {"org.rbc.odb"}
    assert config.tracer.metrics.counter("sweep.backend.fallback") == 1


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        explore_many([plan_for("org.rbc.odb")], backend="greenlet")


def test_backend_env_override(monkeypatch):
    import repro.bench.parallel as parallel

    monkeypatch.setenv("FRAGDROID_SWEEP_BACKEND", "process")
    assert parallel._resolve_backend(None) == "process"
    # An explicit argument wins over the environment.
    assert parallel._resolve_backend("thread") == "thread"
    monkeypatch.setenv("FRAGDROID_SWEEP_BACKEND", "fiber")
    with pytest.raises(ValueError):
        parallel._resolve_backend(None)


def test_process_backend_merges_observability():
    """Worker spans/events/counters land in the parent's observers: the
    counters total the fleet, the event stream is gap-free, and each
    result points at its absorbed spans and events."""
    from repro import FragDroidConfig
    from repro.obs import EventLog, Tracer

    config = FragDroidConfig(tracer=Tracer(), event_log=EventLog())
    plans = [plan_for(p) for p in SWEEP_PACKAGES[:3]]
    outcomes = explore_many(plans, config=config, max_workers=3,
                            backend="process")
    assert config.tracer.metrics.counter("sweep.apps") == 3
    span_names = {s.name for s in config.tracer.finished_spans()}
    assert "sweep.app" in span_names and "explore" in span_names
    events = config.event_log.events()
    assert [e.seq for e in events] == list(range(1, len(events) + 1))
    for plan in plans:
        result = outcomes[plan.package].unwrap()
        assert result.spans and result.events
        assert all(e.app == plan.package for e in result.events)
        assert ([e.seq for e in config.event_log.events(app=plan.package)]
                == [e.seq for e in result.events])


def test_process_backend_rehomes_spans_onto_the_config_trace():
    """A config carrying a trace_id correlates the whole sweep: worker
    spans absorbed from the process pool — and thread-backend spans
    bound live — all land on that one trace."""
    from repro import FragDroidConfig
    from repro.obs import Tracer

    plans = [plan_for(p) for p in SWEEP_PACKAGES[:2]]
    for backend in ("thread", "process"):
        config = FragDroidConfig(tracer=Tracer(), trace_id=987654)
        explore_many(plans, config=config, max_workers=2, backend=backend)
        spans = config.tracer.spans_in_trace(987654)
        assert spans, f"{backend}: no spans joined the config trace"
        names = {s.name for s in spans}
        assert "sweep.app" in names and "explore" in names, backend
        # Nothing recorded by the sweep lives outside the trace.
        others = [s for s in config.tracer.finished_spans()
                  if s.trace_id != 987654]
        assert others == [], backend


def test_config_trace_id_is_validated_and_fingerprint_neutral():
    from repro import FragDroidConfig
    from repro.obs.registry import config_fingerprint

    with pytest.raises(ValueError):
        FragDroidConfig(trace_id="abc")
    with pytest.raises(ValueError):
        FragDroidConfig(trace_id=True)
    assert (config_fingerprint(FragDroidConfig(trace_id=7))
            == config_fingerprint(FragDroidConfig()))


# ---------------------------------------------------------------------------
# Worker death
# ---------------------------------------------------------------------------

def test_worker_death_marks_chunk_failed_and_continues(monkeypatch,
                                                       tmp_path):
    """A SIGKILLed worker (OOM-killer signature) fails its chunk's apps
    with WorkerDiedError instead of aborting the sweep; chunks that
    finished before the death keep their results."""
    from repro import FragDroidConfig
    from repro.errors import WorkerDiedError
    from repro.obs import Tracer

    victim = SWEEP_PACKAGES[-1]
    monkeypatch.setenv("FRAGDROID_CHAOS_KILL", f"{victim}:1")
    monkeypatch.setenv("FRAGDROID_CHAOS_KILL_STATE", str(tmp_path))
    config = FragDroidConfig(tracer=Tracer())
    # One worker, one app per chunk: everything ahead of the victim is
    # already done when the pool breaks, so the blast radius is exact.
    plans = [plan_for(p) for p in SWEEP_PACKAGES]
    outcomes = explore_many(plans, config=config, max_workers=1,
                            backend="process", chunksize=1)

    assert set(outcomes) == set(SWEEP_PACKAGES)
    dead = outcomes[victim]
    assert not dead.ok
    assert isinstance(dead.error, WorkerDiedError)
    assert dead.fault_kind == "worker-died"
    assert config.tracer.metrics.counter("sweep.worker.died") >= 1

    survivors = {p: o for p, o in outcomes.items() if p != victim}
    assert all(o.ok for o in survivors.values())
    clean = explore_many([plan for plan in plans
                          if plan.package != victim], max_workers=1)
    assert _rows_without_durations(survivors) \
        == _rows_without_durations(clean)


def test_worker_died_outcomes_cover_every_unfinished_chunk(monkeypatch,
                                                           tmp_path):
    """When the pool breaks, every still-pending chunk fails with the
    worker-died marker — apps are never silently dropped."""
    monkeypatch.setenv("FRAGDROID_CHAOS_KILL", f"{SWEEP_PACKAGES[0]}:1")
    monkeypatch.setenv("FRAGDROID_CHAOS_KILL_STATE", str(tmp_path))
    plans = [plan_for(p) for p in SWEEP_PACKAGES]
    outcomes = explore_many(plans, max_workers=1, backend="process",
                            chunksize=len(plans))
    # A single chunk held everything: the whole sweep reads worker-died.
    assert set(outcomes) == set(SWEEP_PACKAGES)
    assert all(o.fault_kind == "worker-died" for o in outcomes.values())


def test_usage_study_parallel_matches_serial():
    from repro.bench.runner import run_usage_study

    serial = run_usage_study(count=40)
    assert serial == run_usage_study(count=40, max_workers=4,
                                     backend="thread")
    assert serial == run_usage_study(count=40, max_workers=4,
                                     backend="process")
